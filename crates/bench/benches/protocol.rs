//! Criterion micro-benchmarks of the core data structures and protocols:
//! mesh routing, decomposition-tree construction, access-tree embedding, and
//! end-to-end protocol handling for a single hot variable under both
//! data-management strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_diva::{Diva, DivaConfig, EmbeddingMode, Embedder, StrategyKind, VarPlacement};
use dm_mesh::{DecompositionTree, Mesh, NodeId, TreeShape};
use std::sync::Arc;

fn bench_routing(c: &mut Criterion) {
    let mesh = Mesh::square(32);
    c.bench_function("mesh/xy_route_32x32_corner_to_corner", |b| {
        let from = mesh.node_at(0, 0);
        let to = mesh.node_at(31, 31);
        b.iter(|| {
            let mut hops = 0u32;
            mesh.for_each_route_link(from, to, |_| hops += 1);
            hops
        })
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    for (name, shape) in [
        ("2-ary", TreeShape::binary()),
        ("4-ary", TreeShape::quad()),
        ("16-ary", TreeShape::hex16()),
    ] {
        group.bench_with_input(BenchmarkId::new("build_32x32", name), &shape, |b, &shape| {
            let mesh = Mesh::square(32);
            b.iter(|| DecompositionTree::build(&mesh, shape).len())
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mesh = Mesh::square(32);
    let tree = Arc::new(DecompositionTree::build(&mesh, TreeShape::quad()));
    let embedder = Embedder::new(tree.clone(), EmbeddingMode::Modified);
    let placement = VarPlacement { root: NodeId(517), seed: 42 };
    c.bench_function("embedding/modified_position_all_nodes_32x32", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for id in tree.node_ids() {
                acc += embedder.position(placement, id).0 as u64;
            }
            acc
        })
    });
}

fn bench_protocol_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);
    for (name, strategy) in [
        ("4-ary access tree", StrategyKind::AccessTree(TreeShape::quad())),
        ("fixed home", StrategyKind::FixedHome),
    ] {
        group.bench_function(BenchmarkId::new("hot_read_8x8", name), |b| {
            b.iter(|| {
                let mut diva = Diva::new(DivaConfig::new(Mesh::square(8), strategy));
                let v = diva.alloc(0, 4096, vec![0u8; 4096]);
                let outcome = diva.run(|ctx| {
                    let _ = ctx.read::<Vec<u8>>(v);
                    ctx.barrier();
                });
                outcome.report.congestion_bytes()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_decomposition,
    bench_embedding,
    bench_protocol_round
);
criterion_main!(benches);
