//! Micro-benchmarks of the core data structures and protocols: mesh routing,
//! decomposition-tree construction, access-tree embedding, and end-to-end
//! protocol handling for a single hot variable under both data-management
//! strategies. Plain `harness = false` binaries built on
//! [`dm_bench::timing`] (the workspace builds offline, without criterion).

use dm_bench::timing::bench;
use dm_diva::{Diva, DivaConfig, Embedder, EmbeddingMode, StrategyKind, VarPlacement};
use dm_mesh::{DecompositionTree, Mesh, NodeId, TreeShape};
use std::sync::Arc;

fn bench_routing() {
    let mesh = Mesh::square(32);
    let from = mesh.node_at(0, 0);
    let to = mesh.node_at(31, 31);
    bench("mesh/xy_route_32x32_corner_to_corner", 1000, || {
        let mut hops = 0u32;
        mesh.for_each_route_link(from, to, |_| hops += 1);
        hops
    });
}

fn bench_decomposition() {
    for (name, shape) in [
        ("2-ary", TreeShape::binary()),
        ("4-ary", TreeShape::quad()),
        ("16-ary", TreeShape::hex16()),
    ] {
        bench(&format!("decomposition/build_32x32/{name}"), 50, || {
            let mesh = Mesh::square(32);
            DecompositionTree::build(&mesh, shape).len()
        });
    }
}

fn bench_embedding() {
    let mesh = Mesh::square(32);
    let tree = Arc::new(DecompositionTree::build(&mesh, TreeShape::quad()));
    let embedder = Embedder::new(tree.clone(), EmbeddingMode::Modified);
    let placement = VarPlacement {
        root: NodeId(517),
        seed: 42,
    };
    bench("embedding/modified_position_all_nodes_32x32", 100, || {
        let mut acc = 0u64;
        for id in tree.node_ids() {
            acc += embedder.position(placement, id).0 as u64;
        }
        acc
    });
}

fn bench_protocol_round() {
    for (name, strategy) in [
        (
            "4-ary access tree",
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        ("fixed home", StrategyKind::FixedHome),
    ] {
        bench(&format!("protocol/hot_read_8x8/{name}"), 10, || {
            let mut diva = Diva::new(DivaConfig::new(Mesh::square(8), strategy));
            let v = diva.alloc(0, 4096, vec![0u8; 4096]);
            let outcome = diva
                .run_prototype(|ctx| {
                    let _ = ctx.read::<Vec<u8>>(v);
                    ctx.barrier();
                })
                .expect_completed();
            outcome.report.congestion_bytes()
        });
    }
}

fn main() {
    bench_routing();
    bench_decomposition();
    bench_embedding();
    bench_protocol_round();
}
