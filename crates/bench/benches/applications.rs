//! Criterion benchmarks of whole application simulations at reduced scale —
//! these measure the *simulator's* throughput (how fast the reproduction can
//! evaluate a configuration), complementing the figure binaries which report
//! the *simulated* quantities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_apps::barnes_hut::{run_shared as bh_run, BhParams};
use dm_apps::bitonic::{run_shared as bitonic_run, BitonicParams};
use dm_apps::matmul::{run_hand_optimized, run_shared as matmul_run, MatmulParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{Diva, DivaConfig, StrategyKind};
use dm_mesh::{Mesh, TreeShape};

fn diva(side: usize, strategy: StrategyKind) -> Diva {
    Diva::new(DivaConfig::new(Mesh::square(side), strategy))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_4x4_block256");
    group.sample_size(10);
    let params = MatmulParams::new(256);
    group.bench_function("4-ary access tree", |b| {
        b.iter(|| matmul_run(diva(4, StrategyKind::AccessTree(TreeShape::quad())), params).report.total_time)
    });
    group.bench_function("fixed home", |b| {
        b.iter(|| matmul_run(diva(4, StrategyKind::FixedHome), params).report.total_time)
    });
    group.bench_function("hand-optimized", |b| {
        b.iter(|| run_hand_optimized(diva(4, StrategyKind::FixedHome), params).report.total_time)
    });
    group.finish();
}

fn bench_bitonic(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic_4x4_keys256");
    group.sample_size(10);
    let params = BitonicParams::new(256);
    group.bench_function("2-4-ary access tree", |b| {
        b.iter(|| bitonic_run(diva(4, StrategyKind::AccessTree(TreeShape::lk(2, 4))), params).report.total_time)
    });
    group.bench_function("fixed home", |b| {
        b.iter(|| bitonic_run(diva(4, StrategyKind::FixedHome), params).report.total_time)
    });
    group.finish();
}

fn bench_barnes_hut(c: &mut Criterion) {
    let mut group = c.benchmark_group("barnes_hut_4x4");
    group.sample_size(10);
    let params = BhParams {
        n_bodies: 400,
        timesteps: 1,
        warmup_steps: 0,
        theta: 1.0,
        dt: 0.01,
        include_compute: true,
    };
    let bodies = plummer_bodies(77, params.n_bodies);
    for (name, strategy) in [
        ("4-ary access tree", StrategyKind::AccessTree(TreeShape::quad())),
        ("fixed home", StrategyKind::FixedHome),
    ] {
        group.bench_with_input(BenchmarkId::new("400_bodies", name), &strategy, |b, &s| {
            b.iter(|| bh_run(diva(4, s), params, &bodies).report.total_time)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_bitonic, bench_barnes_hut);
criterion_main!(benches);
