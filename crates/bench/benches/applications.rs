//! Benchmarks of whole application simulations at reduced scale — these
//! measure the *simulator's* throughput (how fast the reproduction can
//! evaluate a configuration), complementing the figure binaries which report
//! the *simulated* quantities. Both execution backends are measured so the
//! speedup of the event-driven driver stays visible over time.

use dm_apps::barnes_hut::{
    run_shared_driven as bh_driven, run_shared_prototype as bh_run, BhParams,
};
use dm_apps::bitonic::{
    run_shared_driven as bitonic_driven, run_shared_prototype as bitonic_run, BitonicParams,
};
use dm_apps::matmul::{
    run_hand_optimized_prototype, run_shared_driven as matmul_driven,
    run_shared_prototype as matmul_run, MatmulParams,
};
use dm_apps::workload::plummer_bodies;
use dm_bench::timing::bench;
use dm_diva::{Diva, DivaConfig, StrategyKind};
use dm_mesh::{Mesh, TreeShape};

fn diva(side: usize, strategy: StrategyKind) -> Diva {
    Diva::new(DivaConfig::new(Mesh::square(side), strategy))
}

fn bench_matmul() {
    let params = MatmulParams::new(256);
    bench(
        "matmul_4x4_block256/4-ary access tree (threaded)",
        10,
        || {
            matmul_run(diva(4, StrategyKind::AccessTree(TreeShape::quad())), params)
                .report
                .total_time
        },
    );
    bench("matmul_4x4_block256/4-ary access tree (driven)", 10, || {
        matmul_driven(diva(4, StrategyKind::AccessTree(TreeShape::quad())), params)
            .report
            .total_time
    });
    bench("matmul_4x4_block256/fixed home (threaded)", 10, || {
        matmul_run(diva(4, StrategyKind::FixedHome), params)
            .report
            .total_time
    });
    bench("matmul_4x4_block256/hand-optimized (threaded)", 10, || {
        run_hand_optimized_prototype(diva(4, StrategyKind::FixedHome), params)
            .report
            .total_time
    });
}

fn bench_bitonic() {
    let params = BitonicParams::new(256);
    bench(
        "bitonic_4x4_keys256/2-4-ary access tree (threaded)",
        10,
        || {
            bitonic_run(
                diva(4, StrategyKind::AccessTree(TreeShape::lk(2, 4))),
                params,
            )
            .report
            .total_time
        },
    );
    bench(
        "bitonic_4x4_keys256/2-4-ary access tree (driven)",
        10,
        || {
            bitonic_driven(
                diva(4, StrategyKind::AccessTree(TreeShape::lk(2, 4))),
                params,
            )
            .report
            .total_time
        },
    );
    bench("bitonic_4x4_keys256/fixed home (threaded)", 10, || {
        bitonic_run(diva(4, StrategyKind::FixedHome), params)
            .report
            .total_time
    });
}

fn bench_barnes_hut() {
    let params = BhParams {
        n_bodies: 400,
        timesteps: 1,
        warmup_steps: 0,
        theta: 1.0,
        dt: 0.01,
        include_compute: true,
        reclaim: true,
    };
    let bodies = plummer_bodies(77, params.n_bodies);
    for (name, strategy) in [
        (
            "4-ary access tree",
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        ("fixed home", StrategyKind::FixedHome),
    ] {
        bench(
            &format!("barnes_hut_4x4/400_bodies/{name} (threaded)"),
            10,
            || bh_run(diva(4, strategy), params, &bodies).report.total_time,
        );
        bench(
            &format!("barnes_hut_4x4/400_bodies/{name} (driven)"),
            10,
            || {
                bh_driven(diva(4, strategy), params, &bodies)
                    .report
                    .total_time
            },
        );
    }
}

fn main() {
    bench_matmul();
    bench_bitonic();
    bench_barnes_hut();
}
