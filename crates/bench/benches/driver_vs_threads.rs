//! The headline benchmark of the event-driven execution mode: the protocol
//! microbench (uniform random reads/writes over per-processor shared
//! variables on a 16×16 mesh under the 4-ary access tree) run under both
//! backends. The two runs simulate the *same* machine execution — their run
//! reports are asserted bit-identical — so the wall-clock ratio is purely
//! the cost of thread-per-processor scheduling vs inline stepping.
//!
//! `--min-speedup X` turns the benchmark into a regression gate: the process
//! exits non-zero when the driven/threaded speedup drops below `X`. CI runs
//! it with a conservative floor well under the ≥5× this benchmark measures
//! on dedicated hardware, so only a real architectural regression (not
//! runner noise) trips it.

use dm_bench::timing::bench;
use dm_diva::{Diva, DivaConfig, Op, ProcProgram, RunReport, StepCtx, StrategyKind, VarHandle};
use dm_mesh::{Mesh, TreeShape};
use std::sync::Arc;

const ROUNDS: usize = 40;
const SIDE: usize = 16;

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

fn seed_of(proc: usize) -> u64 {
    0x9E3779B97F4A7C15u64 ^ (proc as u64) << 17
}

fn make_diva() -> (Diva, Arc<Vec<VarHandle>>) {
    let cfg = DivaConfig::new(
        Mesh::square(SIDE),
        StrategyKind::AccessTree(TreeShape::quad()),
    );
    let mut diva = Diva::new(cfg);
    let vars: Vec<VarHandle> = (0..diva.num_procs())
        .map(|p| diva.alloc(p, 512, 0u64))
        .collect();
    (diva, Arc::new(vars))
}

fn run_threaded() -> RunReport {
    let (diva, vars) = make_diva();
    let outcome = diva
        .run_prototype(move |ctx| {
            let mut rng = seed_of(ctx.proc_id());
            for round in 1..=ROUNDS {
                ctx.compute_int_ops(5);
                let r = lcg_next(&mut rng);
                let var = vars[(r % vars.len() as u64) as usize];
                if r & 1 == 0 {
                    let _ = ctx.read::<u64>(var);
                } else {
                    ctx.write(var, round as u64);
                }
            }
            ctx.barrier();
        })
        .expect_completed();
    outcome.report
}

struct UniformProgram {
    vars: Arc<Vec<VarHandle>>,
    rng: u64,
    round: usize,
    done: bool,
}

impl ProcProgram for UniformProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        if self.done {
            return Op::Done;
        }
        if self.round == ROUNDS {
            self.done = true;
            return Op::Barrier;
        }
        self.round += 1;
        ctx.compute_int_ops(5);
        let r = lcg_next(&mut self.rng);
        let var = self.vars[(r % self.vars.len() as u64) as usize];
        if r & 1 == 0 {
            Op::Read(var)
        } else {
            Op::Write(var, Arc::new(self.round as u64))
        }
    }
}

fn run_driven() -> RunReport {
    let (diva, vars) = make_diva();
    let programs: Vec<UniformProgram> = (0..SIDE * SIDE)
        .map(|p| UniformProgram {
            vars: Arc::clone(&vars),
            rng: seed_of(p),
            round: 0,
            done: false,
        })
        .collect();
    diva.run_driven(programs).expect_completed().report
}

fn main() {
    // `cargo bench -- --min-speedup X` forwards everything after `--` here.
    let args: Vec<String> = std::env::args().collect();
    let min_speedup: Option<f64> = args.iter().position(|a| a == "--min-speedup").map(|i| {
        // An explicitly requested gate must never be silently disabled.
        args.get(i + 1)
            .unwrap_or_else(|| panic!("--min-speedup requires a value"))
            .parse()
            .unwrap_or_else(|e| panic!("invalid --min-speedup value: {e}"))
    });

    // Same simulated execution in both modes — guard against drift.
    assert_eq!(
        run_threaded(),
        run_driven(),
        "threaded and driven backends must produce bit-identical reports"
    );

    let name = format!("protocol/uniform_rw_{SIDE}x{SIDE}_quad_{ROUNDS}rounds");
    let threaded = bench(&format!("{name}/threaded"), 10, run_threaded);
    let driven = bench(&format!("{name}/driven"), 10, run_driven);
    let speedup = threaded.secs() / driven.secs();
    println!("driven-mode speedup over thread-per-processor: {speedup:.1}x");

    if let Some(floor) = min_speedup {
        if speedup < floor {
            eprintln!("FAIL: speedup {speedup:.1}x is below the regression floor {floor:.1}x");
            std::process::exit(1);
        }
        println!("PASS: speedup {speedup:.1}x >= floor {floor:.1}x");
    }
}
