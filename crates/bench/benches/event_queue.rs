//! Event-queue micro-benchmark on a *recorded* trace: `BinaryHeap` (the
//! current `dm_engine::EventQueue` backing store) vs a 4-ary inverted
//! (min-)heap, replaying the exact push/pop interleaving of a real fig8
//! Barnes-Hut run instead of a synthetic workload.
//!
//! Motivation (ROADMAP, follow-ons from PR 1): heap push/pop is ~25% of
//! driven-mode time, and a slab-indexed heap already *lost* to the simple
//! inline heap — measure before believing. A 4-ary heap halves the tree
//! depth (fewer cache lines touched per sift-down) at the cost of three
//! extra comparisons per level; whether that wins depends on the real
//! push/pop mix, which is why the trace is recorded from an actual figure
//! run (`DivaConfig::trace_queue`).
//!
//! Decision rule: adopt the 4-ary variant in `dm_engine::events` only if it
//! beats `BinaryHeap` by ≥10% median replay time on the trace; otherwise the
//! bench stays as the documented negative result.
//!
//! Measured on the PR's single-core dev container (see
//! `crates/bench/README.md` for the recorded numbers): the 4-ary heap was
//! consistently *slower* than `BinaryHeap` on the fig8 trace — the trace's
//! heap stays shallow (hundreds of pending events), so the depth advantage
//! never amortises the extra per-level comparisons. Negative result:
//! `BinaryHeap` stays.

use dm_apps::barnes_hut::{run_shared_driven, BhParams};
use dm_apps::workload::plummer_bodies;
use dm_bench::timing::bench;
use dm_diva::{Diva, DivaConfig, QueueOp, StrategyKind};
use dm_engine::{EventQueue, SimTime};
use dm_mesh::{Mesh, TreeShape};

/// Record the coordinator's push/pop trace of one real fig8 point: the
/// default-tier 16×16 mesh, 2 000 bodies, 3 time steps, 4-ary access tree.
fn record_fig8_trace() -> Vec<QueueOp> {
    let params = BhParams {
        n_bodies: 2_000,
        timesteps: 3,
        warmup_steps: 1,
        ..BhParams::new(0)
    };
    let bodies = plummer_bodies(0x5EED ^ params.n_bodies as u64, params.n_bodies);
    let cfg = DivaConfig::new(
        Mesh::new(16, 16),
        StrategyKind::AccessTree(TreeShape::quad()),
    )
    .with_seed(0x5EED)
    .with_queue_trace(true);
    let out = run_shared_driven(Diva::new(cfg), params, &bodies);
    assert!(
        !out.queue_trace.is_empty(),
        "trace recording produced no operations"
    );
    out.queue_trace
}

/// A 4-ary *inverted* heap: a min-heap (std's `BinaryHeap` is a max-heap,
/// hence "inverted") with four children per node — children of slot `i` live
/// at `4i + 1 ..= 4i + 4`. Same deterministic FIFO tie-breaking as
/// `EventQueue` (per-push sequence numbers).
struct QuadHeap<T> {
    v: Vec<(SimTime, u64, T)>,
    next_seq: u64,
}

impl<T> QuadHeap<T> {
    fn with_capacity(cap: usize) -> Self {
        QuadHeap {
            v: Vec::with_capacity(cap),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.v.push((time, seq, item));
        // Sift up.
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if (self.v[i].0, self.v[i].1) < (self.v[parent].0, self.v[parent].1) {
                self.v.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.v.is_empty() {
            return None;
        }
        let last = self.v.len() - 1;
        self.v.swap(0, last);
        let (time, _, item) = self.v.pop().expect("non-empty");
        // Sift down over up to four children.
        let mut i = 0;
        let len = self.v.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            for c in (first_child + 1)..(first_child + 4).min(len) {
                if (self.v[c].0, self.v[c].1) < (self.v[best].0, self.v[best].1) {
                    best = c;
                }
            }
            if (self.v[best].0, self.v[best].1) < (self.v[i].0, self.v[i].1) {
                self.v.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        Some((time, item))
    }
}

/// Replay the trace on the production queue; fold popped times into a
/// checksum so the work cannot be elided.
fn replay_binary_heap(trace: &[QueueOp]) -> u64 {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
    let mut n = 0u32;
    let mut acc = 0u64;
    for op in trace {
        match op {
            QueueOp::Push(t) => {
                q.push(*t, n);
                n = n.wrapping_add(1);
            }
            QueueOp::Pop => {
                let (t, item) = q.pop().expect("trace pops a non-empty queue");
                acc = acc.wrapping_mul(31).wrapping_add(t ^ item as u64);
            }
        }
    }
    acc
}

/// Replay the trace on the 4-ary inverted heap.
fn replay_quad_heap(trace: &[QueueOp]) -> u64 {
    let mut q: QuadHeap<u32> = QuadHeap::with_capacity(1024);
    let mut n = 0u32;
    let mut acc = 0u64;
    for op in trace {
        match op {
            QueueOp::Push(t) => {
                q.push(*t, n);
                n = n.wrapping_add(1);
            }
            QueueOp::Pop => {
                let (t, item) = q.pop().expect("trace pops a non-empty queue");
                acc = acc.wrapping_mul(31).wrapping_add(t ^ item as u64);
            }
        }
    }
    acc
}

fn main() {
    eprintln!("recording fig8 trace (16x16 mesh, 2000 bodies, 4-ary access tree)...");
    let trace = record_fig8_trace();
    let pushes = trace
        .iter()
        .filter(|op| matches!(op, QueueOp::Push(_)))
        .count();
    println!(
        "trace: {} ops ({} pushes, {} pops)",
        trace.len(),
        pushes,
        trace.len() - pushes
    );

    // Both heaps must pop the identical (deterministically tie-broken)
    // sequence, otherwise the comparison is meaningless.
    assert_eq!(
        replay_binary_heap(&trace),
        replay_quad_heap(&trace),
        "4-ary heap diverged from the production queue on the trace"
    );

    let iters = 30;
    let binary = bench("event_queue/replay_fig8_trace/BinaryHeap", iters, || {
        replay_binary_heap(&trace)
    });
    let quad = bench(
        "event_queue/replay_fig8_trace/4-ary inverted heap",
        iters,
        || replay_quad_heap(&trace),
    );

    let speedup = binary.secs() / quad.secs();
    println!("4-ary speedup over BinaryHeap: {speedup:.3}x (adoption threshold: >=1.10x)");
    if speedup >= 1.10 {
        println!(
            "VERDICT: 4-ary heap wins >=10% on the recorded trace — \
             adopt it in dm_engine::events"
        );
    } else {
        println!(
            "VERDICT: negative result — BinaryHeap stays in dm_engine::events \
             (the fig8 heap is shallow; 4-ary depth savings never amortise)"
        );
    }
}
