//! The figure-suite smoke gate: every figure binary runs at `--smoke` scale
//! and its rendered table must match the checked-in golden byte for byte.
//!
//! The tables contain only *simulated* quantities (virtual nanoseconds,
//! messages, bytes), which the single-threaded event-driven backend produces
//! deterministically — so the goldens are stable across machines and any
//! diff is a real behaviour change. CI runs the same comparison via
//! `.github/workflows/ci.yml` and uploads the JSON rows as artifacts.
//!
//! To update the goldens after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test -p dm-bench --test golden_smoke
//! git diff crates/bench/goldens/   # review before committing
//! ```

use std::path::Path;
use std::process::Command;

/// Run `bin` with `args` and return its stdout.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figure output is UTF-8")
}

fn check_golden(name: &str, bin: &str, args: &[&str]) {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("{name}.txt"));
    let got = run(bin, args);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &got).expect("writing golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {golden_path:?} ({e}); run UPDATE_GOLDENS=1 cargo test -p dm-bench \
             --test golden_smoke"
        )
    });
    assert_eq!(
        got, want,
        "{name}: smoke output diverged from {golden_path:?} — if intentional, regenerate with \
         UPDATE_GOLDENS=1"
    );
}

macro_rules! golden {
    ($test:ident, $name:literal, $bin:expr, $args:expr) => {
        #[test]
        fn $test() {
            check_golden($name, $bin, $args);
        }
    };
}

golden!(fig3_smoke, "fig3", env!("CARGO_BIN_EXE_fig3"), &["--smoke"]);
golden!(fig4_smoke, "fig4", env!("CARGO_BIN_EXE_fig4"), &["--smoke"]);
golden!(fig6_smoke, "fig6", env!("CARGO_BIN_EXE_fig6"), &["--smoke"]);
golden!(fig7_smoke, "fig7", env!("CARGO_BIN_EXE_fig7"), &["--smoke"]);
golden!(fig8_smoke, "fig8", env!("CARGO_BIN_EXE_fig8"), &["--smoke"]);
golden!(fig9_smoke, "fig9", env!("CARGO_BIN_EXE_fig9"), &["--smoke"]);
golden!(
    fig10_smoke,
    "fig10",
    env!("CARGO_BIN_EXE_fig10"),
    &["--smoke"]
);
golden!(
    fig11_smoke,
    "fig11",
    env!("CARGO_BIN_EXE_fig11"),
    &["--smoke"]
);
// The cross-topology gate: the strategies must simulate identically on the
// mesh, torus, hypercube and fat tree from one PR to the next.
golden!(
    fig12_smoke,
    "fig12",
    env!("CARGO_BIN_EXE_fig12"),
    &["--smoke"]
);
// The graceful-degradation gate: fault sampling, detour routing, healing,
// re-homing charges and app-loss bookkeeping must stay deterministic from
// one PR to the next — including the rows that diagnose a partition or a
// degraded (programs-lost) run. The second strike time exercises the
// mid-run fault path: a 50% strike calibrates against the intact run and
// lands the faults on warmed-up routes and directory state.
golden!(
    fig13_smoke,
    "fig13",
    env!("CARGO_BIN_EXE_fig13"),
    &["--smoke", "--strike-at", "0,50"]
);
// The serving gate: Zipf inverse-CDF sampling, hotspot migration phases,
// churn session gaps and the serving-side tallies (hits, bytes moved,
// response-time buckets, replication high-water) must stay deterministic
// from one PR to the next.
golden!(
    fig14_smoke,
    "fig14",
    env!("CARGO_BIN_EXE_fig14"),
    &["--smoke"]
);
golden!(
    scale_smoke,
    "scale",
    env!("CARGO_BIN_EXE_scale"),
    &["--smoke"]
);
golden!(
    scale_bh_smoke,
    "scale_bh",
    env!("CARGO_BIN_EXE_scale"),
    &["--smoke", "--bh"]
);
// The lifecycle gate: with reclamation disabled every simulated quantity must
// match the reclaim-on golden column for column — only the live-variable
// peak may differ (it grows with the leaked per-step trees).
golden!(
    scale_bh_noreclaim_smoke,
    "scale_bh_noreclaim",
    env!("CARGO_BIN_EXE_scale"),
    &["--smoke", "--bh", "--no-reclaim"]
);
