//! The variable-lifecycle acceptance gate: with per-step reclamation
//! enabled, every *simulated* quantity of the fig8 smoke sweep — execution
//! time, congestion, message counts, per-phase statistics — must be
//! bit-identical to a no-reclamation run, for all five strategies. Frees are
//! pure bookkeeping: they cost no simulated time and send no messages; only
//! the live-variable peak (the footprint of the protocol state) may differ.

use dm_apps::barnes_hut::BhParams;
use dm_bench::barnes_hut_shapes;
use dm_bench::bh_exp::run_point;

#[test]
fn fig8_smoke_quantities_are_bit_identical_with_and_without_reclamation() {
    // The fig8 smoke tier's first sweep point (4×4 mesh, 192 bodies, 2 time
    // steps), run for every strategy of the figure.
    let params_on = BhParams {
        timesteps: 2,
        warmup_steps: 1,
        ..BhParams::new(192)
    };
    let params_off = BhParams {
        reclaim: false,
        ..params_on
    };
    for (name, strategy) in barnes_hut_shapes() {
        let on = run_point((4, 4), 192, &name, strategy, params_on, 0x5EED);
        let off = run_point((4, 4), 192, &name, strategy, params_off, 0x5EED);
        assert_eq!(on.congestion_msgs, off.congestion_msgs, "{name}");
        assert_eq!(on.exec_time_ns, off.exec_time_ns, "{name}");
        assert_eq!(
            on.tree_build_congestion_msgs, off.tree_build_congestion_msgs,
            "{name}"
        );
        assert_eq!(on.tree_build_time_ns, off.tree_build_time_ns, "{name}");
        assert_eq!(
            on.force_congestion_msgs, off.force_congestion_msgs,
            "{name}"
        );
        assert_eq!(on.force_time_ns, off.force_time_ns, "{name}");
        assert_eq!(on.force_compute_ns, off.force_compute_ns, "{name}");
        assert_eq!(on.interactions, off.interactions, "{name}");
        // Reclamation is observable: the reclaim-on peak is strictly below
        // the leaky one (the second step's tree reuses the first's slots).
        assert!(
            on.live_vars_peak < off.live_vars_peak,
            "{name}: {} !< {}",
            on.live_vars_peak,
            off.live_vars_peak
        );
    }
}
