//! Executor determinism gate: a sweep must produce byte-identical rendered
//! tables and JSON rows for `--jobs 1` (serial, on the calling thread) and
//! `--jobs 4` (parallel executor) — the only admissible difference is the
//! per-job `host_ms` field of the JSON sidecar, which measures host
//! wall-clock and is excluded from all goldens.
//!
//! Covers both sweep shapes: the ratio-assembled matmul path (`fig3`, whose
//! rows are computed *after* the executor returns, from the baseline of each
//! point group) and the direct-row Barnes-Hut path (`fig8`, five strategies
//! per point — the sweep the issue's ÷N wall-clock target is about).

use std::path::PathBuf;
use std::process::Command;

/// Run `bin` at smoke scale with the given jobs count; return (stdout, JSON).
fn run_smoke(bin: &str, jobs: &str) -> (String, String) {
    let json_path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "{}_jobs{jobs}.json",
        PathBuf::from(bin).file_name().unwrap().to_string_lossy()
    ));
    let out = Command::new(bin)
        .args(["--smoke", "--jobs", jobs, "--json"])
        .arg(&json_path)
        .output()
        .unwrap_or_else(|e| panic!("running {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} --smoke --jobs {jobs} failed with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("figure output is UTF-8");
    let json = std::fs::read_to_string(&json_path).expect("JSON sidecar written");
    (stdout, json)
}

/// Drop every `,"host_ms":<number>` field — the only run-dependent quantity
/// in the sidecar. `host_ms` is serialized last in each row, so the field is
/// always comma-prefixed.
fn strip_host_ms(json: &str) -> String {
    let marker = ",\"host_ms\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find(marker) {
        out.push_str(&rest[..i]);
        let tail = &rest[i + marker.len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(tail.len());
        assert!(end > 0, "host_ms field without a numeric value");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn assert_jobs_invariant(bin: &str) {
    let (table_serial, json_serial) = run_smoke(bin, "1");
    let (table_parallel, json_parallel) = run_smoke(bin, "4");
    assert_eq!(
        table_serial, table_parallel,
        "{bin}: rendered table differs between --jobs 1 and --jobs 4"
    );
    assert_ne!(
        json_serial, "",
        "{bin}: empty JSON sidecar — the sweep wrote nothing"
    );
    assert!(
        json_serial.contains("\"host_ms\":"),
        "{bin}: JSON sidecar carries no per-job host_ms fields"
    );
    assert_eq!(
        strip_host_ms(&json_serial),
        strip_host_ms(&json_parallel),
        "{bin}: JSON rows differ between --jobs 1 and --jobs 4 beyond host_ms"
    );
}

#[test]
fn fig8_rows_are_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig8"));
}

#[test]
fn fig3_ratio_assembly_is_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig3"));
}

#[test]
fn fig12_cross_topology_sweep_is_jobs_invariant() {
    // The new sweep mixes two workloads and four topologies per strategy —
    // its description-order guarantee must hold like the mesh figures'.
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig12"));
}

#[test]
fn fig13_delta_assembly_is_jobs_invariant() {
    // The degradation sweep assembles per-group deltas after the executor
    // returns (like fig3's ratios) and renders partitioned rows from
    // partial reports — both must be independent of worker interleaving.
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig13"));
}

#[test]
fn fig14_serving_sweep_is_jobs_invariant() {
    // The serving sweep's rows carry the new ServingReport tallies and the
    // hotspot/churn machinery — their description-order assembly must be
    // independent of executor interleaving like every other figure's.
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig14"));
}

#[test]
fn strip_host_ms_removes_only_the_field() {
    let row = r#"[{"a":1,"host_ms":12.5},{"a":2,"host_ms":3e-2}]"#;
    assert_eq!(strip_host_ms(row), r#"[{"a":1},{"a":2}]"#);
    // Idempotent on already-clean input.
    assert_eq!(strip_host_ms(r#"{"a":1}"#), r#"{"a":1}"#);
}
