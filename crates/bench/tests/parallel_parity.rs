//! The parallel-backend acceptance gate: `--workers N` must produce
//! **bit-identical** `RunReport`s to the serial driven backend — the same
//! invariant PR 1 gated driven-vs-threaded with, extended to intra-sim
//! parallelism. Covered here, all at CI-fast scale:
//!
//! * all five paper strategies × all four topologies, uniform workload;
//! * the fig8-style Barnes-Hut workload across the strategies;
//! * an active `FaultPlan` (node failure + link degradation mid-run);
//! * a property loop over worker counts 1–8 (partition counts beyond the
//!   decomposition's reach must degrade gracefully, never diverge).
//!
//! The runs use 64-node topologies so the first rounds are large enough to
//! actually cross the parallel frontend's spawn threshold — a 16-node smoke
//! run would stay on the inline path and the parity would be vacuous.

use dm_apps::barnes_hut::{run_shared_driven, BhParams};
use dm_apps::kv::{run_kv_driven, ChurnParams, KeyDist, KvParams};
use dm_apps::uniform::{run_uniform_driven, try_run_uniform_driven, UniformParams};
use dm_apps::workload::plummer_bodies;
use dm_bench::topo_exp::topologies_at;
use dm_bench::{barnes_hut_shapes, make_diva_on_tuned, SimTuning};
use dm_diva::{FaultPlan, RunReport, StrategyKind};
use dm_mesh::{AnyTopology, NodeId};

const SEED: u64 = 0x5EED;

fn tuned(workers: usize) -> SimTuning {
    SimTuning {
        workers,
        ..SimTuning::default()
    }
}

fn uniform_report(topo: &AnyTopology, strategy: StrategyKind, workers: usize) -> RunReport {
    let mut params = UniformParams::new(topo.nodes());
    params.ops_per_proc = 24;
    params.seed = SEED;
    let diva = make_diva_on_tuned(topo.clone(), strategy, SEED, tuned(workers));
    run_uniform_driven(diva, params).report
}

#[test]
fn uniform_reports_are_bit_identical_across_strategies_and_topologies() {
    for topo in topologies_at(64) {
        for (name, strategy) in barnes_hut_shapes() {
            let serial = uniform_report(&topo, strategy, 1);
            let parallel = uniform_report(&topo, strategy, 4);
            assert_eq!(serial, parallel, "{} / {name} with 4 workers", topo.name());
        }
    }
}

#[test]
fn barnes_hut_reports_are_bit_identical_for_two_and_four_workers() {
    let params = BhParams {
        timesteps: 2,
        warmup_steps: 1,
        ..BhParams::new(192)
    };
    let bodies = plummer_bodies(SEED ^ 192, 192);
    let mesh: AnyTopology = dm_mesh::Mesh::square(8).into();
    for (name, strategy) in barnes_hut_shapes() {
        let run = |workers: usize| {
            let diva = make_diva_on_tuned(mesh.clone(), strategy, SEED, tuned(workers));
            run_shared_driven(diva, params, &bodies).report
        };
        let serial = run(1);
        for workers in [2, 4] {
            assert_eq!(serial, run(workers), "{name} with {workers} workers");
        }
    }
}

#[test]
fn fault_plans_fire_at_identical_simulated_times_under_workers() {
    // A mid-run node failure plus a link-degradation wave: the coordinator
    // applies both at fixed simulated times, which must not shift when the
    // rounds are stepped on worker threads — re-homing traffic, fault
    // tallies and the final report must all match bit for bit.
    let plan = FaultPlan::new(5)
        .degrade_links(0.2, 0.25, 1_000)
        .fail_node(NodeId(8), 2_000_000);
    for topo in topologies_at(64) {
        let mut params = UniformParams::new(topo.nodes());
        params.ops_per_proc = 24;
        params.seed = SEED;
        #[allow(clippy::result_large_err)] // one call per worker count
        let run = |workers: usize| {
            let cfg = dm_diva::DivaConfig::on(topo.clone(), StrategyKind::FixedHome)
                .with_seed(SEED)
                .with_fault_plan(plan.clone())
                .with_workers(workers);
            try_run_uniform_driven(dm_diva::Diva::new(cfg), params)
        };
        match (run(1), run(4)) {
            (Ok(serial), Ok(parallel)) => {
                assert_eq!(serial.report, parallel.report, "{} faulted", topo.name());
                assert!(serial.report.faults.nodes_failed >= 1);
            }
            (Err(serial), Err(parallel)) => {
                assert_eq!(
                    serial.report,
                    parallel.report,
                    "{} partitioned",
                    topo.name()
                );
                assert_eq!(serial.unreachable, parallel.unreachable);
                assert_eq!(serial.at, parallel.at);
            }
            (serial, parallel) => panic!(
                "{}: serial and parallel disagree on the outcome kind \
                 (serial ok={}, parallel ok={})",
                topo.name(),
                serial.is_ok(),
                parallel.is_ok()
            ),
        }
    }
}

#[test]
fn kv_hotspot_with_churn_is_bit_identical_under_workers() {
    // The fig14 request workload with every moving part switched on: a
    // migrating hotspot (phase boundaries keyed on op index), Zipf-free
    // skew, client churn idle gaps and the serving-side tallies (hits,
    // bytes moved, response-time buckets, replication high-water) — all of
    // it must survive intra-sim parallelism bit for bit.
    let mesh: AnyTopology = dm_mesh::Mesh::square(8).into();
    let params = KvParams {
        ops_per_client: 24,
        seed: SEED,
        dist: KeyDist::Hotspot {
            migrate_at: vec![25, 50, 75],
            hot_permille: 900,
        },
        churn: Some(ChurnParams {
            sessions: 2,
            idle_us: 1_500,
        }),
        ..KvParams::new(64)
    };
    let strategy = StrategyKind::AccessTree(dm_mesh::TreeShape::quad());
    let run = |workers: usize| {
        let diva = make_diva_on_tuned(mesh.clone(), strategy, SEED, tuned(workers));
        run_kv_driven(diva, params.clone())
    };
    let serial = run(1);
    assert!(serial.report.serving.requests > 0);
    for workers in [2, 4] {
        let parallel = run(workers);
        assert_eq!(serial.report, parallel.report, "{workers} workers");
        assert_eq!(serial.checksum, parallel.checksum, "{workers} workers");
    }
}

#[test]
fn every_worker_count_from_one_to_eight_matches_serial() {
    // The property loop of the issue: partition counts 1–8 on one mesh
    // workload. Counts that exceed what the decomposition tree can split
    // (or the processor count) must still be bit-identical, not merely run.
    let mesh: AnyTopology = dm_mesh::Mesh::square(8).into();
    let strategy = StrategyKind::AccessTree(dm_mesh::TreeShape::quad());
    let serial = uniform_report(&mesh, strategy, 1);
    for workers in 2..=8 {
        assert_eq!(
            serial,
            uniform_report(&mesh, strategy, workers),
            "workers={workers}"
        );
    }
}
