//! Resume/shard determinism gate for the streaming sweep engine.
//!
//! Three ways of producing a figure must emit byte-identical rendered
//! tables and JSON (modulo the per-job `host_ms` sidecar field, the only
//! run-dependent quantity):
//!
//! 1. a fresh uninterrupted run;
//! 2. a run killed mid-sweep (via the deterministic `DM_SWEEP_KILL_AFTER`
//!    crash-injection hook) and finished with `--resume`;
//! 3. two `--shard i/2` runs stitched together by the `merge` binary and
//!    rendered by a final `--resume` pass that executes nothing.
//!
//! Covers the direct-row Barnes-Hut path (`fig8`) and the delta-assembled
//! fault path (`fig13`, whose deltas are recomputed at assembly from
//! checkpointed pre-delta rows), at smoke scale like the `--jobs` gate.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// Run `bin --smoke --jobs 2 --json <json>` with extra args and env;
/// return (status ok, stdout, stderr).
fn run(bin: &str, json: &PathBuf, extra: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(bin);
    cmd.args(["--smoke", "--jobs", "2", "--json"]).arg(json);
    cmd.args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("running {bin}: {e}"));
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("figure stdout is UTF-8"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Drop every `,"host_ms":<number>` field (same helper as the `--jobs`
/// gate; `host_ms` is serialized last in each record).
fn strip_host_ms(json: &str) -> String {
    let marker = ",\"host_ms\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find(marker) {
        out.push_str(&rest[..i]);
        let tail = &rest[i + marker.len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(tail.len());
        assert!(end > 0, "host_ms field without a numeric value");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn assert_resume_invariant(bin: &str, fig: &str) {
    // 1. The fresh, uninterrupted baseline.
    let fresh_json = tmp(&format!("{fig}_fresh.json"));
    let (ok, fresh_table, err) = run(bin, &fresh_json, &[], &[]);
    assert!(ok, "{fig} fresh run failed:\n{err}");
    assert!(!fresh_table.is_empty(), "{fig} fresh run rendered nothing");
    let fresh = strip_host_ms(&read(&fresh_json));

    // 2. Kill after 3 completed jobs, then resume. The cut-short run must
    //    exit cleanly, render nothing, and leave a resumable checkpoint.
    let cut_json = tmp(&format!("{fig}_cut.json"));
    let (ok, cut_table, err) = run(bin, &cut_json, &[], &[("DM_SWEEP_KILL_AFTER", "3")]);
    assert!(ok, "{fig} cut-short run failed:\n{err}");
    assert!(
        cut_table.is_empty(),
        "{fig} cut-short run rendered a table:\n{cut_table}"
    );
    assert!(
        err.contains("checkpoint:"),
        "{fig} cut-short run printed no checkpoint note:\n{err}"
    );
    let (ok, resumed_table, err) = run(bin, &cut_json, &["--resume"], &[]);
    assert!(ok, "{fig} resume run failed:\n{err}");
    assert!(
        err.contains("resumed 3/"),
        "{fig} resume did not restore the 3 checkpointed jobs:\n{err}"
    );
    assert_eq!(
        fresh_table, resumed_table,
        "{fig}: resumed table differs from the fresh run"
    );
    assert_eq!(
        fresh,
        strip_host_ms(&read(&cut_json)),
        "{fig}: resumed JSON differs from the fresh run beyond host_ms"
    );

    // 3. Two shards, merged, rendered by a final --resume pass.
    let shard_json = tmp(&format!("{fig}_shard.json"));
    for shard in ["0/2", "1/2"] {
        let (ok, table, err) = run(bin, &shard_json, &["--shard", shard], &[]);
        assert!(ok, "{fig} shard {shard} failed:\n{err}");
        assert!(
            table.is_empty(),
            "{fig} shard {shard} rendered a table:\n{table}"
        );
    }
    let canonical = format!("{}.partial.jsonl", shard_json.display());
    let merge = Command::new(env!("CARGO_BIN_EXE_merge"))
        .arg(&canonical)
        .arg(format!("{}.shard0of2.partial.jsonl", shard_json.display()))
        .arg(format!("{}.shard1of2.partial.jsonl", shard_json.display()))
        .output()
        .expect("running merge");
    assert!(
        merge.status.success(),
        "merge failed:\n{}",
        String::from_utf8_lossy(&merge.stderr)
    );
    let (ok, merged_table, err) = run(bin, &shard_json, &["--resume"], &[]);
    assert!(ok, "{fig} post-merge render failed:\n{err}");
    assert!(
        err.contains("executed 0"),
        "{fig} post-merge render re-executed jobs:\n{err}"
    );
    assert_eq!(
        fresh_table, merged_table,
        "{fig}: shard-merged table differs from the fresh run"
    );
    assert_eq!(
        fresh,
        strip_host_ms(&read(&shard_json)),
        "{fig}: shard-merged JSON differs from the fresh run beyond host_ms"
    );
}

#[test]
fn fig8_survives_kill_resume_and_shard_merge() {
    assert_resume_invariant(env!("CARGO_BIN_EXE_fig8"), "fig8");
}

#[test]
fn fig13_delta_assembly_survives_kill_resume_and_shard_merge() {
    assert_resume_invariant(env!("CARGO_BIN_EXE_fig13"), "fig13");
}

#[test]
fn fig14_serving_sweep_survives_kill_resume_and_shard_merge() {
    // The serving sweep's hotspot phases are keyed on op index (never
    // virtual time) and its churn gaps are seeded per client, so a killed,
    // resumed or sharded run must reproduce the fresh tables byte for byte.
    assert_resume_invariant(env!("CARGO_BIN_EXE_fig14"), "fig14");
}

#[test]
fn resuming_a_mismatched_checkpoint_is_refused() {
    // A fig8 smoke checkpoint must not resume a fig8 default-tier run: the
    // header pins tier, seed and job count.
    let json = tmp("mismatch.json");
    let bin = env!("CARGO_BIN_EXE_fig8");
    let (ok, _, err) = run(bin, &json, &[], &[("DM_SWEEP_KILL_AFTER", "2")]);
    assert!(ok, "cut-short smoke run failed:\n{err}");
    let out = Command::new(bin)
        .args(["--jobs", "2", "--resume", "--json"]) // default tier
        .arg(&json)
        .output()
        .expect("running fig8");
    assert!(
        !out.status.success(),
        "default-tier resume from a smoke checkpoint was accepted"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("refusing to resume"),
        "unexpected refusal message:\n{err}"
    );
}
