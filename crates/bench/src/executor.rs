//! The parallel sweep executor: run independent simulation points on a pool
//! of worker threads.
//!
//! Every figure of the evaluation is a grid of *independent* simulation runs
//! (sweep point × strategy). Since the event-driven backend produces every
//! simulated quantity deterministically per run, host-level parallelism is
//! free accuracy-wise: the sweep first *describes* its points as
//! self-contained [`Job`] values (parameters + strategy + seed, with the
//! [`Diva`](dm_diva::Diva) instance constructed up front and moved into the
//! job — the compile-time `Send` audit in `dm-diva` guarantees whole
//! simulations can cross threads), then hands them to [`run_jobs`].
//!
//! Guarantees and mechanics:
//!
//! * **Deterministic results** — outputs come back in *description order*
//!   regardless of completion order, so rendered tables and JSON rows are
//!   byte-identical for any `--jobs` value (enforced by the
//!   `jobs_determinism` integration test). Only the per-job host-time
//!   measurements differ between runs.
//! * **Longest-job-first scheduling** — jobs are dispatched by decreasing
//!   [`Job::weight`] (ties in description order), so a mega point does not
//!   straggle at the tail of the sweep behind a queue of cheap smoke points.
//! * **Memory governor** — jobs whose scheduling weight reaches
//!   [`HEAVY_WEIGHT`] (mega-scale points, whose live octrees peak at
//!   hundreds of thousands of variables — on any topology) are capped at
//!   [`max_heavy_concurrent`] in flight, a cap sized from the host's
//!   available memory; workers that would exceed the cap pick lighter jobs
//!   instead, or wait.
//! * **Per-job host timing** — each [`JobResult`] carries the wall-clock
//!   milliseconds the job spent on its worker. Host times are contention-
//!   skewed under high `--jobs` and are therefore reported only in the JSON
//!   sidecar, never in the golden-diffed tables.
//! * **Streaming completion** — [`run_jobs_streamed`] invokes a caller sink
//!   as each job finishes (in completion order, serialized under a lock),
//!   which is what the resumable sweep engine (`crate::stream`) uses to
//!   append every finished point to its append-only JSONL checkpoint the
//!   moment it exists, instead of buffering a 40-minute sweep in memory
//!   until the end. The streamed variant also accepts a completion budget
//!   (stop after N newly executed jobs) — the deterministic crash-injection
//!   hook the resume tests kill sweeps with.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Fallback host-memory budget assumed per memory-heavy job (mega-scale
/// Barnes-Hut points keep >600 000 live variables plus octree scratch per
/// run). The governor cap is `MemAvailable / <per-job budget>`, so a 16 GiB
/// box admits four heavy points, an 8 GiB one two — see
/// [`max_heavy_concurrent`]. When `BENCH_*.json` snapshots with `host_ms`
/// sidecar data are present in the working directory, the budget is instead
/// *fitted* from their recorded live-variable peaks (see
/// [`crate::calibration`]); this constant is the fallback.
pub const HEAVY_JOB_BYTES: u64 = 4 << 30;

/// Fallback heavy-job cap when host memory cannot be determined (no
/// `/proc/meminfo`, unparsable content). Two in flight bounds the peak
/// footprint while still overlapping the two strategies of a `scale --bh`
/// sweep — the historical fixed cap.
pub const FALLBACK_HEAVY_CONCURRENT: usize = 2;

/// Maximum number of memory-heavy jobs in flight at once, independent of
/// `--jobs`: available host memory divided by the per-job budget
/// [`HEAVY_JOB_BYTES`], clamped to `[1, 8]` (at least one heavy job must
/// always be admissible or the sweep deadlocks; above eight the working
/// sets thrash the shared caches long before memory runs out). Falls back
/// to [`FALLBACK_HEAVY_CONCURRENT`] when `/proc/meminfo` is unavailable.
/// Computed once per process.
pub fn max_heavy_concurrent() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        let per_job = crate::calibration::governor().heavy_job_bytes;
        std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|text| heavy_cap_from_meminfo_with(&text, per_job))
            .unwrap_or(FALLBACK_HEAVY_CONCURRENT)
    })
}

/// The governor cap for a given `/proc/meminfo` content: prefers
/// `MemAvailable` (free + reclaimable page cache), falls back to `MemTotal`,
/// divides by [`HEAVY_JOB_BYTES`] and clamps to `[1, 8]`. `None` when
/// neither field parses.
#[cfg(test)]
fn heavy_cap_from_meminfo(text: &str) -> Option<usize> {
    heavy_cap_from_meminfo_with(text, HEAVY_JOB_BYTES)
}

/// [`heavy_cap_from_meminfo`] with an explicit (possibly calibrated)
/// per-heavy-job byte budget.
fn heavy_cap_from_meminfo_with(text: &str, per_job_bytes: u64) -> Option<usize> {
    let bytes = meminfo_field(text, "MemAvailable").or_else(|| meminfo_field(text, "MemTotal"))?;
    Some(((bytes / per_job_bytes.max(1)) as usize).clamp(1, 8))
}

/// One `/proc/meminfo` field in bytes (the file reports kB).
fn meminfo_field(text: &str, field: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| line.strip_prefix(field)?.strip_prefix(':'))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
}

/// Fallback scheduling weight at which a job counts as memory-heavy.
/// Weights are the sweeps' cost estimates (bodies × time steps × network
/// nodes for Barnes-Hut, nodes × block size for matmul, ...), so the
/// threshold is topology-agnostic: a mega fat-tree or hypercube point trips
/// it exactly like the 64×64-mesh points it was calibrated on (the lightest
/// historically-capped point, fig8 `--mega` at 50 000 bodies × 5 steps ×
/// 4 096 nodes, weighs 1.02e9; the heaviest never-capped paper point weighs
/// ~1e8). When `BENCH_*.json` snapshots are present in the working
/// directory, the effective threshold is fitted from their `host_ms`
/// sidecar data instead — see [`crate::calibration::governor`] — and this
/// constant only bounds how far the fit may move it (10× either way).
pub const HEAVY_WEIGHT: u64 = 1_000_000_000;

/// The effective heavy-weight threshold: the calibrated value when snapshot
/// data is available, [`HEAVY_WEIGHT`] otherwise.
pub fn heavy_weight_threshold() -> u64 {
    crate::calibration::governor().heavy_weight
}

/// A self-contained unit of sweep work: one simulation run (or one figure
/// point), described up front and executed on an arbitrary worker thread.
pub struct Job<T> {
    /// Scheduling weight — an arbitrary monotonic cost estimate (bodies ×
    /// time steps × network nodes, nodes × block size, ...). Heavier jobs
    /// start first.
    pub weight: u64,
    /// Memory-heavy job (weight ≥ [`HEAVY_WEIGHT`], or flagged explicitly):
    /// capped at [`max_heavy_concurrent`] in flight.
    pub heavy: bool,
    run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Job<T> {
    /// Describe a job with the given scheduling weight. Jobs whose weight
    /// reaches [`heavy_weight_threshold`] (the calibrated [`HEAVY_WEIGHT`])
    /// are automatically treated as memory-heavy (see
    /// [`max_heavy_concurrent`]).
    pub fn new(weight: u64, run: impl FnOnce() -> T + Send + 'static) -> Self {
        Job {
            weight,
            heavy: weight >= heavy_weight_threshold(),
            run: Box::new(run),
        }
    }

    /// Mark the job as memory-heavy regardless of its weight (see
    /// [`max_heavy_concurrent`]).
    pub fn heavy(mut self) -> Self {
        self.heavy = true;
        self
    }

    /// Execute the job's closure on the calling thread. Used by wrappers
    /// that decorate a described job (progress lines, extra timing) before
    /// re-describing it with the same weight and heaviness.
    pub fn call(self) -> T {
        (self.run)()
    }
}

/// The outcome of one [`Job`].
pub struct JobResult<T> {
    /// The job's return value.
    pub value: T,
    /// Host wall-clock milliseconds the job spent executing (excluding queue
    /// wait). Contention-skewed under high `--jobs`; excluded from goldens.
    pub host_ms: f64,
}

/// Scheduler state shared by the worker threads.
struct SchedState<T> {
    /// Indices into `slots`, sorted heaviest-first; workers pop from the
    /// front (skipping over heavy jobs while the governor cap is reached).
    queue: Vec<usize>,
    /// The jobs themselves, taken (`None`) once dispatched.
    slots: Vec<Option<Job<T>>>,
    /// Results, written at the job's description index.
    results: Vec<Option<JobResult<T>>>,
    /// Number of heavy jobs currently executing.
    heavy_running: usize,
    /// Remaining completion budget (`None` = unlimited). Decremented at
    /// dispatch time — every dispatched job runs to completion, so the
    /// budget bounds *newly executed* jobs exactly.
    budget: Option<usize>,
}

/// A streaming completion sink: called with the job's description index and
/// its result as each job finishes (completion order, serialized — workers
/// take a lock around the call, so the sink may hold a file handle).
pub type Sink<'a, T> = Box<dyn FnMut(usize, &JobResult<T>) + Send + 'a>;

/// Run `jobs` on up to `workers` threads and return their results in
/// description order. `workers == 1` executes serially on the calling thread
/// (no pool, no reordering of side effects) — the baseline the determinism
/// test compares every parallel run against.
pub fn run_jobs<T: Send>(workers: usize, jobs: Vec<Job<T>>) -> Vec<JobResult<T>> {
    run_jobs_streamed(workers, jobs, None, None)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

/// [`run_jobs`] with streaming completion and an optional completion budget.
///
/// * `sink` — invoked as each job finishes with `(description_index,
///   &result)`, before `run_jobs_streamed` returns; calls are serialized
///   under a lock, in completion order (nondeterministic under `workers >
///   1` — sidecar records are self-describing precisely so this never
///   matters).
/// * `max_new` — stop dispatching after this many jobs have been started
///   (every started job still completes and reaches the sink). Used by the
///   resume tests to simulate a killed sweep at a deterministic point; the
///   remaining slots come back as `None`.
///
/// Results are in description order; `None` marks jobs the budget cut off.
pub fn run_jobs_streamed<T: Send>(
    workers: usize,
    jobs: Vec<Job<T>>,
    sink: Option<Sink<'_, T>>,
    max_new: Option<usize>,
) -> Vec<Option<JobResult<T>>> {
    let workers = workers.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        let mut sink = sink;
        let mut results: Vec<Option<JobResult<T>>> = Vec::with_capacity(jobs.len());
        let mut budget = max_new;
        for (i, job) in jobs.into_iter().enumerate() {
            if budget == Some(0) {
                results.push(None);
                continue;
            }
            if let Some(b) = &mut budget {
                *b -= 1;
            }
            let result = execute(job);
            if let Some(cb) = sink.as_mut() {
                cb(i, &result);
            }
            results.push(Some(result));
        }
        return results;
    }

    let n = jobs.len();
    // Longest-job-first dispatch order; ties keep description order (sort is
    // stable), so scheduling itself is deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].weight));

    let state = Mutex::new(SchedState {
        queue: order,
        slots: jobs.into_iter().map(Some).collect(),
        results: (0..n).map(|_| None).collect(),
        heavy_running: 0,
        budget: max_new,
    });
    let idle = Condvar::new();
    let sink = Mutex::new(sink);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&state, &idle, &sink));
        }
    });

    state
        .into_inner()
        .expect("executor state poisoned — a job panicked")
        .results
}

fn execute<T>(job: Job<T>) -> JobResult<T> {
    let start = Instant::now();
    let value = (job.run)();
    JobResult {
        value,
        host_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Releases a heavy job's governor slot on unwind. Without this, a heavy
/// job that panics would leave `heavy_running` elevated forever: workers
/// parked on the condvar never wake, `std::thread::scope` blocks joining
/// them, and the sweep hangs instead of propagating the panic.
struct HeavySlotGuard<'a, T> {
    state: &'a Mutex<SchedState<T>>,
    idle: &'a Condvar,
    armed: bool,
}

impl<T> Drop for HeavySlotGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            // Never panic inside this drop (it may already run during a
            // panic): take the state even if another worker poisoned it.
            let mut guard = self
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.heavy_running -= 1;
            self.idle.notify_all();
        }
    }
}

fn worker_loop<T: Send>(
    state: &Mutex<SchedState<T>>,
    idle: &Condvar,
    sink: &Mutex<Option<Sink<'_, T>>>,
) {
    let heavy_cap = max_heavy_concurrent();
    let mut guard = state.lock().expect("executor state poisoned");
    loop {
        // The completion budget is exhausted: leave the rest of the queue
        // undispatched (the streamed caller reports them as None). Wake any
        // parked workers so they observe the same cutoff and exit too.
        if guard.budget == Some(0) {
            guard.queue.clear();
            idle.notify_all();
            return;
        }
        // First queued job the governor admits: heavy jobs only while fewer
        // than the cap are in flight, light jobs always.
        let admitted = guard
            .queue
            .iter()
            .position(|&i| {
                let heavy = guard.slots[i].as_ref().is_some_and(|j| j.heavy);
                !heavy || guard.heavy_running < heavy_cap
            })
            .map(|pos| guard.queue.remove(pos));
        match admitted {
            Some(idx) => {
                let job = guard.slots[idx].take().expect("job dispatched twice");
                let heavy = job.heavy;
                if heavy {
                    guard.heavy_running += 1;
                }
                if let Some(b) = &mut guard.budget {
                    *b -= 1;
                }
                drop(guard);
                let mut slot = HeavySlotGuard {
                    state,
                    idle,
                    armed: heavy,
                };
                let result = execute(job);
                // Normal completion: release the slot under the re-taken
                // lock below instead (one acquisition, not two).
                slot.armed = false;
                // Stream the completion before recording it, outside the
                // scheduler lock: a slow fsync in the sink must not stall
                // other workers' dispatching, only other sinks.
                if let Some(cb) = sink.lock().expect("sink poisoned").as_mut() {
                    cb(idx, &result);
                }
                guard = state.lock().expect("executor state poisoned");
                guard.results[idx] = Some(result);
                if heavy {
                    guard.heavy_running -= 1;
                    // A governor slot freed up: wake workers parked on it.
                    idle.notify_all();
                }
            }
            None if guard.queue.is_empty() => return,
            None => {
                // Only heavy jobs remain and the governor cap is reached;
                // wait for a heavy job to finish.
                guard = idle.wait(guard).expect("executor state poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_description_order() {
        // Weights force the *execution* order to be the reverse of the
        // description order; results must still come back as described.
        for workers in [1, 2, 4] {
            let jobs: Vec<Job<usize>> = (0..16)
                .map(|i| Job::new(i as u64, move || i * 10))
                .collect();
            let out = run_jobs(workers, jobs);
            let values: Vec<usize> = out.iter().map(|r| r.value).collect();
            assert_eq!(values, (0..16).map(|i| i * 10).collect::<Vec<_>>());
            assert!(out.iter().all(|r| r.host_ms >= 0.0));
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(4, Vec::<Job<u8>>::new()).is_empty());
    }

    #[test]
    fn serial_path_runs_in_description_order() {
        // workers == 1 must not apply longest-first reordering to side
        // effects: progress output of a serial sweep reads top to bottom.
        let log = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job<()>> = (0..4)
            .map(|i| {
                let log = Arc::clone(&log);
                Job::new(i as u64, move || log.lock().unwrap().push(i))
            })
            .collect();
        run_jobs(1, jobs);
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn heavy_flag_derives_from_the_weight() {
        // The crate directory has no BENCH_*.json snapshots, so the
        // threshold is the constant.
        assert_eq!(heavy_weight_threshold(), HEAVY_WEIGHT);
        assert!(!Job::new(HEAVY_WEIGHT - 1, || ()).heavy);
        assert!(Job::new(HEAVY_WEIGHT, || ()).heavy);
        // Explicit flagging still works for weight-light but memory-heavy
        // special cases.
        assert!(Job::new(1, || ()).heavy().heavy);
    }

    #[test]
    fn governor_caps_concurrent_heavy_jobs() {
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job<()>> = (0..8)
            .map(|_| {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                Job::new(1, move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
                .heavy()
            })
            .collect();
        run_jobs(8, jobs);
        assert!(
            peak.load(Ordering::SeqCst) <= max_heavy_concurrent(),
            "governor admitted {} heavy jobs at once (cap {})",
            peak.load(Ordering::SeqCst),
            max_heavy_concurrent()
        );
    }

    #[test]
    fn heavy_cap_derives_from_available_memory() {
        // 20 GiB available → five 4 GiB heavy jobs.
        let text = "MemTotal:       32000000 kB\nMemAvailable:   20971520 kB\n";
        assert_eq!(heavy_cap_from_meminfo(text), Some(5));
        // MemAvailable missing (pre-3.14 kernels): fall back to MemTotal.
        let total_only = "MemTotal:       8388608 kB\nMemFree:        1024 kB\n";
        assert_eq!(heavy_cap_from_meminfo(total_only), Some(2));
        // Tiny hosts still admit one heavy job — a zero cap would deadlock.
        assert_eq!(heavy_cap_from_meminfo("MemAvailable: 512 kB\n"), Some(1));
        // Huge hosts are clamped: beyond eight the caches thrash first.
        assert_eq!(
            heavy_cap_from_meminfo("MemAvailable: 999999999 kB\n"),
            Some(8)
        );
        // Garbage in, None out (the caller falls back to the fixed cap).
        assert_eq!(heavy_cap_from_meminfo("SwapTotal: 0 kB\n"), None);
        assert_eq!(heavy_cap_from_meminfo("MemAvailable: lots\n"), None);
        // A calibrated (smaller) per-job budget admits more heavy jobs.
        let text = "MemAvailable:   20971520 kB\n";
        assert_eq!(heavy_cap_from_meminfo_with(text, 4 << 30), Some(5));
        assert_eq!(heavy_cap_from_meminfo_with(text, 2 << 30), Some(8));
        // The process-wide cap is always usable, whatever the host.
        assert!((1..=8).contains(&max_heavy_concurrent()));
    }

    #[test]
    fn light_jobs_overtake_capped_heavy_jobs() {
        // With the governor saturated by heavy jobs, a spare worker must
        // pick up light jobs instead of idling behind them.
        let jobs: Vec<Job<u32>> = vec![
            Job::new(100, || 0).heavy(),
            Job::new(99, || 1).heavy(),
            Job::new(98, || 2).heavy(),
            Job::new(1, || 3),
        ];
        let out = run_jobs(4, jobs);
        assert_eq!(
            out.iter().map(|r| r.value).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn panicking_heavy_job_propagates_instead_of_hanging() {
        // Regression: a heavy job that panics must release its governor
        // slot (HeavySlotGuard), so workers parked on the condvar wake up
        // and the panic propagates out of run_jobs — in any interleaving —
        // rather than the scope join hanging forever.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let result = std::panic::catch_unwind(|| {
            let jobs: Vec<Job<u32>> = vec![
                Job::new(3, || panic!("simulated point failure")).heavy(),
                Job::new(2, || {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    1
                })
                .heavy(),
                Job::new(1, || 2).heavy(),
                Job::new(0, || 3).heavy(),
            ];
            run_jobs(3, jobs)
        });
        std::panic::set_hook(prev_hook);
        assert!(result.is_err(), "the job panic must propagate");
    }

    #[test]
    fn streaming_sink_sees_every_completion_with_its_index() {
        for workers in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let jobs: Vec<Job<usize>> = (0..12).map(|i| Job::new(i as u64, move || i)).collect();
            let results = run_jobs_streamed(
                workers,
                jobs,
                Some(Box::new(|idx, r: &JobResult<usize>| {
                    seen.lock().unwrap().push((idx, r.value));
                })),
                None,
            );
            assert!(results.iter().all(|r| r.is_some()));
            let mut seen = seen.into_inner().unwrap();
            seen.sort();
            assert_eq!(seen, (0..12).map(|i| (i, i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn completion_budget_cuts_the_sweep_short() {
        // The crash-injection hook: with a budget of 3, exactly 3 jobs run
        // (serial path — deterministic: the first three in description
        // order), the rest come back as None, and the sink saw only the
        // executed ones.
        let executed = Mutex::new(0usize);
        let jobs: Vec<Job<usize>> = (0..8).map(|i| Job::new(1, move || i)).collect();
        let results = run_jobs_streamed(
            1,
            jobs,
            Some(Box::new(|_, _: &JobResult<usize>| {
                *executed.lock().unwrap() += 1;
            })),
            Some(3),
        );
        assert_eq!(*executed.lock().unwrap(), 3);
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 3);
        assert!(results[..3].iter().all(|r| r.is_some()));
        assert!(results[3..].iter().all(|r| r.is_none()));
        // Parallel path: the budget still bounds executions exactly, though
        // longest-first scheduling picks which jobs run.
        let jobs: Vec<Job<usize>> = (0..8).map(|i| Job::new(i as u64, move || i)).collect();
        let results = run_jobs_streamed(4, jobs, None, Some(5));
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 5);
        // A zero budget executes nothing and terminates.
        let jobs: Vec<Job<usize>> = (0..4).map(|i| Job::new(1, move || i)).collect();
        let results = run_jobs_streamed(4, jobs, None, Some(0));
        assert!(results.iter().all(|r| r.is_none()));
    }

    #[test]
    fn moves_whole_simulations_across_threads() {
        // The point of the Send audit: a described job owns a full Diva
        // instance and its report crosses back.
        use dm_diva::{Diva, DivaConfig, StrategyKind};
        use dm_mesh::Mesh;
        let jobs: Vec<Job<u64>> = (0..2)
            .map(|seed| {
                let diva = Diva::new(
                    DivaConfig::new(Mesh::square(2), StrategyKind::FixedHome).with_seed(seed),
                );
                Job::new(1, move || {
                    let outcome = diva.run_prototype(|ctx| ctx.barrier()).expect_completed();
                    outcome.report.total_time
                })
            })
            .collect();
        let out = run_jobs(2, jobs);
        assert!(out.iter().all(|r| r.value > 0));
    }
}
