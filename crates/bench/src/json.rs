//! Minimal hand-rolled JSON output.
//!
//! The repository builds offline and therefore cannot depend on `serde` /
//! `serde_json`; the experiment harness only ever serializes flat row structs
//! of numbers and short strings, so a small writer trait is all that is
//! needed. Output is valid JSON (RFC 8259): strings are escaped, non-finite
//! floats become `null`.

/// A value that can write itself as JSON.
pub trait ToJson {
    /// Append the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// The JSON encoding as a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        for ch in self.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for (usize, usize) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

/// Implement [`ToJson`] for a plain struct by listing its fields.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = first;
                    $crate::json::ToJson::write_json(stringify!($field), out);
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings_encode() {
        assert_eq!(5u64.to_json(), "5");
        assert_eq!(true.to_json(), "true");
        assert_eq!(false.to_json(), "false");
        assert_eq!(2.5f64.to_json(), "2.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!((3usize, 4usize).to_json(), "[3,4]");
    }

    struct Row {
        name: String,
        count: u64,
        ratio: f64,
    }
    impl_to_json!(Row { name, count, ratio });

    #[test]
    fn structs_and_vectors_encode() {
        let rows = vec![
            Row {
                name: "a".into(),
                count: 1,
                ratio: 0.5,
            },
            Row {
                name: "b".into(),
                count: 2,
                ratio: f64::INFINITY,
            },
        ];
        let json = rows.to_json();
        assert_eq!(
            json,
            "[{\"name\":\"a\",\"count\":1,\"ratio\":0.5},\n {\"name\":\"b\",\"count\":2,\"ratio\":null}]"
        );
    }
}
