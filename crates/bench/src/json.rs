//! Minimal hand-rolled JSON output — and, since the streaming sweep engine,
//! input.
//!
//! The repository builds offline and therefore cannot depend on `serde` /
//! `serde_json`; the experiment harness only ever serializes flat row structs
//! of numbers and short strings, so a small writer trait is all that is
//! needed. Output is valid JSON (RFC 8259): strings are escaped, non-finite
//! floats become `null`.
//!
//! The reader side ([`parse`], [`JsonValue`], [`FromJson`]) exists for the
//! resumable sweep sidecars (`crate::stream`): a checkpointed run must read
//! its own records back and reassemble rows **byte-identically** to a fresh
//! run. Two representation choices make that exactness cheap:
//!
//! * numbers are kept as their *raw source text* ([`JsonValue::Num`]) and
//!   only parsed at field-extraction time, so a `u64` beyond 2^53 survives
//!   the round trip without detouring through `f64`;
//! * `f64` fields re-parse the shortest-representation text Rust's `{}`
//!   formatting emitted, which round-trips bit-exactly for every finite
//!   value, and `null` maps back to `NAN` (matching the writer, which emits
//!   `null` for non-finite floats).

/// A value that can write itself as JSON.
pub trait ToJson {
    /// Append the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// The JSON encoding as a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        for ch in self.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for (usize, usize) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

/// A parsed JSON value. Numbers keep their raw source text so integer and
/// float fields can be extracted without a lossy `f64` round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as the exact text that appeared in the input.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order (the harness never emits duplicate
    /// keys).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset they occurred at —
/// enough to diagnose a corrupt sidecar record; this is a reader for the
/// harness's own output, not a general-purpose validator.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            // Validate once so extraction errors cannot hide a corrupt file.
            text.parse::<f64>()
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
            Ok(JsonValue::Num(text.to_string()))
        }
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).unwrap(), 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (the writer never escapes
                // non-ASCII, so multi-byte sequences appear verbatim).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// A value that can reconstruct itself from parsed JSON — the inverse of
/// [`ToJson`] for the row types the resumable sweep sidecars store.
pub trait FromJson: Sized {
    /// Build `Self` from a parsed value.
    fn from_json(v: &JsonValue) -> Result<Self, String>;
}

impl FromJson for u64 {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("u64 {s:?}: {e}")),
            other => Err(format!("expected u64, got {other:?}")),
        }
    }
}

impl FromJson for usize {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("usize {s:?}: {e}")),
            other => Err(format!("expected usize, got {other:?}")),
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("f64 {s:?}: {e}")),
            // The writer emits null for non-finite floats; NAN is the only
            // non-finite value the harness produces (ratio placeholders).
            JsonValue::Null => Ok(f64::NAN),
            other => Err(format!("expected f64, got {other:?}")),
        }
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl FromJson for (usize, usize) {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let items = v
            .as_arr()
            .ok_or_else(|| format!("expected pair, got {v:?}"))?;
        match items {
            [a, b] => Ok((usize::from_json(a)?, usize::from_json(b)?)),
            _ => Err(format!(
                "expected 2-element array, got {} elements",
                items.len()
            )),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_arr()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Extract and convert one object field (helper for [`crate::impl_from_json!`]).
pub fn field<T: FromJson>(v: &JsonValue, name: &str) -> Result<T, String> {
    let field = v
        .get(name)
        .ok_or_else(|| format!("missing field {name:?}"))?;
    T::from_json(field).map_err(|e| format!("field {name:?}: {e}"))
}

/// Implement [`ToJson`] for a plain struct by listing its fields.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = first;
                    $crate::json::ToJson::write_json(stringify!($field), out);
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

/// Implement [`FromJson`] for a plain struct by listing its fields — the
/// mirror of [`impl_to_json!`], used by the row types the resumable sweep
/// sidecars restore.
#[macro_export]
macro_rules! impl_from_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::JsonValue) -> Result<Self, String> {
                Ok(Self {
                    $($field: $crate::json::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings_encode() {
        assert_eq!(5u64.to_json(), "5");
        assert_eq!(true.to_json(), "true");
        assert_eq!(false.to_json(), "false");
        assert_eq!(2.5f64.to_json(), "2.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!((3usize, 4usize).to_json(), "[3,4]");
    }

    struct Row {
        name: String,
        count: u64,
        ratio: f64,
    }
    impl_to_json!(Row { name, count, ratio });

    #[test]
    fn structs_and_vectors_encode() {
        let rows = vec![
            Row {
                name: "a".into(),
                count: 1,
                ratio: 0.5,
            },
            Row {
                name: "b".into(),
                count: 2,
                ratio: f64::INFINITY,
            },
        ];
        let json = rows.to_json();
        assert_eq!(
            json,
            "[{\"name\":\"a\",\"count\":1,\"ratio\":0.5},\n {\"name\":\"b\",\"count\":2,\"ratio\":null}]"
        );
    }

    impl_from_json!(Row { name, count, ratio });

    #[test]
    fn structs_round_trip_byte_identically() {
        // The resume invariant in miniature: serialize → parse → restore →
        // re-serialize must reproduce the exact bytes, including a u64 above
        // 2^53 (which would corrupt through an f64 detour), a
        // shortest-representation float, and a NAN→null placeholder.
        let row = Row {
            name: "mesh 4x4 \"q\"\n".into(),
            count: 9_007_199_254_740_993, // 2^53 + 1
            ratio: 0.1,
        };
        let json = row.to_json();
        let back = Row::from_json(&parse(&json).unwrap()).unwrap();
        assert_eq!(back.to_json(), json);
        let nan = Row {
            name: "x".into(),
            count: 1,
            ratio: f64::NAN,
        };
        let json = nan.to_json();
        let back = Row::from_json(&parse(&json).unwrap()).unwrap();
        assert!(back.ratio.is_nan());
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parser_handles_the_harness_shapes() {
        let v = parse("{\"a\":[1,2.5,null],\"b\":\"x\\u0041\",\"c\":true,\"d\":{}}").unwrap();
        assert_eq!(v.get("b"), Some(&JsonValue::Str("xA".into())));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("d"), Some(&JsonValue::Obj(vec![])));
        // Whitespace and the row-separator the Vec writer emits.
        parse("[{\"a\":1},\n {\"a\":2}]").unwrap();
        // Errors, not panics, on garbage.
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn field_extraction_reports_what_is_missing() {
        let v = parse("{\"a\":1}").unwrap();
        assert_eq!(field::<u64>(&v, "a").unwrap(), 1);
        let err = field::<u64>(&v, "b").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
        let err = field::<String>(&v, "a").unwrap_err();
        assert!(err.contains("expected string"), "{err}");
    }

    #[test]
    fn pairs_round_trip() {
        let v = parse("[3,4]").unwrap();
        assert_eq!(<(usize, usize)>::from_json(&v).unwrap(), (3, 4));
        assert!(<(usize, usize)>::from_json(&parse("[3]").unwrap()).is_err());
    }
}
