//! Barnes-Hut experiments (Figures 8, 9, 10 and 11).
//!
//! Every sweep returns a [`BhSweep`]: the measured rows plus the sweep
//! metadata (scale tier, time-step count, θ, seed) that the JSON output
//! carries so downstream tooling can tell sweep points from different tiers
//! apart.

use crate::executor::Job;
use crate::{barnes_hut_shapes, make_diva_tuned, HarnessOpts, Scale, SimTuning};
use dm_apps::barnes_hut::{run_shared_driven, BhParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{RunReport, StrategyKind};
use dm_mesh::TreeShape;

/// Measurements of one Barnes-Hut run, reduced to the quantities the four
/// figures plot.
#[derive(Debug, Clone)]
pub struct BhRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh dimensions.
    pub mesh: (usize, usize),
    /// Number of bodies.
    pub n_bodies: usize,
    /// Total congestion in messages (Figure 8, left).
    pub congestion_msgs: u64,
    /// Total execution time of the measured steps in ns (Figure 8, right).
    pub exec_time_ns: u64,
    /// Tree-building phase congestion in messages (Figure 9, left).
    pub tree_build_congestion_msgs: u64,
    /// Tree-building phase time in ns (Figure 9, right).
    pub tree_build_time_ns: u64,
    /// Force-computation phase congestion in messages (Figure 10, left).
    pub force_congestion_msgs: u64,
    /// Force-computation phase time in ns (Figure 10, right).
    pub force_time_ns: u64,
    /// Local computation time inside the force phase in ns (Figure 10/11).
    pub force_compute_ns: u64,
    /// Total interactions computed (sanity/diagnostics).
    pub interactions: u64,
    /// Peak number of simultaneously live DIVA variables — flat in the
    /// time-step count when per-step reclamation is on, growing with every
    /// rebuilt tree when it is off.
    pub live_vars_peak: u64,
    /// Host wall-clock milliseconds this run took on its worker (JSON only —
    /// contention-skewed under high `--jobs`, excluded from goldens).
    pub host_ms: f64,
}

crate::impl_to_json!(BhRow {
    strategy,
    mesh,
    n_bodies,
    congestion_msgs,
    exec_time_ns,
    tree_build_congestion_msgs,
    tree_build_time_ns,
    force_congestion_msgs,
    force_time_ns,
    force_compute_ns,
    interactions,
    live_vars_peak,
    host_ms,
});

crate::impl_from_json!(BhRow {
    strategy,
    mesh,
    n_bodies,
    congestion_msgs,
    exec_time_ns,
    tree_build_congestion_msgs,
    tree_build_time_ns,
    force_congestion_msgs,
    force_time_ns,
    force_compute_ns,
    interactions,
    live_vars_peak,
    host_ms,
});

fn report_to_row(
    strategy: String,
    mesh: (usize, usize),
    n_bodies: usize,
    report: &RunReport,
    interactions: u64,
) -> BhRow {
    let region = |name: &str| report.region(name).cloned();
    let warmup = region("warmup");
    // Total over the measured steps = whole run minus the warm-up region.
    let measured_time = report
        .total_time
        .saturating_sub(warmup.as_ref().map(|r| r.wall_time).unwrap_or(0));
    let measured_congestion = report.congestion_msgs();
    let tree = region("tree-build");
    let force = region("force");
    BhRow {
        strategy,
        mesh,
        n_bodies,
        congestion_msgs: measured_congestion,
        exec_time_ns: measured_time,
        tree_build_congestion_msgs: tree.as_ref().map(|r| r.congestion_msgs).unwrap_or(0),
        tree_build_time_ns: tree.as_ref().map(|r| r.wall_time).unwrap_or(0),
        force_congestion_msgs: force.as_ref().map(|r| r.congestion_msgs).unwrap_or(0),
        force_time_ns: force.as_ref().map(|r| r.wall_time).unwrap_or(0),
        force_compute_ns: force.as_ref().map(|r| r.compute_time).unwrap_or(0),
        interactions,
        live_vars_peak: report.live_vars_high_water,
        host_ms: 0.0,
    }
}

/// Run one Barnes-Hut configuration and reduce it to a [`BhRow`].
pub fn run_point(
    mesh: (usize, usize),
    n_bodies: usize,
    strategy_name: &str,
    strategy: StrategyKind,
    params: BhParams,
    seed: u64,
) -> BhRow {
    run_point_tuned(
        mesh,
        n_bodies,
        strategy_name,
        strategy,
        params,
        seed,
        SimTuning::default(),
    )
}

/// [`run_point`] with explicit per-simulation tuning knobs (worker threads
/// inside the simulation, calibrated link costs). Every simulated quantity
/// of the row is identical for every tuning — the `parallel_parity` suite
/// gates the worker knob, the cost-table gates in dm-engine the other.
#[allow(clippy::too_many_arguments)]
pub fn run_point_tuned(
    mesh: (usize, usize),
    n_bodies: usize,
    strategy_name: &str,
    strategy: StrategyKind,
    params: BhParams,
    seed: u64,
    tuning: SimTuning,
) -> BhRow {
    let bodies = plummer_bodies(seed ^ n_bodies as u64, n_bodies);
    let diva = make_diva_tuned(mesh.0, mesh.1, strategy, seed, tuning);
    // Runs under the event-driven backend (bit-identical to threaded).
    let out = run_shared_driven(diva, params, &bodies);
    report_to_row(
        strategy_name.to_string(),
        mesh,
        n_bodies,
        &out.report,
        out.interactions,
    )
}

/// Memory proxy (bodies × network nodes) at which a Barnes-Hut point is
/// flagged for the executor's memory governor regardless of its scheduling
/// weight. The live-variable peak of a reclaiming run is O(bodies) and the
/// per-variable protocol state scales with the tree/network size — but
/// *not* with `--timesteps`, so heaviness must not ride on the
/// timestep-scaled CPU weight alone (`fig8 --mega --timesteps 4` would
/// silently uncap). Calibrated like [`crate::executor::HEAVY_WEIGHT`]: the
/// lightest historically-capped point (fig8 `--mega`, 50 000 bodies on
/// 4 096 nodes) scores 2.0e8; the heaviest never-capped points (paper tier,
/// fig11 `--mega` at 32×64) stay below 1.1e8.
pub const BH_HEAVY_MEM: u64 = 150_000_000;

/// Describe one Barnes-Hut point as an executor [`Job`]. The body cloud and
/// the mesh are built inside the job (both deterministic from the seed), so
/// a described mega sweep does not hold every point's bodies in memory at
/// once. Mega-scale points are capped by the executor's memory governor
/// through their scheduling weight (see [`crate::executor::HEAVY_WEIGHT`])
/// or, independently of the timestep count, through the [`BH_HEAVY_MEM`]
/// memory proxy — both topology-agnostic.
pub fn point_job(
    mesh: (usize, usize),
    n_bodies: usize,
    strategy_name: String,
    strategy: StrategyKind,
    params: BhParams,
    seed: u64,
    tuning: SimTuning,
) -> Job<BhRow> {
    // Simulation cost scales with bodies × steps, amplified by the mesh the
    // protocol traffic crosses.
    let weight = n_bodies as u64 * (params.timesteps as u64).max(1) * (mesh.0 * mesh.1) as u64;
    let mem = n_bodies as u64 * (mesh.0 * mesh.1) as u64;
    let job = Job::new(weight, move || {
        run_point_tuned(
            mesh,
            n_bodies,
            &strategy_name,
            strategy,
            params,
            seed,
            tuning,
        )
    });
    if mem >= BH_HEAVY_MEM {
        job.heavy()
    } else {
        job
    }
}

/// Run a list of described Barnes-Hut jobs through the checkpointed sweep
/// engine (see [`crate::stream::run_sweep`]) and attach each job's host
/// time to its row. `None` means the sweep is incomplete — a shard run or a
/// cut-short run whose completed jobs are checkpointed in the sidecar — and
/// the caller must not render.
pub fn run_bh_jobs(opts: &HarnessOpts, tag: &str, jobs: Vec<Job<BhRow>>) -> Option<Vec<BhRow>> {
    let results = crate::stream::run_sweep(opts, tag, jobs)?;
    Some(crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    }))
}

/// Metadata describing a sweep: which tier produced the rows and the
/// simulation parameters all rows share.
#[derive(Debug, Clone)]
pub struct SweepMeta {
    /// Scale tier name (`smoke`/`default`/`paper`/`mega`).
    pub scale: String,
    /// Simulated time steps per run.
    pub timesteps: usize,
    /// Leading steps excluded from the measurement.
    pub warmup_steps: usize,
    /// Opening criterion θ.
    pub theta: f64,
    /// Seed of the run.
    pub seed: u64,
    /// Whether per-step variable reclamation was on.
    pub reclaim: bool,
}

crate::impl_to_json!(SweepMeta {
    scale,
    timesteps,
    warmup_steps,
    theta,
    seed,
    reclaim,
});

/// A Barnes-Hut sweep: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct BhSweep {
    /// The sweep's shared parameters.
    pub meta: SweepMeta,
    /// One row per (configuration, strategy) point.
    pub rows: Vec<BhRow>,
}

crate::impl_to_json!(BhSweep { meta, rows });

/// Apply the harness-level lifecycle options (`--no-reclaim`,
/// `--timesteps N`) to a sweep's parameter prototype.
pub fn apply_lifecycle_opts(params: &mut BhParams, opts: &HarnessOpts) {
    params.reclaim = opts.reclaim;
    if let Some(t) = opts.timesteps {
        params.timesteps = t.max(1);
        params.warmup_steps = params.warmup_steps.min(params.timesteps - 1);
    }
}

fn sweep_meta(opts: &HarnessOpts, params: &BhParams) -> SweepMeta {
    SweepMeta {
        scale: opts.scale().name().to_string(),
        timesteps: params.timesteps,
        warmup_steps: params.warmup_steps,
        theta: params.theta,
        seed: opts.seed,
        reclaim: params.reclaim,
    }
}

/// The body-count sweep of Figures 8–10: a fixed mesh, all five strategies.
///
/// Tiers (all on the event-driven backend):
/// * smoke — 4×4 mesh, hundreds of bodies, seconds;
/// * default — 16×16 mesh, 2 000–8 000 bodies (re-tuned upwards from the
///   threaded-era 8×8/4 000 now that the driven backend is ~6× faster);
/// * paper — the paper's 16×16 mesh with 10 000–60 000 bodies and 7 steps;
/// * mega — beyond-paper: a 64×64 mesh (4 096 processors) with up to
///   100 000 bodies.
pub fn body_sweep(opts: &HarnessOpts) -> Option<BhSweep> {
    let (mesh, body_counts): ((usize, usize), Vec<usize>) = match opts.scale() {
        Scale::Smoke => ((4, 4), vec![192, 384]),
        Scale::Default => ((16, 16), vec![2_000, 4_000, 8_000]),
        Scale::Paper => (
            (16, 16),
            vec![10_000, 20_000, 30_000, 40_000, 50_000, 60_000],
        ),
        Scale::Mega => ((64, 64), vec![50_000, 100_000]),
    };
    let mut params_proto = match opts.scale() {
        Scale::Paper => BhParams::new(0),
        Scale::Mega => BhParams {
            timesteps: 5,
            warmup_steps: 1,
            ..BhParams::new(0)
        },
        Scale::Default => BhParams {
            timesteps: 3,
            warmup_steps: 1,
            ..BhParams::new(0)
        },
        Scale::Smoke => BhParams {
            timesteps: 2,
            warmup_steps: 1,
            ..BhParams::new(0)
        },
    };
    apply_lifecycle_opts(&mut params_proto, opts);
    let mut jobs = Vec::new();
    for &n in &body_counts {
        params_proto.n_bodies = n;
        for (name, strategy) in barnes_hut_shapes() {
            jobs.push(point_job(
                mesh,
                n,
                name,
                strategy,
                params_proto,
                opts.seed,
                opts.tuning(),
            ));
        }
    }
    Some(BhSweep {
        meta: sweep_meta(opts, &params_proto),
        rows: run_bh_jobs(opts, "", jobs)?,
    })
}

/// The network-size sweep of Figure 11: the number of bodies grows with the
/// number of processors (the paper uses N = 200·P), comparing the fixed home
/// against the 4-8-ary access tree.
///
/// The mega tier scales the mesh axis to 64×64 (4 096 processors — 8× the
/// paper's largest network) with 25 bodies per processor, so its last point
/// runs 102 400 bodies.
pub fn scaling_sweep(opts: &HarnessOpts) -> Option<BhSweep> {
    let (meshes, bodies_per_proc): (Vec<(usize, usize)>, usize) = match opts.scale() {
        Scale::Smoke => (vec![(2, 2), (2, 4), (4, 4)], 12),
        Scale::Default => (vec![(8, 8), (8, 16), (16, 16)], 100),
        Scale::Paper => (vec![(8, 8), (8, 16), (16, 16), (16, 32)], 200),
        Scale::Mega => (vec![(16, 16), (16, 32), (32, 32), (32, 64), (64, 64)], 25),
    };
    let params_proto = match opts.scale() {
        Scale::Paper => BhParams::new(0),
        Scale::Mega | Scale::Default => BhParams {
            timesteps: 3,
            warmup_steps: 1,
            ..BhParams::new(0)
        },
        Scale::Smoke => BhParams {
            timesteps: 2,
            warmup_steps: 1,
            ..BhParams::new(0)
        },
    };
    let strategies = vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-8-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 8)),
        ),
    ];
    let mut params_proto = params_proto;
    apply_lifecycle_opts(&mut params_proto, opts);
    let mut jobs = Vec::new();
    for &mesh in &meshes {
        let n = bodies_per_proc * mesh.0 * mesh.1;
        let mut params = params_proto;
        params.n_bodies = n;
        for (name, strategy) in &strategies {
            jobs.push(point_job(
                mesh,
                n,
                name.clone(),
                *strategy,
                params,
                opts.seed,
                opts.tuning(),
            ));
        }
    }
    Some(BhSweep {
        meta: sweep_meta(opts, &params_proto),
        rows: run_bh_jobs(opts, "", jobs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mega_points_stay_heavy_regardless_of_timesteps() {
        // The governor caps memory, and the live-variable peak does not
        // shrink with the timestep count — a short mega run must stay
        // capped even though its timestep-scaled weight drops below
        // HEAVY_WEIGHT.
        let params = BhParams {
            n_bodies: 50_000,
            timesteps: 2,
            warmup_steps: 1,
            ..BhParams::new(0)
        };
        let mega = point_job(
            (64, 64),
            50_000,
            "fixed home".into(),
            StrategyKind::FixedHome,
            params,
            1,
            crate::SimTuning::default(),
        );
        assert!(mega.weight < crate::executor::HEAVY_WEIGHT);
        assert!(mega.heavy, "mega point uncapped at a low timestep count");
        let light = point_job(
            (16, 16),
            10_000,
            "fixed home".into(),
            StrategyKind::FixedHome,
            params,
            1,
            crate::SimTuning::default(),
        );
        assert!(!light.heavy, "paper-tier point spuriously capped");
    }

    #[test]
    fn small_point_produces_sensible_phase_breakdown() {
        let params = BhParams {
            n_bodies: 300,
            timesteps: 2,
            warmup_steps: 1,
            theta: 1.0,
            dt: 0.01,
            include_compute: true,
            reclaim: true,
        };
        let row = run_point(
            (4, 4),
            300,
            "4-ary access tree",
            StrategyKind::AccessTree(dm_mesh::TreeShape::quad()),
            params,
            3,
        );
        assert!(row.exec_time_ns > 0);
        assert!(row.congestion_msgs > 0);
        assert!(row.tree_build_time_ns > 0);
        assert!(row.force_time_ns > 0);
        assert!(row.force_compute_ns > 0);
        assert!(row.force_time_ns >= row.force_compute_ns);
        assert!(row.interactions > 300);
        assert!(
            row.live_vars_peak > 300,
            "bodies alone exceed 300 live vars"
        );
        // Phase congestion cannot exceed total congestion.
        assert!(row.tree_build_congestion_msgs <= row.congestion_msgs);
        assert!(row.force_congestion_msgs <= row.congestion_msgs);
    }
}
