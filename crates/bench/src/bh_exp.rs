//! Barnes-Hut experiments (Figures 8, 9, 10 and 11).

use crate::{barnes_hut_shapes, make_diva, HarnessOpts};
use dm_apps::barnes_hut::{run_shared_driven, BhParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{RunReport, StrategyKind};
use dm_mesh::TreeShape;

/// Measurements of one Barnes-Hut run, reduced to the quantities the four
/// figures plot.
#[derive(Debug, Clone)]
pub struct BhRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh dimensions.
    pub mesh: (usize, usize),
    /// Number of bodies.
    pub n_bodies: usize,
    /// Total congestion in messages (Figure 8, left).
    pub congestion_msgs: u64,
    /// Total execution time of the measured steps in ns (Figure 8, right).
    pub exec_time_ns: u64,
    /// Tree-building phase congestion in messages (Figure 9, left).
    pub tree_build_congestion_msgs: u64,
    /// Tree-building phase time in ns (Figure 9, right).
    pub tree_build_time_ns: u64,
    /// Force-computation phase congestion in messages (Figure 10, left).
    pub force_congestion_msgs: u64,
    /// Force-computation phase time in ns (Figure 10, right).
    pub force_time_ns: u64,
    /// Local computation time inside the force phase in ns (Figure 10/11).
    pub force_compute_ns: u64,
    /// Total interactions computed (sanity/diagnostics).
    pub interactions: u64,
}

crate::impl_to_json!(BhRow {
    strategy,
    mesh,
    n_bodies,
    congestion_msgs,
    exec_time_ns,
    tree_build_congestion_msgs,
    tree_build_time_ns,
    force_congestion_msgs,
    force_time_ns,
    force_compute_ns,
    interactions,
});

fn report_to_row(
    strategy: String,
    mesh: (usize, usize),
    n_bodies: usize,
    report: &RunReport,
    interactions: u64,
) -> BhRow {
    let region = |name: &str| report.region(name).cloned();
    let warmup = region("warmup");
    // Total over the measured steps = whole run minus the warm-up region.
    let measured_time = report
        .total_time
        .saturating_sub(warmup.as_ref().map(|r| r.wall_time).unwrap_or(0));
    let measured_congestion = report.congestion_msgs();
    let tree = region("tree-build");
    let force = region("force");
    BhRow {
        strategy,
        mesh,
        n_bodies,
        congestion_msgs: measured_congestion,
        exec_time_ns: measured_time,
        tree_build_congestion_msgs: tree.as_ref().map(|r| r.congestion_msgs).unwrap_or(0),
        tree_build_time_ns: tree.as_ref().map(|r| r.wall_time).unwrap_or(0),
        force_congestion_msgs: force.as_ref().map(|r| r.congestion_msgs).unwrap_or(0),
        force_time_ns: force.as_ref().map(|r| r.wall_time).unwrap_or(0),
        force_compute_ns: force.as_ref().map(|r| r.compute_time).unwrap_or(0),
        interactions,
    }
}

/// Run one Barnes-Hut configuration and reduce it to a [`BhRow`].
pub fn run_point(
    mesh: (usize, usize),
    n_bodies: usize,
    strategy_name: &str,
    strategy: StrategyKind,
    params: BhParams,
    seed: u64,
) -> BhRow {
    let bodies = plummer_bodies(seed ^ n_bodies as u64, n_bodies);
    let diva = make_diva(mesh.0, mesh.1, strategy, seed);
    // Runs under the event-driven backend (bit-identical to threaded).
    let out = run_shared_driven(diva, params, &bodies);
    report_to_row(
        strategy_name.to_string(),
        mesh,
        n_bodies,
        &out.report,
        out.interactions,
    )
}

/// The body-count sweep of Figures 8–10: a fixed mesh, all five strategies.
pub fn body_sweep(opts: &HarnessOpts) -> Vec<BhRow> {
    let mesh = if opts.paper { (16, 16) } else { (8, 8) };
    let body_counts: Vec<usize> = if opts.paper {
        vec![10_000, 20_000, 30_000, 40_000, 50_000, 60_000]
    } else {
        vec![1_000, 2_000, 4_000]
    };
    let mut params_proto = if opts.paper {
        BhParams::new(0)
    } else {
        BhParams {
            timesteps: 3,
            warmup_steps: 1,
            ..BhParams::new(0)
        }
    };
    let mut rows = Vec::new();
    for &n in &body_counts {
        params_proto.n_bodies = n;
        for (name, strategy) in barnes_hut_shapes() {
            rows.push(run_point(mesh, n, &name, strategy, params_proto, opts.seed));
        }
    }
    rows
}

/// The network-size sweep of Figure 11: the number of bodies grows with the
/// number of processors (the paper uses N = 200·P), comparing the fixed home
/// against the 4-8-ary access tree.
pub fn scaling_sweep(opts: &HarnessOpts) -> Vec<BhRow> {
    let meshes: Vec<(usize, usize)> = if opts.paper {
        vec![(8, 8), (8, 16), (16, 16), (16, 32)]
    } else {
        vec![(4, 4), (4, 8), (8, 8)]
    };
    let bodies_per_proc = if opts.paper { 200 } else { 50 };
    let params_proto = if opts.paper {
        BhParams::new(0)
    } else {
        BhParams {
            timesteps: 3,
            warmup_steps: 1,
            ..BhParams::new(0)
        }
    };
    let strategies = vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-8-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 8)),
        ),
    ];
    let mut rows = Vec::new();
    for &mesh in &meshes {
        let n = bodies_per_proc * mesh.0 * mesh.1;
        let mut params = params_proto;
        params.n_bodies = n;
        for (name, strategy) in &strategies {
            rows.push(run_point(mesh, n, name, *strategy, params, opts.seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_produces_sensible_phase_breakdown() {
        let params = BhParams {
            n_bodies: 300,
            timesteps: 2,
            warmup_steps: 1,
            theta: 1.0,
            dt: 0.01,
            include_compute: true,
        };
        let row = run_point(
            (4, 4),
            300,
            "4-ary access tree",
            StrategyKind::AccessTree(dm_mesh::TreeShape::quad()),
            params,
            3,
        );
        assert!(row.exec_time_ns > 0);
        assert!(row.congestion_msgs > 0);
        assert!(row.tree_build_time_ns > 0);
        assert!(row.force_time_ns > 0);
        assert!(row.force_compute_ns > 0);
        assert!(row.force_time_ns >= row.force_compute_ns);
        assert!(row.interactions > 300);
        // Phase congestion cannot exceed total congestion.
        assert!(row.tree_build_congestion_msgs <= row.congestion_msgs);
        assert!(row.force_congestion_msgs <= row.congestion_msgs);
    }
}
