//! Matrix-multiplication experiments (Figures 3 and 4 and the arity sweep of
//! Section 3.1).

use crate::{make_diva, ratio, HarnessOpts, Scale};
use dm_apps::matmul::{run_hand_optimized_driven, run_shared_driven, MatmulParams};
use dm_diva::StrategyKind;
use dm_mesh::TreeShape;

/// One row of a matrix-multiplication figure: the congestion and
/// communication-time ratios of a dynamic strategy relative to the
/// hand-optimized message-passing baseline.
#[derive(Debug, Clone)]
pub struct MatmulRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh side length (√P).
    pub mesh_side: usize,
    /// Block size in integers.
    pub block_ints: usize,
    /// Congestion (bytes over the hottest link).
    pub congestion_bytes: u64,
    /// Communication time in virtual nanoseconds.
    pub comm_time_ns: u64,
    /// Congestion ratio vs the hand-optimized baseline.
    pub congestion_ratio: f64,
    /// Communication-time ratio vs the hand-optimized baseline.
    pub time_ratio: f64,
}

crate::impl_to_json!(MatmulRow {
    strategy,
    mesh_side,
    block_ints,
    congestion_bytes,
    comm_time_ns,
    congestion_ratio,
    time_ratio,
});

/// Run the matrix square for one (mesh, block size) point with the two
/// dynamic strategies of Figure 3/4 plus the baseline, and return the rows.
pub fn run_point(
    mesh_side: usize,
    block_ints: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
) -> Vec<MatmulRow> {
    let params = MatmulParams::new(block_ints);
    // All experiment points run under the event-driven backend (bit-identical
    // reports to the threaded one, orders of magnitude faster to simulate).
    let baseline = run_hand_optimized_driven(
        make_diva(mesh_side, mesh_side, StrategyKind::FixedHome, seed),
        params,
    );
    let base_congestion = baseline.report.congestion_bytes();
    let base_time = baseline.report.comm_time();
    let mut rows = vec![MatmulRow {
        strategy: "hand-optimized".to_string(),
        mesh_side,
        block_ints,
        congestion_bytes: base_congestion,
        comm_time_ns: base_time,
        congestion_ratio: 1.0,
        time_ratio: 1.0,
    }];
    for (name, strategy) in strategies {
        let out = run_shared_driven(make_diva(mesh_side, mesh_side, *strategy, seed), params);
        rows.push(MatmulRow {
            strategy: name.clone(),
            mesh_side,
            block_ints,
            congestion_bytes: out.report.congestion_bytes(),
            comm_time_ns: out.report.comm_time(),
            congestion_ratio: ratio(out.report.congestion_bytes(), base_congestion),
            time_ratio: ratio(out.report.comm_time(), base_time),
        });
    }
    rows
}

/// The two strategies Figure 3 and 4 compare against the baseline.
pub fn figure_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
    ]
}

/// The access-tree arity sweep discussed in the text of Section 3.1.
pub fn arity_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        (
            "2-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::binary()),
        ),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        (
            "4-16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 16)),
        ),
        (
            "16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::hex16()),
        ),
    ]
}

/// Figure 3: fixed mesh, block size sweep.
pub fn figure3(opts: &HarnessOpts) -> Vec<MatmulRow> {
    let (mesh_side, blocks): (usize, Vec<usize>) = match opts.scale() {
        Scale::Smoke => (4, vec![64, 256]),
        Scale::Default => (8, vec![64, 256, 1024]),
        Scale::Paper => (16, vec![64, 256, 1024, 4096]),
        Scale::Mega => (32, vec![256, 1024, 4096]),
    };
    let strategies = figure_strategies();
    blocks
        .into_iter()
        .flat_map(|b| run_point(mesh_side, b, &strategies, opts.seed))
        .collect()
}

/// Figure 4: fixed block size, network size sweep.
pub fn figure4(opts: &HarnessOpts) -> Vec<MatmulRow> {
    let (sides, block): (Vec<usize>, usize) = match opts.scale() {
        Scale::Smoke => (vec![2, 4], 256),
        Scale::Default => (vec![4, 8, 16], 1024),
        Scale::Paper => (vec![4, 8, 16, 32], 4096),
        Scale::Mega => (vec![16, 32, 64], 1024),
    };
    let strategies = figure_strategies();
    sides
        .into_iter()
        .flat_map(|s| run_point(s, block, &strategies, opts.seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_point_reproduces_the_ordering_of_the_paper() {
        // At any scale: hand-optimized < access tree < fixed home in
        // congestion, and the access tree beats the fixed home in time.
        let rows = run_point(8, 256, &figure_strategies(), 7);
        assert_eq!(rows.len(), 3);
        let base = &rows[0];
        let fh = rows.iter().find(|r| r.strategy == "fixed home").unwrap();
        let at = rows.iter().find(|r| r.strategy.contains("4-ary")).unwrap();
        assert_eq!(base.congestion_ratio, 1.0);
        assert!(
            at.congestion_ratio > 1.0,
            "access tree ratio {}",
            at.congestion_ratio
        );
        assert!(
            fh.congestion_ratio > at.congestion_ratio,
            "fixed home {} vs access tree {}",
            fh.congestion_ratio,
            at.congestion_ratio
        );
        assert!(
            fh.comm_time_ns > at.comm_time_ns,
            "fixed home time {} vs access tree time {}",
            fh.comm_time_ns,
            at.comm_time_ns
        );
    }
}
