//! Matrix-multiplication experiments (Figures 3 and 4 and the arity sweep of
//! Section 3.1).
//!
//! Every sweep *describes* its runs as executor [`Job`]s first — one job per
//! (point, strategy) plus one per baseline, each owning a fully constructed
//! [`Diva`](dm_diva::Diva) — and hands them to the checkpointed sweep engine
//! ([`crate::stream::run_sweep`]); the ratios against the hand-optimized
//! baseline are assembled afterwards from the description-ordered results,
//! so tables and JSON are byte-identical for every `--jobs` value, across
//! `--resume`, and across shard/merge. The sidecar stores the pre-ratio
//! rows; ratios are always recomputed at assembly.

use crate::executor::Job;
use crate::{make_diva_tuned, ratio, HarnessOpts, Scale, SimTuning};
use dm_apps::matmul::{run_hand_optimized_driven, run_shared_driven, MatmulParams};
use dm_diva::StrategyKind;
use dm_mesh::TreeShape;

/// One row of a matrix-multiplication figure: the congestion and
/// communication-time ratios of a dynamic strategy relative to the
/// hand-optimized message-passing baseline.
#[derive(Debug, Clone)]
pub struct MatmulRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh side length (√P).
    pub mesh_side: usize,
    /// Block size in integers.
    pub block_ints: usize,
    /// Congestion (bytes over the hottest link).
    pub congestion_bytes: u64,
    /// Communication time in virtual nanoseconds.
    pub comm_time_ns: u64,
    /// Congestion ratio vs the hand-optimized baseline.
    pub congestion_ratio: f64,
    /// Communication-time ratio vs the hand-optimized baseline.
    pub time_ratio: f64,
    /// Host wall-clock milliseconds this run took on its worker (JSON only —
    /// contention-skewed under high `--jobs`, excluded from goldens).
    pub host_ms: f64,
}

crate::impl_to_json!(MatmulRow {
    strategy,
    mesh_side,
    block_ints,
    congestion_bytes,
    comm_time_ns,
    congestion_ratio,
    time_ratio,
    host_ms,
});

crate::impl_from_json!(MatmulRow {
    strategy,
    mesh_side,
    block_ints,
    congestion_bytes,
    comm_time_ns,
    congestion_ratio,
    time_ratio,
    host_ms,
});

/// Describe the runs of one (mesh, block size) point: the hand-optimized
/// baseline first, then one job per dynamic strategy. Ratios are left at
/// `NAN` placeholders; [`finish_points`] fills them in once the
/// description-ordered results are back.
fn point_jobs(
    mesh_side: usize,
    block_ints: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
    tuning: SimTuning,
) -> Vec<Job<MatmulRow>> {
    let params = MatmulParams::new(block_ints);
    // Simulation cost grows with the mesh area and the block volume; the
    // baseline moves strictly less data than any dynamic strategy.
    let weight = (mesh_side * mesh_side) as u64 * block_ints as u64;
    let mut jobs = Vec::with_capacity(strategies.len() + 1);
    // The Diva instances are constructed *here*, at description time, and
    // move into their jobs — whole simulations crossing worker threads is
    // exactly what the compile-time `Send` audit in dm-diva guarantees.
    let baseline_diva =
        make_diva_tuned(mesh_side, mesh_side, StrategyKind::FixedHome, seed, tuning);
    jobs.push(Job::new(weight / 2, move || {
        // All experiment points run under the event-driven backend
        // (bit-identical reports to the threaded one, orders of magnitude
        // faster to simulate).
        let out = run_hand_optimized_driven(baseline_diva, params);
        MatmulRow {
            strategy: "hand-optimized".to_string(),
            mesh_side,
            block_ints,
            congestion_bytes: out.report.congestion_bytes(),
            comm_time_ns: out.report.comm_time(),
            congestion_ratio: 1.0,
            time_ratio: 1.0,
            host_ms: 0.0,
        }
    }));
    for (name, strategy) in strategies {
        let name = name.clone();
        let diva = make_diva_tuned(mesh_side, mesh_side, *strategy, seed, tuning);
        jobs.push(Job::new(weight, move || {
            let out = run_shared_driven(diva, params);
            MatmulRow {
                strategy: name,
                mesh_side,
                block_ints,
                congestion_bytes: out.report.congestion_bytes(),
                comm_time_ns: out.report.comm_time(),
                congestion_ratio: f64::NAN,
                time_ratio: f64::NAN,
                host_ms: 0.0,
            }
        }));
    }
    jobs
}

/// Fill in the per-point ratios: `rows` is the description-ordered result of
/// the jobs of whole points, `group` rows per point with the baseline first.
fn finish_points(rows: &mut [MatmulRow], group: usize) {
    for point in rows.chunks_mut(group) {
        let base_congestion = point[0].congestion_bytes;
        let base_time = point[0].comm_time_ns;
        for row in &mut point[1..] {
            row.congestion_ratio = ratio(row.congestion_bytes, base_congestion);
            row.time_ratio = ratio(row.comm_time_ns, base_time);
        }
    }
}

/// Run the matrix square for the given (mesh, block size) points with the
/// given dynamic strategies plus the baseline, through the checkpointed
/// sweep engine, and return the rows in point order (baseline first per
/// point). `None` means the sweep is incomplete (shard run or cut-short
/// run); the sidecar holds the completed jobs.
pub fn sweep(
    points: &[(usize, usize)],
    strategies: &[(String, StrategyKind)],
    opts: &HarnessOpts,
    tag: &str,
) -> Option<Vec<MatmulRow>> {
    let jobs: Vec<Job<MatmulRow>> = points
        .iter()
        .flat_map(|&(side, block)| point_jobs(side, block, strategies, opts.seed, opts.tuning()))
        .collect();
    let results = crate::stream::run_sweep(opts, tag, jobs)?;
    let mut rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    finish_points(&mut rows, strategies.len() + 1);
    Some(rows)
}

/// Run one (mesh, block size) point serially (the executor with one worker).
pub fn run_point(
    mesh_side: usize,
    block_ints: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
) -> Vec<MatmulRow> {
    let opts = HarnessOpts {
        seed,
        jobs: Some(1),
        ..HarnessOpts::default()
    };
    sweep(&[(mesh_side, block_ints)], strategies, &opts, "")
        .expect("un-checkpointed sweep is always complete")
}

/// The two strategies Figure 3 and 4 compare against the baseline.
pub fn figure_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
    ]
}

/// The access-tree arity sweep discussed in the text of Section 3.1.
pub fn arity_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        (
            "2-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::binary()),
        ),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        (
            "4-16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 16)),
        ),
        (
            "16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::hex16()),
        ),
    ]
}

/// Figure 3: fixed mesh, block size sweep.
pub fn figure3(opts: &HarnessOpts) -> Option<Vec<MatmulRow>> {
    let (mesh_side, blocks): (usize, Vec<usize>) = match opts.scale() {
        Scale::Smoke => (4, vec![64, 256]),
        Scale::Default => (8, vec![64, 256, 1024]),
        Scale::Paper => (16, vec![64, 256, 1024, 4096]),
        Scale::Mega => (32, vec![256, 1024, 4096]),
    };
    let points: Vec<(usize, usize)> = blocks.into_iter().map(|b| (mesh_side, b)).collect();
    sweep(&points, &figure_strategies(), opts, "")
}

/// Figure 4: fixed block size, network size sweep.
pub fn figure4(opts: &HarnessOpts) -> Option<Vec<MatmulRow>> {
    let (sides, block): (Vec<usize>, usize) = match opts.scale() {
        Scale::Smoke => (vec![2, 4], 256),
        Scale::Default => (vec![4, 8, 16], 1024),
        Scale::Paper => (vec![4, 8, 16, 32], 4096),
        Scale::Mega => (vec![16, 32, 64], 1024),
    };
    let points: Vec<(usize, usize)> = sides.into_iter().map(|s| (s, block)).collect();
    sweep(&points, &figure_strategies(), opts, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_point_reproduces_the_ordering_of_the_paper() {
        // At any scale: hand-optimized < access tree < fixed home in
        // congestion, and the access tree beats the fixed home in time.
        let rows = run_point(8, 256, &figure_strategies(), 7);
        assert_eq!(rows.len(), 3);
        let base = &rows[0];
        let fh = rows.iter().find(|r| r.strategy == "fixed home").unwrap();
        let at = rows.iter().find(|r| r.strategy.contains("4-ary")).unwrap();
        assert_eq!(base.congestion_ratio, 1.0);
        assert!(
            at.congestion_ratio > 1.0,
            "access tree ratio {}",
            at.congestion_ratio
        );
        assert!(
            fh.congestion_ratio > at.congestion_ratio,
            "fixed home {} vs access tree {}",
            fh.congestion_ratio,
            at.congestion_ratio
        );
        assert!(
            fh.comm_time_ns > at.comm_time_ns,
            "fixed home time {} vs access tree time {}",
            fh.comm_time_ns,
            at.comm_time_ns
        );
    }
}
