//! The cross-topology experiment (Figure 12, beyond the paper).
//!
//! The paper's access-tree strategy is defined for arbitrary networks, but
//! its evaluation only ever instantiates 2-D meshes. This sweep runs all
//! five strategies of the Barnes-Hut figures across the four implemented
//! topologies — mesh, torus, hypercube and fat tree — at *matched node
//! counts*, under two workloads:
//!
//! * **uniform** — the locality-free uniform-random access workload
//!   ([`dm_apps::uniform`]): the cleanest probe of raw congestion behaviour;
//! * **barnes-hut** — the paper's hardest application, whose access trees
//!   are built from each topology's own recursive decomposition.
//!
//! Every (topology, workload, strategy) point is an independent executor
//! [`Job`], so `--jobs N` parallelises the sweep with byte-identical tables
//! and JSON for every `N` (the `jobs_determinism` gate covers `fig12`).

use crate::executor::Job;
use crate::{barnes_hut_shapes, make_diva_on_tuned, HarnessOpts, Scale, SimTuning};
use dm_apps::barnes_hut::{run_shared_driven, BhParams};
use dm_apps::uniform::{run_uniform_driven, UniformParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{RunReport, StrategyKind};
use dm_mesh::{AnyTopology, FatTree, Hypercube, Mesh, Torus};

/// Measurements of one (topology, workload, strategy) point.
#[derive(Debug, Clone)]
pub struct TopoRow {
    /// Topology name (`mesh 8x8`, `torus 8x8`, `hypercube-6`, `fat-tree-64`).
    pub topology: String,
    /// Workload name (`uniform` or `barnes-hut`).
    pub workload: String,
    /// Strategy name.
    pub strategy: String,
    /// Matched processor count (identical across the four topologies).
    pub nodes: usize,
    /// Number of directed links of the topology (context for congestion).
    pub links: u64,
    /// Topology diameter (hops).
    pub diameter: u64,
    /// Congestion in messages over the measured part of the run.
    pub congestion_msgs: u64,
    /// Congestion in bytes over the measured part of the run.
    pub congestion_bytes: u64,
    /// Total messages handed to the network.
    pub total_msgs: u64,
    /// Execution time of the measured part of the run in ns.
    pub exec_time_ns: u64,
    /// Host wall-clock milliseconds of this point (JSON sidecar only).
    pub host_ms: f64,
}

crate::impl_to_json!(TopoRow {
    topology,
    workload,
    strategy,
    nodes,
    links,
    diameter,
    congestion_msgs,
    congestion_bytes,
    total_msgs,
    exec_time_ns,
    host_ms,
});

crate::impl_from_json!(TopoRow {
    topology,
    workload,
    strategy,
    nodes,
    links,
    diameter,
    congestion_msgs,
    congestion_bytes,
    total_msgs,
    exec_time_ns,
    host_ms,
});

/// Shared parameters of a cross-topology sweep.
#[derive(Debug, Clone)]
pub struct TopoMeta {
    /// Scale tier name.
    pub scale: String,
    /// Matched node count.
    pub nodes: usize,
    /// Uniform workload: accesses per processor.
    pub uniform_ops: usize,
    /// Uniform workload: write percentage.
    pub write_percent: u64,
    /// Barnes-Hut workload: body count.
    pub bh_bodies: usize,
    /// Barnes-Hut workload: simulated time steps.
    pub bh_timesteps: usize,
    /// Seed of the sweep.
    pub seed: u64,
}

crate::impl_to_json!(TopoMeta {
    scale,
    nodes,
    uniform_ops,
    write_percent,
    bh_bodies,
    bh_timesteps,
    seed,
});

/// A cross-topology sweep: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct TopoSweep {
    /// The sweep's shared parameters.
    pub meta: TopoMeta,
    /// One row per (topology, workload, strategy) point.
    pub rows: Vec<TopoRow>,
}

crate::impl_to_json!(TopoSweep { meta, rows });

/// The four topologies at a matched node count (`nodes` must be a power of
/// four so the grid topologies stay square and the hypercube/fat tree get
/// an exact power of two).
pub fn topologies_at(nodes: usize) -> Vec<AnyTopology> {
    assert!(
        nodes.is_power_of_two() && nodes.trailing_zeros().is_multiple_of(2),
        "matched node counts must be powers of four, got {nodes}"
    );
    let side = 1usize << (nodes.trailing_zeros() / 2);
    vec![
        Mesh::square(side).into(),
        Torus::square(side).into(),
        Hypercube::new(nodes.trailing_zeros()).into(),
        FatTree::new(nodes).into(),
    ]
}

/// Reduce a run report to the measured quantities of a [`TopoRow`]: the
/// whole run for the uniform workload, everything outside the `warmup`
/// region for Barnes-Hut (matching the fig8 convention).
fn fill_row(topo: &AnyTopology, workload: &str, strategy: &str, report: &RunReport) -> TopoRow {
    let warmup_wall = report.region("warmup").map(|r| r.wall_time).unwrap_or(0);
    TopoRow {
        topology: topo.name(),
        workload: workload.to_string(),
        strategy: strategy.to_string(),
        nodes: topo.nodes(),
        links: topo.links() as u64,
        diameter: topo.diameter() as u64,
        congestion_msgs: report.congestion_msgs(),
        congestion_bytes: report.congestion_bytes(),
        total_msgs: report.messages_sent,
        exec_time_ns: report.total_time.saturating_sub(warmup_wall),
        host_ms: 0.0,
    }
}

/// Describe one uniform-workload point as an executor job.
fn uniform_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    params: UniformParams,
    tuning: SimTuning,
) -> Job<TopoRow> {
    let weight = (params.ops_per_proc * topo.nodes()) as u64;
    Job::new(weight, move || {
        let diva = make_diva_on_tuned(topo.clone(), strategy, params.seed, tuning);
        let out = run_uniform_driven(diva, params);
        fill_row(&topo, "uniform", &strategy_name, &out.report)
    })
}

/// Describe one Barnes-Hut point as an executor job. Mega points trip the
/// executor's memory governor on every topology — via the scheduling
/// weight or the timestep-independent [`crate::bh_exp::BH_HEAVY_MEM`]
/// memory proxy, exactly like the mesh figures.
fn bh_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    params: BhParams,
    seed: u64,
    tuning: SimTuning,
) -> Job<TopoRow> {
    let weight = params.n_bodies as u64 * (params.timesteps as u64).max(1) * topo.nodes() as u64;
    let mem = params.n_bodies as u64 * topo.nodes() as u64;
    let job = Job::new(weight, move || {
        let bodies = plummer_bodies(seed ^ params.n_bodies as u64, params.n_bodies);
        let diva = make_diva_on_tuned(topo.clone(), strategy, seed, tuning);
        let out = run_shared_driven(diva, params, &bodies);
        fill_row(&topo, "barnes-hut", &strategy_name, &out.report)
    });
    if mem >= crate::bh_exp::BH_HEAVY_MEM {
        job.heavy()
    } else {
        job
    }
}

/// The Figure-12 sweep: all five strategies × four topologies × two
/// workloads at one matched node count per scale tier. `None` means the
/// sweep is incomplete (shard run or cut-short run); the sidecar holds the
/// completed jobs.
pub fn cross_topology_sweep(opts: &HarnessOpts) -> Option<TopoSweep> {
    let (nodes, uniform_ops, bh_bodies) = match opts.scale() {
        Scale::Smoke => (16, 24, 192),
        Scale::Default => (64, 64, 2_000),
        Scale::Paper => (256, 128, 10_000),
        Scale::Mega => (4_096, 128, 50_000),
    };
    let mut bh_params = BhParams {
        n_bodies: bh_bodies,
        timesteps: if opts.scale() == Scale::Mega { 5 } else { 2 },
        warmup_steps: 1,
        ..BhParams::new(0)
    };
    crate::bh_exp::apply_lifecycle_opts(&mut bh_params, opts);
    let mut uniform_params = UniformParams::new(nodes);
    uniform_params.ops_per_proc = uniform_ops;
    uniform_params.seed = opts.seed;

    let mut jobs = Vec::new();
    for topo in topologies_at(nodes) {
        for (name, strategy) in barnes_hut_shapes() {
            jobs.push(uniform_job(
                topo.clone(),
                name.clone(),
                strategy,
                uniform_params,
                opts.tuning(),
            ));
            jobs.push(bh_job(
                topo.clone(),
                name,
                strategy,
                bh_params,
                opts.seed,
                opts.tuning(),
            ));
        }
    }
    let results = crate::stream::run_sweep(opts, "", jobs)?;
    let rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    Some(TopoSweep {
        meta: TopoMeta {
            scale: opts.scale().name().to_string(),
            nodes,
            uniform_ops,
            write_percent: uniform_params.write_percent as u64,
            bh_bodies,
            bh_timesteps: bh_params.timesteps,
            seed: opts.seed,
        },
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_node_counts_are_matched() {
        for nodes in [16, 64, 256] {
            let topos = topologies_at(nodes);
            assert_eq!(topos.len(), 4);
            for t in &topos {
                assert_eq!(t.nodes(), nodes, "{}", t.name());
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_four_node_counts() {
        topologies_at(32);
    }

    #[test]
    fn uniform_point_runs_on_a_fat_tree() {
        let topo: AnyTopology = FatTree::new(16).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            params,
            SimTuning::default(),
        )
        .call();
        assert_eq!(row.workload, "uniform");
        assert_eq!(row.nodes, 16);
        assert!(row.exec_time_ns > 0);
        assert!(row.congestion_msgs > 0);
    }

    #[test]
    fn bh_point_runs_on_a_hypercube() {
        let topo: AnyTopology = Hypercube::new(4).into();
        let params = BhParams {
            n_bodies: 64,
            timesteps: 2,
            warmup_steps: 1,
            ..BhParams::new(0)
        };
        let row = bh_job(
            topo,
            "4-ary access tree".into(),
            StrategyKind::AccessTree(dm_mesh::TreeShape::quad()),
            params,
            3,
            SimTuning::default(),
        )
        .call();
        assert_eq!(row.workload, "barnes-hut");
        assert!(row.exec_time_ns > 0);
        assert!(row.congestion_msgs > 0);
    }
}
