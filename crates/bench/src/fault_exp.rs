//! The graceful-degradation experiment (Figure 13, beyond the paper).
//!
//! The paper proves the access-tree strategy competitive on an *intact*
//! network; this sweep asks how each strategy's congestion and completion
//! time decay when the network is not. Every (topology, strategy, workload)
//! group runs a fixed scenario ladder — intact, degraded links, failed
//! links, failed nodes — under a seeded [`FaultPlan`], and each faulted row
//! reports its deltas against the intact baseline of its own group, in the
//! degradation-metric style of the replication-in-data-grids literature.
//!
//! Scenarios that disconnect the network (random link loss can sever a fat
//! tree's leaf uplinks) are *reported*, not failed: the row renders as
//! `partitioned@<node>` with the partial measurements, because a clean
//! partition diagnosis is exactly the graceful behaviour being tested.
//!
//! Every point is an independent executor [`Job`], so `--jobs N`
//! parallelises the sweep with byte-identical tables and JSON for every `N`
//! (the `jobs_determinism` gate covers `fig13`; deltas are assembled after
//! the executor returns, like fig3's ratios).

use crate::executor::Job;
use crate::{HarnessOpts, Scale};
use dm_apps::barnes_hut::{try_run_shared_driven, BhParams};
use dm_apps::uniform::{try_run_uniform_driven, UniformParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{Diva, DivaConfig, FaultPlan, Partitioned, RunReport, StrategyKind};
use dm_engine::MachineConfig;
use dm_mesh::{AnyTopology, NodeId, TreeShape};

/// [`crate::make_diva_on_tuned`] plus an optional fault plan.
fn make_faulty_diva(
    topo: AnyTopology,
    strategy: StrategyKind,
    seed: u64,
    plan: Option<FaultPlan>,
    tuning: crate::SimTuning,
) -> Diva {
    let mut cfg = DivaConfig::on(topo, strategy)
        .with_seed(seed)
        .with_machine(MachineConfig::parsytec_gcel())
        .with_workers(tuning.workers)
        .with_calibrated_delays(tuning.calibrated_delays);
    if let Some(plan) = plan {
        cfg = cfg.with_fault_plan(plan);
    }
    Diva::new(cfg)
}

/// Measurements of one (topology, strategy, workload, scenario) point.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Topology name (`mesh 4x4`, `torus 4x4`, `hypercube-4`, `fat-tree-16`).
    pub topology: String,
    /// Workload name (`uniform` or `barnes-hut`).
    pub workload: String,
    /// Strategy name.
    pub strategy: String,
    /// Failure scenario name (`intact`, `fail 10% links`, ...).
    pub scenario: String,
    /// `ok`, or `partitioned@<node>` when the scenario disconnected the
    /// network (partial measurements up to the partition).
    pub outcome: String,
    /// Congestion in messages over the measured part of the run.
    pub congestion_msgs: u64,
    /// Congestion in bytes over the measured part of the run.
    pub congestion_bytes: u64,
    /// Execution time of the measured part of the run in ns.
    pub exec_time_ns: u64,
    /// Links degraded / failed and nodes failed by the scenario.
    pub links_degraded: u64,
    /// Links failed by the scenario.
    pub links_failed: u64,
    /// Nodes whose data-management role the scenario killed.
    pub nodes_failed: u64,
    /// Re-homing migration messages charged by node failures.
    pub rehome_msgs: u64,
    /// Re-homing migration bytes charged by node failures.
    pub rehome_bytes: u64,
    /// Congestion delta vs. the group's intact baseline, in percent
    /// (0 for the baseline itself and for partitioned rows).
    pub congestion_delta_pct: f64,
    /// Execution-time delta vs. the group's intact baseline, in percent
    /// (0 for the baseline itself and for partitioned rows).
    pub time_delta_pct: f64,
    /// Host wall-clock milliseconds of this point (JSON sidecar only).
    pub host_ms: f64,
}

crate::impl_to_json!(FaultRow {
    topology,
    workload,
    strategy,
    scenario,
    outcome,
    congestion_msgs,
    congestion_bytes,
    exec_time_ns,
    links_degraded,
    links_failed,
    nodes_failed,
    rehome_msgs,
    rehome_bytes,
    congestion_delta_pct,
    time_delta_pct,
    host_ms,
});

crate::impl_from_json!(FaultRow {
    topology,
    workload,
    strategy,
    scenario,
    outcome,
    congestion_msgs,
    congestion_bytes,
    exec_time_ns,
    links_degraded,
    links_failed,
    nodes_failed,
    rehome_msgs,
    rehome_bytes,
    congestion_delta_pct,
    time_delta_pct,
    host_ms,
});

/// Shared parameters of a graceful-degradation sweep.
#[derive(Debug, Clone)]
pub struct FaultMeta {
    /// Scale tier name.
    pub scale: String,
    /// Matched node count.
    pub nodes: usize,
    /// Uniform workload: accesses per processor.
    pub uniform_ops: usize,
    /// Barnes-Hut workload: body count.
    pub bh_bodies: usize,
    /// Barnes-Hut workload: simulated time steps.
    pub bh_timesteps: usize,
    /// Number of scenarios per (topology, strategy, workload) group.
    pub scenarios: usize,
    /// Seed of the sweep (workloads and fault plans).
    pub seed: u64,
}

crate::impl_to_json!(FaultMeta {
    scale,
    nodes,
    uniform_ops,
    bh_bodies,
    bh_timesteps,
    scenarios,
    seed,
});

/// A graceful-degradation sweep: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// The sweep's shared parameters.
    pub meta: FaultMeta,
    /// One row per (topology, strategy, workload, scenario) point, scenario
    /// innermost; the first row of each group is the intact baseline.
    pub rows: Vec<FaultRow>,
}

crate::impl_to_json!(FaultSweep { meta, rows });

/// The scenario ladder: the intact baseline first, then link degradation,
/// link failure at two rates, and node failures — the 0–20% link / 0–4 node
/// grid of the issue. All faults strike at t=0 so every scenario measures a
/// whole run under the fault (mid-run strikes would make the comparison
/// depend on each workload's phase structure). Plans are seeded from the
/// sweep seed, so victim sampling is deterministic per scenario.
fn scenarios(seed: u64, nodes: usize) -> Vec<(String, Option<FaultPlan>)> {
    vec![
        ("intact".to_string(), None),
        (
            "degrade 20% links to 25% bw".to_string(),
            Some(FaultPlan::new(seed).degrade_links(0.20, 0.25, 0)),
        ),
        (
            "fail 10% links".to_string(),
            Some(FaultPlan::new(seed ^ 1).fail_links(0.10, 0)),
        ),
        (
            "fail 20% links".to_string(),
            Some(FaultPlan::new(seed ^ 2).fail_links(0.20, 0)),
        ),
        (
            "fail 1 node".to_string(),
            Some(FaultPlan::new(seed ^ 3).fail_node(NodeId((nodes / 2) as u32), 0)),
        ),
        (
            "fail 4 nodes".to_string(),
            Some(FaultPlan::new(seed ^ 4).fail_random_nodes(4, 0)),
        ),
    ]
}

/// The strategy panel of the degradation sweep: the fixed-home reference and
/// the two access-tree arities the mesh figures single out.
fn fault_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        (
            "16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::hex16()),
        ),
    ]
}

/// Reduce a run's outcome to a [`FaultRow`] (deltas filled in later): the
/// whole run for uniform, everything outside the `warmup` region for
/// Barnes-Hut — the fig12 conventions, so intact fig13 rows are comparable
/// with fig12 numbers.
fn fill_row(
    topo: &AnyTopology,
    workload: &str,
    strategy: &str,
    scenario: &str,
    outcome: Result<&RunReport, &Partitioned>,
) -> FaultRow {
    let (report, outcome_str) = match outcome {
        Ok(report) => (report, "ok".to_string()),
        Err(p) => (&p.report, format!("partitioned@{}", p.unreachable.0)),
    };
    let warmup_wall = report.region("warmup").map(|r| r.wall_time).unwrap_or(0);
    FaultRow {
        topology: topo.name(),
        workload: workload.to_string(),
        strategy: strategy.to_string(),
        scenario: scenario.to_string(),
        outcome: outcome_str,
        congestion_msgs: report.congestion_msgs(),
        congestion_bytes: report.congestion_bytes(),
        exec_time_ns: report.total_time.saturating_sub(warmup_wall),
        links_degraded: report.faults.links_degraded,
        links_failed: report.faults.links_failed,
        nodes_failed: report.faults.nodes_failed,
        rehome_msgs: report.faults.rehome_msgs,
        rehome_bytes: report.faults.rehome_bytes,
        congestion_delta_pct: 0.0,
        time_delta_pct: 0.0,
        host_ms: 0.0,
    }
}

/// Describe one uniform-workload point as an executor job.
fn uniform_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    scenario: String,
    plan: Option<FaultPlan>,
    params: UniformParams,
    tuning: crate::SimTuning,
) -> Job<FaultRow> {
    let weight = (params.ops_per_proc * topo.nodes()) as u64;
    Job::new(weight, move || {
        let diva = make_faulty_diva(topo.clone(), strategy, params.seed, plan, tuning);
        let out = try_run_uniform_driven(diva, params);
        let outcome = match &out {
            Ok(o) => Ok(&o.report),
            Err(p) => Err(p),
        };
        fill_row(&topo, "uniform", &strategy_name, &scenario, outcome)
    })
}

/// Describe one Barnes-Hut point as an executor job. Mega points trip the
/// executor's memory governor exactly like the fig12 jobs.
#[allow(clippy::too_many_arguments)]
fn bh_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    scenario: String,
    plan: Option<FaultPlan>,
    params: BhParams,
    seed: u64,
    tuning: crate::SimTuning,
) -> Job<FaultRow> {
    let weight = params.n_bodies as u64 * (params.timesteps as u64).max(1) * topo.nodes() as u64;
    let mem = params.n_bodies as u64 * topo.nodes() as u64;
    let job = Job::new(weight, move || {
        let bodies = plummer_bodies(seed ^ params.n_bodies as u64, params.n_bodies);
        let diva = make_faulty_diva(topo.clone(), strategy, seed, plan, tuning);
        let out = try_run_shared_driven(diva, params, &bodies);
        let outcome = match &out {
            Ok(o) => Ok(&o.report),
            Err(p) => Err(p),
        };
        fill_row(&topo, "barnes-hut", &strategy_name, &scenario, outcome)
    });
    if mem >= crate::bh_exp::BH_HEAVY_MEM {
        job.heavy()
    } else {
        job
    }
}

/// Percentage delta of `value` against `base` (0 when the baseline is 0).
fn delta_pct(value: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (value as f64 - base as f64) / base as f64 * 100.0
    }
}

/// Fill each row's deltas against the intact baseline of its scenario group.
/// Rows arrive in description order, scenario innermost, so every group is a
/// contiguous `group_len` chunk whose first row is the intact run.
fn fill_deltas(rows: &mut [FaultRow], group_len: usize) {
    for group in rows.chunks_mut(group_len) {
        debug_assert_eq!(group[0].scenario, "intact");
        let (base_msgs, base_time) = (group[0].congestion_msgs, group[0].exec_time_ns);
        for row in &mut group[1..] {
            if row.outcome == "ok" {
                row.congestion_delta_pct = delta_pct(row.congestion_msgs, base_msgs);
                row.time_delta_pct = delta_pct(row.exec_time_ns, base_time);
            }
        }
    }
}

/// The Figure-13 sweep: the scenario ladder across all four topologies and
/// the degradation strategy panel, under both workloads, at one matched node
/// count per scale tier. `None` means the sweep is incomplete (shard run or
/// cut-short run); the sidecar holds the completed jobs. Deltas are always
/// recomputed at assembly, so they never ride stale through a resume.
pub fn graceful_degradation_sweep(opts: &HarnessOpts) -> Option<FaultSweep> {
    let (nodes, uniform_ops, bh_bodies) = match opts.scale() {
        Scale::Smoke => (16, 24, 192),
        Scale::Default => (64, 64, 2_000),
        Scale::Paper => (256, 128, 10_000),
        Scale::Mega => (4_096, 128, 50_000),
    };
    let mut bh_params = BhParams {
        n_bodies: bh_bodies,
        timesteps: if opts.scale() == Scale::Mega { 5 } else { 2 },
        warmup_steps: 1,
        ..BhParams::new(0)
    };
    crate::bh_exp::apply_lifecycle_opts(&mut bh_params, opts);
    let mut uniform_params = UniformParams::new(nodes);
    uniform_params.ops_per_proc = uniform_ops;
    uniform_params.seed = opts.seed;

    let scenario_list = scenarios(opts.seed, nodes);
    let mut jobs = Vec::new();
    for topo in crate::topo_exp::topologies_at(nodes) {
        for (strategy_name, strategy) in fault_strategies() {
            for workload in ["uniform", "barnes-hut"] {
                for (scenario, plan) in &scenario_list {
                    jobs.push(match workload {
                        "uniform" => uniform_job(
                            topo.clone(),
                            strategy_name.clone(),
                            strategy,
                            scenario.clone(),
                            plan.clone(),
                            uniform_params,
                            opts.tuning(),
                        ),
                        _ => bh_job(
                            topo.clone(),
                            strategy_name.clone(),
                            strategy,
                            scenario.clone(),
                            plan.clone(),
                            bh_params,
                            opts.seed,
                            opts.tuning(),
                        ),
                    });
                }
            }
        }
    }
    let results = crate::stream::run_sweep(opts, "", jobs)?;
    let mut rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    fill_deltas(&mut rows, scenario_list.len());
    Some(FaultSweep {
        meta: FaultMeta {
            scale: opts.scale().name().to_string(),
            nodes,
            uniform_ops,
            bh_bodies,
            bh_timesteps: bh_params.timesteps,
            scenarios: scenario_list.len(),
            seed: opts.seed,
        },
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::{FatTree, Torus};

    #[test]
    fn the_ladder_starts_intact() {
        let list = scenarios(7, 16);
        assert_eq!(list[0].0, "intact");
        assert!(list[0].1.is_none());
        assert!(list[1..].iter().all(|(_, p)| p.is_some()));
    }

    #[test]
    fn a_faulted_uniform_point_reports_its_tally() {
        let topo: AnyTopology = Torus::square(4).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let plan = FaultPlan::new(5).fail_node(NodeId(8), 0);
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            "fail 1 node".into(),
            Some(plan),
            params,
            crate::SimTuning::default(),
        )
        .call();
        assert_eq!(row.outcome, "ok");
        assert_eq!(row.nodes_failed, 1);
        assert!(row.rehome_msgs > 0);
        assert!(row.exec_time_ns > 0);
    }

    #[test]
    fn a_partitioning_point_renders_instead_of_failing() {
        // Severing every link cannot complete; the row must say so.
        let topo: AnyTopology = FatTree::new(16).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let plan = FaultPlan::new(5).fail_links(1.0, 0);
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            "fail all links".into(),
            Some(plan),
            params,
            crate::SimTuning::default(),
        )
        .call();
        assert!(row.outcome.starts_with("partitioned@"), "{}", row.outcome);
        assert!(row.links_failed > 0);
    }

    #[test]
    fn deltas_compare_each_row_to_its_own_intact_baseline() {
        let mk = |scenario: &str, outcome: &str, msgs: u64, time: u64| FaultRow {
            topology: "t".into(),
            workload: "w".into(),
            strategy: "s".into(),
            scenario: scenario.into(),
            outcome: outcome.into(),
            congestion_msgs: msgs,
            congestion_bytes: 0,
            exec_time_ns: time,
            links_degraded: 0,
            links_failed: 0,
            nodes_failed: 0,
            rehome_msgs: 0,
            rehome_bytes: 0,
            congestion_delta_pct: 0.0,
            time_delta_pct: 0.0,
            host_ms: 0.0,
        };
        let mut rows = vec![
            mk("intact", "ok", 100, 1_000),
            mk("fail", "ok", 150, 1_200),
            mk("sever", "partitioned@3", 10, 50),
            mk("intact", "ok", 200, 2_000),
            mk("fail", "ok", 100, 2_000),
            mk("sever", "ok", 300, 3_000),
        ];
        fill_deltas(&mut rows, 3);
        assert_eq!(rows[1].congestion_delta_pct, 50.0);
        assert_eq!(rows[1].time_delta_pct, 20.0);
        // Partitioned rows keep zero deltas: partial runs are not comparable.
        assert_eq!(rows[2].congestion_delta_pct, 0.0);
        // The second group compares against its own baseline.
        assert_eq!(rows[4].congestion_delta_pct, -50.0);
        assert_eq!(rows[5].time_delta_pct, 50.0);
    }
}
