//! The graceful-degradation experiment (Figure 13, beyond the paper).
//!
//! The paper proves the access-tree strategy competitive on an *intact*
//! network; this sweep asks how each strategy's congestion and completion
//! time decay when the network is not. Every (topology, strategy, workload)
//! group runs a fixed scenario ladder — intact, degraded links, failed
//! links, a transient link flap, failed nodes — under a seeded
//! [`FaultPlan`], and each faulted row reports its deltas against the
//! intact baseline of its own group, in the degradation-metric style of the
//! replication-in-data-grids literature.
//!
//! Faults need not strike at t=0: `--strike-at 0,25,50,75` runs every
//! faulted scenario once per strike time, expressed as a percent of the
//! group's *intact* run length. A non-zero strike makes the job run an
//! intact calibration copy first (jobs stay pure, so `--resume`/`--shard`
//! keep working) and the fault lands mid-run, after routes and directory
//! state have warmed up.
//!
//! Scenarios that disconnect the network (random link loss can sever a fat
//! tree's leaf uplinks) are *reported*, not failed: the row renders as
//! `partitioned@<node>` with the partial measurements, because a clean
//! partition diagnosis is exactly the graceful behaviour being tested.
//! Scenarios that fail nodes fail-stop the resident programs and render as
//! `degraded@<n>` (n programs lost); the survivors complete, so such rows
//! keep their deltas — partial completion cost *is* the degradation metric.
//!
//! Every point is an independent executor [`Job`], so `--jobs N`
//! parallelises the sweep with byte-identical tables and JSON for every `N`
//! (the `jobs_determinism` gate covers `fig13`; deltas are assembled after
//! the executor returns, like fig3's ratios).

use crate::executor::Job;
use crate::{HarnessOpts, Scale};
use dm_apps::barnes_hut::{try_run_shared_driven, BhParams};
use dm_apps::uniform::{try_run_uniform_driven, UniformParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{Diva, DivaConfig, FaultPlan, Partitioned, RunReport, StrategyKind};
use dm_engine::MachineConfig;
use dm_mesh::{AnyTopology, NodeId, TreeShape};

/// [`crate::make_diva_on_tuned`] plus an optional fault plan.
pub(crate) fn make_faulty_diva(
    topo: AnyTopology,
    strategy: StrategyKind,
    seed: u64,
    plan: Option<FaultPlan>,
    tuning: crate::SimTuning,
) -> Diva {
    let mut cfg = DivaConfig::on(topo, strategy)
        .with_seed(seed)
        .with_machine(MachineConfig::parsytec_gcel())
        .with_workers(tuning.workers)
        .with_calibrated_delays(tuning.calibrated_delays);
    if let Some(plan) = plan {
        cfg = cfg.with_fault_plan(plan);
    }
    Diva::new(cfg)
}

/// Measurements of one (topology, strategy, workload, scenario, strike)
/// point.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Topology name (`mesh 4x4`, `torus 4x4`, `hypercube-4`, `fat-tree-16`).
    pub topology: String,
    /// Workload name (`uniform` or `barnes-hut`).
    pub workload: String,
    /// Strategy name.
    pub strategy: String,
    /// Failure scenario name (`intact`, `fail 10% links`, ...).
    pub scenario: String,
    /// Strike time of the scenario's faults as a percent of the group's
    /// intact run length (0 = at t=0; always 0 for the intact baseline).
    pub strike_pct: u64,
    /// `ok`; `degraded@<n>` when node failures fail-stopped `n` resident
    /// programs (survivors completed); or `partitioned@<node>` when the
    /// scenario disconnected the network (partial measurements up to the
    /// partition).
    pub outcome: String,
    /// Congestion in messages over the measured part of the run.
    pub congestion_msgs: u64,
    /// Congestion in bytes over the measured part of the run.
    pub congestion_bytes: u64,
    /// Execution time of the measured part of the run in ns.
    pub exec_time_ns: u64,
    /// Links degraded / failed and nodes failed by the scenario.
    pub links_degraded: u64,
    /// Links failed by the scenario.
    pub links_failed: u64,
    /// Links healed back to their pristine cost by the scenario.
    pub links_healed: u64,
    /// Nodes whose data-management role the scenario killed.
    pub nodes_failed: u64,
    /// Nodes restored as fresh data-management successors.
    pub nodes_restored: u64,
    /// Re-homing migration messages charged by node failures.
    pub rehome_msgs: u64,
    /// Re-homing migration bytes charged by node failures.
    pub rehome_bytes: u64,
    /// Locks force-released from fail-stopped programs.
    pub locks_force_released: u64,
    /// Resident programs lost to node failures.
    pub procs_lost: u64,
    /// Congestion delta vs. the group's intact baseline, in percent
    /// (0 for the baseline itself and for partitioned rows).
    pub congestion_delta_pct: f64,
    /// Execution-time delta vs. the group's intact baseline, in percent
    /// (0 for the baseline itself and for partitioned rows).
    pub time_delta_pct: f64,
    /// Host wall-clock milliseconds of this point (JSON sidecar only).
    pub host_ms: f64,
}

crate::impl_to_json!(FaultRow {
    topology,
    workload,
    strategy,
    scenario,
    strike_pct,
    outcome,
    congestion_msgs,
    congestion_bytes,
    exec_time_ns,
    links_degraded,
    links_failed,
    links_healed,
    nodes_failed,
    nodes_restored,
    rehome_msgs,
    rehome_bytes,
    locks_force_released,
    procs_lost,
    congestion_delta_pct,
    time_delta_pct,
    host_ms,
});

crate::impl_from_json!(FaultRow {
    topology,
    workload,
    strategy,
    scenario,
    strike_pct,
    outcome,
    congestion_msgs,
    congestion_bytes,
    exec_time_ns,
    links_degraded,
    links_failed,
    links_healed,
    nodes_failed,
    nodes_restored,
    rehome_msgs,
    rehome_bytes,
    locks_force_released,
    procs_lost,
    congestion_delta_pct,
    time_delta_pct,
    host_ms,
});

/// Shared parameters of a graceful-degradation sweep.
#[derive(Debug, Clone)]
pub struct FaultMeta {
    /// Scale tier name.
    pub scale: String,
    /// Matched node count.
    pub nodes: usize,
    /// Uniform workload: accesses per processor.
    pub uniform_ops: usize,
    /// Barnes-Hut workload: body count.
    pub bh_bodies: usize,
    /// Barnes-Hut workload: simulated time steps.
    pub bh_timesteps: usize,
    /// Number of scenarios in the ladder (the intact baseline included).
    pub scenarios: usize,
    /// Strike times of the faulted scenarios, as percents of each group's
    /// intact run length.
    pub strikes: Vec<u64>,
    /// Seed of the sweep (workloads and fault plans).
    pub seed: u64,
}

crate::impl_to_json!(FaultMeta {
    scale,
    nodes,
    uniform_ops,
    bh_bodies,
    bh_timesteps,
    scenarios,
    strikes,
    seed,
});

/// A graceful-degradation sweep: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// The sweep's shared parameters.
    pub meta: FaultMeta,
    /// One row per (topology, strategy, workload, scenario, strike) point,
    /// strike innermost within scenario; the first row of each group is the
    /// intact baseline.
    pub rows: Vec<FaultRow>,
}

crate::impl_to_json!(FaultSweep { meta, rows });

/// Constructor of one faulted rung of the scenario ladder: given the sweep
/// seed, the node count and the strike time (ns), build the rung's plan.
/// Plain function pointers so jobs stay `Send` and cheaply cloneable.
type PlanCtor = fn(u64, usize, u64) -> FaultPlan;

fn sc_degrade(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
    FaultPlan::new(seed).degrade_links(0.20, 0.25, at)
}

fn sc_fail_10(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 1).fail_links(0.10, at)
}

fn sc_fail_20(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 2).fail_links(0.20, at)
}

fn sc_flap(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 5).fail_links_for(0.10, at, 1_000_000)
}

fn sc_fail_node(seed: u64, nodes: usize, at: u64) -> FaultPlan {
    let victim = NodeId((nodes / 2) as u32);
    FaultPlan::new(seed ^ 3)
        .fail_node(victim, at)
        .restore_node(victim, at + 1_000_000)
}

fn sc_fail_4_nodes(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 4).fail_random_nodes(4, at)
}

/// The scenario ladder: the intact baseline first, then link degradation,
/// link failure at two rates, a transient 1 ms link flap (failed links heal
/// and routes revert), and node failures — including a failed node restored
/// 1 ms later as a fresh successor (its program stays lost, so the row is
/// degraded). Each rung is a constructor taking the strike time, so the
/// same ladder runs at every `--strike-at` percent; plans are seeded from
/// the sweep seed, so victim sampling is deterministic per scenario.
fn scenarios() -> Vec<(&'static str, Option<PlanCtor>)> {
    vec![
        ("intact", None),
        ("degrade 20% links to 25% bw", Some(sc_degrade as PlanCtor)),
        ("fail 10% links", Some(sc_fail_10)),
        ("fail 20% links", Some(sc_fail_20)),
        ("flap 10% links for 1ms", Some(sc_flap)),
        ("fail 1 node (restore +1ms)", Some(sc_fail_node)),
        ("fail 4 nodes", Some(sc_fail_4_nodes)),
    ]
}

/// The strategy panel of the degradation sweep: the fixed-home reference and
/// the two access-tree arities the mesh figures single out.
fn fault_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        (
            "16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::hex16()),
        ),
    ]
}

/// The absolute strike time of a `strike_pct` percent: 0 stays 0 with no
/// calibration needed; otherwise `intact_len` measures the intact run's
/// length and the faults land at that fraction of it.
fn strike_time(strike_pct: u64, intact_len: impl FnOnce() -> u64) -> u64 {
    if strike_pct == 0 {
        0
    } else {
        intact_len() * strike_pct / 100
    }
}

/// Reduce a run's outcome to a [`FaultRow`] (deltas filled in later): the
/// whole run for uniform, everything outside the `warmup` region for
/// Barnes-Hut — the fig12 conventions, so intact fig13 rows are comparable
/// with fig12 numbers.
fn fill_row(
    topo: &AnyTopology,
    workload: &str,
    strategy: &str,
    scenario: &str,
    strike_pct: u64,
    outcome: Result<&RunReport, &Partitioned>,
) -> FaultRow {
    let (report, outcome_str) = match outcome {
        Ok(report) if report.faults.procs_lost > 0 => {
            (report, format!("degraded@{}", report.faults.procs_lost))
        }
        Ok(report) => (report, "ok".to_string()),
        Err(p) => (&p.report, format!("partitioned@{}", p.unreachable.0)),
    };
    let warmup_wall = report.region("warmup").map(|r| r.wall_time).unwrap_or(0);
    FaultRow {
        topology: topo.name(),
        workload: workload.to_string(),
        strategy: strategy.to_string(),
        scenario: scenario.to_string(),
        strike_pct,
        outcome: outcome_str,
        congestion_msgs: report.congestion_msgs(),
        congestion_bytes: report.congestion_bytes(),
        exec_time_ns: report.total_time.saturating_sub(warmup_wall),
        links_degraded: report.faults.links_degraded,
        links_failed: report.faults.links_failed,
        links_healed: report.faults.links_healed,
        nodes_failed: report.faults.nodes_failed,
        nodes_restored: report.faults.nodes_restored,
        rehome_msgs: report.faults.rehome_msgs,
        rehome_bytes: report.faults.rehome_bytes,
        locks_force_released: report.faults.locks_force_released,
        procs_lost: report.faults.procs_lost,
        congestion_delta_pct: 0.0,
        time_delta_pct: 0.0,
        host_ms: 0.0,
    }
}

/// Describe one uniform-workload point as an executor job. A non-zero
/// strike runs an intact calibration copy inside the job (doubling its
/// weight) to convert the percent into an absolute time.
#[allow(clippy::too_many_arguments)]
fn uniform_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    scenario: String,
    plan: Option<PlanCtor>,
    strike_pct: u64,
    params: UniformParams,
    tuning: crate::SimTuning,
) -> Job<FaultRow> {
    let runs = if strike_pct == 0 { 1 } else { 2 };
    let weight = runs * (params.ops_per_proc * topo.nodes()) as u64;
    Job::new(weight, move || {
        let at = strike_time(strike_pct, || {
            let diva = make_faulty_diva(topo.clone(), strategy, params.seed, None, tuning);
            match try_run_uniform_driven(diva, params) {
                Ok(intact) => intact.report.total_time,
                Err(_) => unreachable!("the intact calibration run cannot partition"),
            }
        });
        let plan = plan.map(|ctor| ctor(params.seed, topo.nodes(), at));
        let diva = make_faulty_diva(topo.clone(), strategy, params.seed, plan, tuning);
        let out = try_run_uniform_driven(diva, params);
        let outcome = match &out {
            Ok(o) => Ok(&o.report),
            Err(p) => Err(p),
        };
        fill_row(
            &topo,
            "uniform",
            &strategy_name,
            &scenario,
            strike_pct,
            outcome,
        )
    })
}

/// Describe one Barnes-Hut point as an executor job. Mega points trip the
/// executor's memory governor exactly like the fig12 jobs; a non-zero
/// strike adds an intact calibration run sharing the same body set.
#[allow(clippy::too_many_arguments)]
fn bh_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    scenario: String,
    plan: Option<PlanCtor>,
    strike_pct: u64,
    params: BhParams,
    seed: u64,
    tuning: crate::SimTuning,
) -> Job<FaultRow> {
    let runs = if strike_pct == 0 { 1 } else { 2 };
    let weight =
        runs * params.n_bodies as u64 * (params.timesteps as u64).max(1) * topo.nodes() as u64;
    let mem = params.n_bodies as u64 * topo.nodes() as u64;
    let job = Job::new(weight, move || {
        let bodies = plummer_bodies(seed ^ params.n_bodies as u64, params.n_bodies);
        let at = strike_time(strike_pct, || {
            let diva = make_faulty_diva(topo.clone(), strategy, seed, None, tuning);
            match try_run_shared_driven(diva, params, &bodies) {
                Ok(intact) => intact.report.total_time,
                Err(_) => unreachable!("the intact calibration run cannot partition"),
            }
        });
        let plan = plan.map(|ctor| ctor(seed, topo.nodes(), at));
        let diva = make_faulty_diva(topo.clone(), strategy, seed, plan, tuning);
        let out = try_run_shared_driven(diva, params, &bodies);
        let outcome = match &out {
            Ok(o) => Ok(&o.report),
            Err(p) => Err(p),
        };
        fill_row(
            &topo,
            "barnes-hut",
            &strategy_name,
            &scenario,
            strike_pct,
            outcome,
        )
    });
    if mem >= crate::bh_exp::BH_HEAVY_MEM {
        job.heavy()
    } else {
        job
    }
}

/// Percentage delta of `value` against `base` (0 when the baseline is 0).
fn delta_pct(value: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (value as f64 - base as f64) / base as f64 * 100.0
    }
}

/// Whether a row's measurements cover a completed run and are comparable
/// with the intact baseline: `ok` rows, and `degraded@<n>` rows — the
/// survivors ran to completion, and their cost *is* the degradation being
/// measured. Partitioned rows are partial and keep zero deltas.
fn comparable(outcome: &str) -> bool {
    outcome == "ok" || outcome.starts_with("degraded@")
}

/// Fill each row's deltas against the intact baseline of its scenario×strike
/// group. Rows arrive in description order, strike innermost within
/// scenario, so every group is a contiguous `group_len` chunk whose first
/// row is the intact run.
fn fill_deltas(rows: &mut [FaultRow], group_len: usize) {
    for group in rows.chunks_mut(group_len) {
        debug_assert_eq!(group[0].scenario, "intact");
        let (base_msgs, base_time) = (group[0].congestion_msgs, group[0].exec_time_ns);
        for row in &mut group[1..] {
            if comparable(&row.outcome) {
                row.congestion_delta_pct = delta_pct(row.congestion_msgs, base_msgs);
                row.time_delta_pct = delta_pct(row.exec_time_ns, base_time);
            }
        }
    }
}

/// The Figure-13 sweep: the scenario ladder across all four topologies and
/// the degradation strategy panel, under both workloads and every
/// `--strike-at` strike time, at one matched node count per scale tier.
/// `None` means the sweep is incomplete (shard run or cut-short run); the
/// sidecar holds the completed jobs. Deltas are always recomputed at
/// assembly, so they never ride stale through a resume.
pub fn graceful_degradation_sweep(opts: &HarnessOpts) -> Option<FaultSweep> {
    let (nodes, uniform_ops, bh_bodies) = match opts.scale() {
        Scale::Smoke => (16, 24, 192),
        Scale::Default => (64, 64, 2_000),
        Scale::Paper => (256, 128, 10_000),
        Scale::Mega => (4_096, 128, 50_000),
    };
    let mut bh_params = BhParams {
        n_bodies: bh_bodies,
        timesteps: if opts.scale() == Scale::Mega { 5 } else { 2 },
        warmup_steps: 1,
        ..BhParams::new(0)
    };
    crate::bh_exp::apply_lifecycle_opts(&mut bh_params, opts);
    let mut uniform_params = UniformParams::new(nodes);
    uniform_params.ops_per_proc = uniform_ops;
    uniform_params.seed = opts.seed;

    let scenario_list = scenarios();
    let strikes = opts.strikes();
    // One intact baseline per group (the strike axis is meaningless without
    // faults), then every faulted rung once per strike time.
    let group_len = 1 + (scenario_list.len() - 1) * strikes.len();
    let mut jobs = Vec::new();
    for topo in crate::topo_exp::topologies_at(nodes) {
        for (strategy_name, strategy) in fault_strategies() {
            for workload in ["uniform", "barnes-hut"] {
                for (scenario, ctor) in &scenario_list {
                    let points: Vec<u64> = match ctor {
                        None => vec![0],
                        Some(_) => strikes.clone(),
                    };
                    for strike in points {
                        jobs.push(match workload {
                            "uniform" => uniform_job(
                                topo.clone(),
                                strategy_name.clone(),
                                strategy,
                                scenario.to_string(),
                                *ctor,
                                strike,
                                uniform_params,
                                opts.tuning(),
                            ),
                            _ => bh_job(
                                topo.clone(),
                                strategy_name.clone(),
                                strategy,
                                scenario.to_string(),
                                *ctor,
                                strike,
                                bh_params,
                                opts.seed,
                                opts.tuning(),
                            ),
                        });
                    }
                }
            }
        }
    }
    let results = crate::stream::run_sweep(opts, "", jobs)?;
    let mut rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    fill_deltas(&mut rows, group_len);
    Some(FaultSweep {
        meta: FaultMeta {
            scale: opts.scale().name().to_string(),
            nodes,
            uniform_ops,
            bh_bodies,
            bh_timesteps: bh_params.timesteps,
            scenarios: scenario_list.len(),
            strikes,
            seed: opts.seed,
        },
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::{FatTree, Torus};

    #[test]
    fn the_ladder_starts_intact() {
        let list = scenarios();
        assert_eq!(list[0].0, "intact");
        assert!(list[0].1.is_none());
        assert!(list[1..].iter().all(|(_, p)| p.is_some()));
        // Every faulted rung builds a plan at an arbitrary strike time.
        for (_, ctor) in list[1..].iter() {
            let _ = ctor.unwrap()(7, 16, 123_456);
        }
    }

    #[test]
    fn a_node_failure_point_reports_a_degraded_outcome_and_its_tally() {
        let topo: AnyTopology = Torus::square(4).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            "fail 1 node (restore +1ms)".into(),
            Some(sc_fail_node),
            0,
            params,
            crate::SimTuning::default(),
        )
        .call();
        assert_eq!(row.outcome, "degraded@1");
        assert_eq!(row.nodes_failed, 1);
        assert_eq!(row.nodes_restored, 1);
        assert_eq!(row.procs_lost, 1);
        assert_eq!(row.strike_pct, 0);
        assert!(row.rehome_msgs > 0);
        assert!(row.exec_time_ns > 0);
    }

    #[test]
    fn a_mid_run_strike_calibrates_against_the_intact_run() {
        // At strike 50 the faults land halfway through the intact run
        // length: the flap scenario must still fail and heal links, and the
        // row must carry its strike percent.
        let topo: AnyTopology = Torus::square(4).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            "flap 10% links for 1ms".into(),
            Some(sc_flap),
            50,
            params,
            crate::SimTuning::default(),
        )
        .call();
        assert_eq!(row.strike_pct, 50);
        assert_eq!(row.outcome, "ok");
        assert!(row.links_failed > 0);
        assert_eq!(row.links_failed, row.links_healed);
    }

    #[test]
    fn a_partitioning_point_renders_instead_of_failing() {
        // Severing every link cannot complete; the row must say so.
        fn sever(seed: u64, _nodes: usize, at: u64) -> FaultPlan {
            FaultPlan::new(seed).fail_links(1.0, at)
        }
        let topo: AnyTopology = FatTree::new(16).into();
        let params = UniformParams {
            ops_per_proc: 8,
            ..UniformParams::new(16)
        };
        let row = uniform_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            "fail all links".into(),
            Some(sever),
            0,
            params,
            crate::SimTuning::default(),
        )
        .call();
        assert!(row.outcome.starts_with("partitioned@"), "{}", row.outcome);
        assert!(row.links_failed > 0);
    }

    #[test]
    fn deltas_compare_each_row_to_its_own_intact_baseline() {
        let mk = |scenario: &str, outcome: &str, msgs: u64, time: u64| FaultRow {
            topology: "t".into(),
            workload: "w".into(),
            strategy: "s".into(),
            scenario: scenario.into(),
            strike_pct: 0,
            outcome: outcome.into(),
            congestion_msgs: msgs,
            congestion_bytes: 0,
            exec_time_ns: time,
            links_degraded: 0,
            links_failed: 0,
            links_healed: 0,
            nodes_failed: 0,
            nodes_restored: 0,
            rehome_msgs: 0,
            rehome_bytes: 0,
            locks_force_released: 0,
            procs_lost: 0,
            congestion_delta_pct: 0.0,
            time_delta_pct: 0.0,
            host_ms: 0.0,
        };
        let mut rows = vec![
            mk("intact", "ok", 100, 1_000),
            mk("fail", "ok", 150, 1_200),
            mk("sever", "partitioned@3", 10, 50),
            mk("intact", "ok", 200, 2_000),
            mk("fail", "degraded@1", 100, 2_000),
            mk("sever", "ok", 300, 3_000),
        ];
        fill_deltas(&mut rows, 3);
        assert_eq!(rows[1].congestion_delta_pct, 50.0);
        assert_eq!(rows[1].time_delta_pct, 20.0);
        // Partitioned rows keep zero deltas: partial runs are not comparable.
        assert_eq!(rows[2].congestion_delta_pct, 0.0);
        // The second group compares against its own baseline — and degraded
        // rows keep their deltas (survivors completed; their cost is the
        // degradation being measured).
        assert_eq!(rows[4].congestion_delta_pct, -50.0);
        assert_eq!(rows[5].time_delta_pct, 50.0);
    }
}
