//! Figure 9: Barnes-Hut N-body simulation — congestion and execution time of
//! the tree-building phase (the phase in which the fixed home of the root
//! cell becomes a serial bottleneck).
//!
//! Runs on the event-driven backend; see `fig8` for the sweep tiers.

use dm_bench::bh_exp::body_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = body_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "bodies",
        "strategy",
        "tree-build congestion[msgs]",
        "tree-build time[s]",
        "live vars peak",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.tree_build_congestion_msgs.to_string(),
            secs(r.tree_build_time_ns),
            r.live_vars_peak.to_string(),
        ]);
    }
    println!(
        "Figure 9 — Barnes-Hut tree-building phase on a {}x{} mesh ({} scale)",
        sweep.rows[0].mesh.0, sweep.rows[0].mesh.1, sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig9", &sweep);
}
