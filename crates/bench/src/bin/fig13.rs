//! Figure 13 (beyond the paper): graceful degradation under faults.
//!
//! Each (topology, strategy, workload) group runs a fixed scenario ladder —
//! intact, 20% of links degraded to quarter bandwidth, 10%/20% of links
//! failed, one node failed, four nodes failed — under a seeded
//! [`dm_diva::FaultPlan`], and every faulted row reports its congestion and
//! completion-time deltas against the intact baseline of its own group.
//! Scenarios that disconnect the network render as `partitioned@<node>`
//! instead of aborting the sweep: a clean partition diagnosis is part of
//! the robustness contract being measured.

use dm_bench::fault_exp::graceful_degradation_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

/// A signed percent delta, or a dash for rows it does not apply to (the
/// intact baseline and partitioned rows).
fn pct(value: f64, applies: bool) -> String {
    if applies {
        format!("{value:+.1}%")
    } else {
        "—".to_string()
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = graceful_degradation_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "topology",
        "workload",
        "strategy",
        "scenario",
        "outcome",
        "congestion[msgs]",
        "Δcongestion",
        "exec time[s]",
        "Δtime",
        "rehomed[B]",
    ]);
    for r in &sweep.rows {
        let faulted_ok = r.scenario != "intact" && r.outcome == "ok";
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            r.strategy.clone(),
            r.scenario.clone(),
            r.outcome.clone(),
            r.congestion_msgs.to_string(),
            pct(r.congestion_delta_pct, faulted_ok),
            secs(r.exec_time_ns),
            pct(r.time_delta_pct, faulted_ok),
            r.rehome_bytes.to_string(),
        ]);
    }
    println!(
        "Figure 13 — graceful degradation under faults at {} nodes ({} scale, {} scenarios)",
        sweep.meta.nodes, sweep.meta.scale, sweep.meta.scenarios
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig13", &sweep);
}
