//! Figure 13 (beyond the paper): graceful degradation under faults.
//!
//! Each (topology, strategy, workload) group runs a fixed scenario ladder —
//! intact, 20% of links degraded to quarter bandwidth, 10%/20% of links
//! failed, a transient 1 ms link flap, one node failed and restored, four
//! nodes failed — under a seeded [`dm_diva::FaultPlan`], and every faulted
//! row reports its congestion and completion-time deltas against the intact
//! baseline of its own group. `--strike-at 0,25,50,75` repeats every
//! faulted rung at each strike time, expressed as a percent of the group's
//! intact run length (mid-run strikes hit warmed-up routes and directory
//! state). Scenarios that disconnect the network render as
//! `partitioned@<node>` instead of aborting the sweep, and node failures
//! render as `degraded@<n>` with the survivors' measurements: clean
//! degradation diagnoses are part of the robustness contract being
//! measured.

use dm_bench::fault_exp::graceful_degradation_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

/// A signed percent delta, or a dash for rows it does not apply to (the
/// intact baseline and partitioned rows).
fn pct(value: f64, applies: bool) -> String {
    if applies {
        format!("{value:+.1}%")
    } else {
        "—".to_string()
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = graceful_degradation_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "topology",
        "workload",
        "strategy",
        "scenario",
        "strike",
        "outcome",
        "congestion[msgs]",
        "Δcongestion",
        "exec time[s]",
        "Δtime",
        "rehomed[B]",
    ]);
    for r in &sweep.rows {
        let faulted = r.scenario != "intact";
        let comparable = faulted && !r.outcome.starts_with("partitioned");
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            r.strategy.clone(),
            r.scenario.clone(),
            if faulted {
                format!("{}%", r.strike_pct)
            } else {
                "—".to_string()
            },
            r.outcome.clone(),
            r.congestion_msgs.to_string(),
            pct(r.congestion_delta_pct, comparable),
            secs(r.exec_time_ns),
            pct(r.time_delta_pct, comparable),
            r.rehome_bytes.to_string(),
        ]);
    }
    let strikes = sweep
        .meta
        .strikes
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("/");
    println!(
        "Figure 13 — graceful degradation under faults at {} nodes ({} scale, {} scenarios, \
         strikes at {}% of the intact run)",
        sweep.meta.nodes, sweep.meta.scale, sweep.meta.scenarios, strikes
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig13", &sweep);
}
