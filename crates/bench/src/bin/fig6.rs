//! Figure 6: bitonic sorting on a fixed mesh — congestion and execution-time
//! ratios vs keys per processor, for the fixed-home strategy and the 2-4-ary
//! access tree relative to the hand-optimized baseline. `--arity-sweep`
//! reproduces the 2-ary / 2-4-ary / 4-ary comparison of Section 3.2.

use dm_bench::bitonic_exp::{arity_strategies, figure6, sweep};
use dm_bench::table::{f2, secs, Table};
use dm_bench::{HarnessOpts, Scale};

fn main() {
    let (opts, flags) = HarnessOpts::parse(&["--arity-sweep"]);
    let rows = if flags.has("--arity-sweep") {
        let (mesh, keys) = match opts.scale() {
            Scale::Smoke => (4, 256),
            Scale::Default => (8, 1024),
            Scale::Paper => (16, 4096),
            Scale::Mega => (32, 4096),
        };
        sweep(&[(mesh, keys)], &arity_strategies(), &opts, "")
    } else {
        figure6(&opts)
    };
    let Some(rows) = rows else { return };
    let mut table = Table::new(&[
        "keys/proc",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "exec time[s]",
        "time ratio",
    ]);
    for r in &rows {
        table.row(vec![
            r.keys_per_proc.to_string(),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.exec_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!(
        "Figure 6 — bitonic sorting on a {0}x{0} mesh",
        rows[0].mesh_side
    );
    println!("{}", table.render());
    opts.write_json(&rows);
    opts.write_snapshot("fig6", &rows);
}
