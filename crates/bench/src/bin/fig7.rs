//! Figure 7: bitonic sorting with a fixed number of keys per processor —
//! congestion and execution-time ratios vs network size.

use dm_bench::bitonic_exp::figure7;
use dm_bench::table::{f2, secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(rows) = figure7(&opts) else { return };
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "exec time[s]",
        "time ratio",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.exec_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!(
        "Figure 7 — bitonic sorting, {} keys per processor",
        rows[0].keys_per_proc
    );
    println!("{}", table.render());
    opts.write_json(&rows);
    opts.write_snapshot("fig7", &rows);
}
