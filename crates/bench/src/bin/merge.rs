//! Stitch shard sidecars back into the canonical checkpoint.
//!
//! A sharded sweep (`fig13 --mega --json out.json --shard 0/2` on one
//! machine, `--shard 1/2` on another) leaves one sidecar per shard. This
//! binary merges them into the canonical `<out>.partial.jsonl`, after which
//! the figure binary rerun with `--resume --json out.json` finds every job
//! completed, executes nothing, and renders the table and JSON
//! byte-identically to a single-machine run:
//!
//! ```text
//! merge out.json.partial.jsonl out.json.shard0of2.partial.jsonl \
//!                              out.json.shard1of2.partial.jsonl
//! fig13 --mega --resume --json out.json
//! ```
//!
//! Shard headers must agree on sweep, tier, seed and total job count
//! (differing only in their shard stamp); the merged file carries the
//! canonical (shard-free) header. Jobs are deduplicated by ID and written
//! in ID order — overlapping shards are fine because every record for a
//! job ID holds the identical simulated payload. Merging an *incomplete*
//! set of shards is allowed: the output is a valid partial checkpoint that
//! `--resume` finishes.

use dm_bench::json::ToJson;
use dm_bench::stream::{read_sidecar_lines, SidecarHeader};
use std::collections::BTreeMap;
use std::path::Path;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: merge OUT_SIDECAR SHARD_SIDECAR...");
        eprintln!("  merges shard checkpoints into the canonical <json>.partial.jsonl;");
        eprintln!("  rerun the figure binary with --resume --json <json> to render");
        std::process::exit(if args.len() < 2 { 2 } else { 0 });
    }
    let out_path = Path::new(&args[0]);
    let mut canonical: Option<SidecarHeader> = None;
    let mut records: BTreeMap<usize, String> = BTreeMap::new();
    for shard_path in &args[1..] {
        let (header, lines) =
            read_sidecar_lines(Path::new(shard_path)).unwrap_or_else(|e| fail(&e));
        let stripped = SidecarHeader {
            shard: None,
            ..header.clone()
        };
        match &canonical {
            None => canonical = Some(stripped),
            Some(expect) if *expect == stripped => {}
            Some(expect) => fail(&format!(
                "{shard_path}: header {} does not match the first shard's {} — \
                 shards of different sweeps cannot be merged",
                stripped.to_json(),
                expect.to_json()
            )),
        }
        for (job, line) in lines {
            records.entry(job).or_insert(line);
        }
    }
    let header = canonical.unwrap_or_else(|| fail("no shard sidecars given"));
    let mut out = String::with_capacity(records.len() * 128);
    out.push_str(&header.to_json());
    out.push('\n');
    for line in records.values() {
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(out_path, out)
        .unwrap_or_else(|e| fail(&format!("writing {}: {e}", out_path.display())));
    let total = header.total_jobs;
    let have = records.len();
    eprintln!(
        "merged {have}/{total} jobs into {}{}",
        out_path.display(),
        if have == total {
            " — rerun the figure binary with --resume to render"
        } else {
            " — incomplete; run the missing shards or finish with --resume"
        }
    );
}
