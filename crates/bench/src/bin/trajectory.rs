//! Diff two `BENCH_<fig>.json` perf-trajectory snapshots.
//!
//! Every figure binary writes a normalized snapshot with `--snapshot FILE`
//! (figure tag, tier, seed, full result payload). CI regenerates the
//! snapshots each run and diffs them against the checked-in previous ones:
//!
//! ```text
//! trajectory diff BENCH_fig8.json new/BENCH_fig8.json
//! ```
//!
//! Simulated quantities are compared **exactly** — any drift is a behaviour
//! change that must be explained by the commit under review. `host_ms`
//! leaves are reported separately and informationally (host wall-clock is
//! run-dependent by design). Exit status is 0 unless `--strict` is given
//! and a simulated quantity changed.

use dm_bench::json::{self, JsonValue};
use dm_bench::table::Table;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Flatten a snapshot into `(path, leaf)` pairs, e.g.
/// `payload.rows[3].congestion_msgs`. The `host_ms` subtrees are collected
/// under their own flag so the caller can split exact from informational.
fn flatten(v: &JsonValue, path: String, out: &mut Vec<(String, String, bool)>, in_host_ms: bool) {
    match v {
        JsonValue::Obj(fields) => {
            for (key, value) in fields {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(value, sub, out, in_host_ms || key == "host_ms");
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, format!("{path}[{i}]"), out, in_host_ms);
            }
        }
        JsonValue::Null => out.push((path, "null".to_string(), in_host_ms)),
        JsonValue::Bool(b) => out.push((path, b.to_string(), in_host_ms)),
        JsonValue::Num(raw) => out.push((path, raw.clone(), in_host_ms)),
        JsonValue::Str(s) => out.push((path, s.clone(), in_host_ms)),
    }
}

fn load(path: &str) -> Vec<(String, String, bool)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let v = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let mut out = Vec::new();
    flatten(&v, String::new(), &mut out, false);
    out
}

/// Relative drift of two numeric leaves as a display string, when both
/// parse as finite numbers.
fn drift(old: &str, new: &str) -> String {
    match (old.parse::<f64>(), new.parse::<f64>()) {
        (Ok(a), Ok(b)) if a.is_finite() && b.is_finite() && a != 0.0 => {
            format!("{:+.2}%", (b - a) / a * 100.0)
        }
        _ => "—".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let files: Vec<&String> = args
        .iter()
        .filter(|a| *a != "--strict" && *a != "diff")
        .collect();
    if files.len() != 2 {
        eprintln!("usage: trajectory diff [--strict] OLD_SNAPSHOT NEW_SNAPSHOT");
        std::process::exit(2);
    }
    let (old_path, new_path) = (files[0], files[1]);
    let old = load(old_path);
    let new = load(new_path);

    let old_map: std::collections::BTreeMap<&str, (&str, bool)> = old
        .iter()
        .map(|(p, v, h)| (p.as_str(), (v.as_str(), *h)))
        .collect();
    let new_map: std::collections::BTreeMap<&str, (&str, bool)> = new
        .iter()
        .map(|(p, v, h)| (p.as_str(), (v.as_str(), *h)))
        .collect();

    let mut sim_changes: Vec<(String, String, String)> = Vec::new();
    let mut host_changes = 0usize;
    let mut added = 0usize;
    let mut removed = 0usize;
    for (path, (old_value, is_host)) in &old_map {
        match new_map.get(path) {
            None => removed += 1,
            Some((new_value, _)) if new_value == old_value => {}
            Some((new_value, _)) => {
                if *is_host {
                    host_changes += 1;
                } else {
                    sim_changes.push((
                        (*path).to_string(),
                        (*old_value).to_string(),
                        (*new_value).to_string(),
                    ));
                }
            }
        }
    }
    for path in new_map.keys() {
        if !old_map.contains_key(path) {
            added += 1;
        }
    }

    if sim_changes.is_empty() {
        println!(
            "trajectory {old_path} → {new_path}: simulated quantities identical \
             ({} leaves; {host_changes} host_ms drifted, {added} added, {removed} removed)",
            old_map.len()
        );
        return;
    }
    let mut table = Table::new(&["path", "old", "new", "drift"]);
    for (path, old_value, new_value) in &sim_changes {
        table.row(vec![
            path.clone(),
            old_value.clone(),
            new_value.clone(),
            drift(old_value, new_value),
        ]);
    }
    println!(
        "trajectory {old_path} → {new_path}: {} simulated quantities changed \
         ({host_changes} host_ms drifted, {added} leaves added, {removed} removed)",
        sim_changes.len()
    );
    println!("{}", table.render());
    if strict {
        std::process::exit(1);
    }
}
