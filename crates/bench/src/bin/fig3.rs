//! Figure 3: matrix multiplication on a fixed mesh — congestion and
//! communication-time ratios vs block size, for the fixed-home strategy and
//! the 4-ary access tree, relative to the hand-optimized message-passing
//! baseline. `--arity-sweep` additionally reproduces the access-tree arity
//! comparison discussed in the text of Section 3.1.

use dm_bench::matmul_exp::{arity_strategies, figure3, sweep};
use dm_bench::table::{f2, secs, Table};
use dm_bench::{HarnessOpts, Scale};

fn main() {
    let (opts, flags) = HarnessOpts::parse(&["--arity-sweep"]);
    let rows = if flags.has("--arity-sweep") {
        let (mesh, block) = match opts.scale() {
            Scale::Smoke => (4, 256),
            Scale::Default => (8, 1024),
            Scale::Paper => (16, 4096),
            Scale::Mega => (32, 4096),
        };
        sweep(&[(mesh, block)], &arity_strategies(), &opts, "")
    } else {
        figure3(&opts)
    };
    let Some(rows) = rows else { return };
    let mut table = Table::new(&[
        "block",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "comm time[s]",
        "time ratio",
    ]);
    for r in &rows {
        table.row(vec![
            r.block_ints.to_string(),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.comm_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!(
        "Figure 3 — matrix multiplication on a {0}x{0} mesh",
        rows[0].mesh_side
    );
    println!("{}", table.render());
    opts.write_json(&rows);
    opts.write_snapshot("fig3", &rows);
}
