//! Figure 10: Barnes-Hut N-body simulation — congestion, execution time and
//! local computation time of the force-computation phase.

use dm_bench::bh_exp::body_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let rows = body_sweep(&opts);
    let mut table = Table::new(&[
        "bodies",
        "strategy",
        "force congestion[msgs]",
        "force time[s]",
        "local compute[s]",
    ]);
    for r in &rows {
        table.row(vec![
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.force_congestion_msgs.to_string(),
            secs(r.force_time_ns),
            secs(r.force_compute_ns),
        ]);
    }
    println!(
        "Figure 10 — Barnes-Hut force-computation phase on a {}x{} mesh",
        rows[0].mesh.0, rows[0].mesh.1
    );
    println!("{}", table.render());
    opts.write_json(&rows);
}
