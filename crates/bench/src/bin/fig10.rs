//! Figure 10: Barnes-Hut N-body simulation — congestion, execution time and
//! local computation time of the force-computation phase.
//!
//! Runs on the event-driven backend; see `fig8` for the sweep tiers.

use dm_bench::bh_exp::body_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = body_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "bodies",
        "strategy",
        "force congestion[msgs]",
        "force time[s]",
        "local compute[s]",
        "live vars peak",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.force_congestion_msgs.to_string(),
            secs(r.force_time_ns),
            secs(r.force_compute_ns),
            r.live_vars_peak.to_string(),
        ]);
    }
    println!(
        "Figure 10 — Barnes-Hut force-computation phase on a {}x{} mesh ({} scale)",
        sweep.rows[0].mesh.0, sweep.rows[0].mesh.1, sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig10", &sweep);
}
