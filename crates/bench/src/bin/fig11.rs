//! Figure 11: Barnes-Hut N-body simulation — congestion and execution time
//! when the network is scaled and the number of bodies grows with the number
//! of processors, comparing the fixed-home strategy with the 4-8-ary access
//! tree.
//!
//! Runs on the event-driven backend. `--mega` scales the mesh axis to 64×64
//! (4 096 processors), whose last point simulates 102 400 bodies.

use dm_bench::bh_exp::scaling_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = scaling_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "mesh",
        "bodies",
        "strategy",
        "congestion[msgs]",
        "exec time[s]",
        "force local compute[s]",
        "live vars peak",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            format!("{}x{}", r.mesh.0, r.mesh.1),
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.congestion_msgs.to_string(),
            secs(r.exec_time_ns),
            secs(r.force_compute_ns),
            r.live_vars_peak.to_string(),
        ]);
    }
    println!(
        "Figure 11 — Barnes-Hut scaling the network size (N grows with P, {} scale)",
        sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig11", &sweep);
}
