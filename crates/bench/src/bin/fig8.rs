//! Figure 8: Barnes-Hut N-body simulation — total congestion (in messages)
//! and execution time of the measured time steps, vs the number of bodies,
//! for the fixed-home strategy and the 2/4/16-ary and 4-16-ary access trees.

use dm_bench::bh_exp::body_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let rows = body_sweep(&opts);
    let mut table = Table::new(&["bodies", "strategy", "congestion[msgs]", "exec time[s]"]);
    for r in &rows {
        table.row(vec![
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.congestion_msgs.to_string(),
            secs(r.exec_time_ns),
        ]);
    }
    println!(
        "Figure 8 — Barnes-Hut on a {}x{} mesh (measured steps only)",
        rows[0].mesh.0, rows[0].mesh.1
    );
    println!("{}", table.render());
    opts.write_json(&rows);
}
