//! Figure 8: Barnes-Hut N-body simulation — total congestion (in messages)
//! and execution time of the measured time steps, vs the number of bodies,
//! for the fixed-home strategy and the 2/4/16-ary and 4-16-ary access trees.
//!
//! Runs on the event-driven backend. `--mega` extends the body-count axis to
//! 100 000 bodies on a 64×64 mesh (4 096 processors — 16× the paper's
//! platform).

use dm_bench::bh_exp::body_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = body_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "bodies",
        "strategy",
        "congestion[msgs]",
        "exec time[s]",
        "live vars peak",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            r.n_bodies.to_string(),
            r.strategy.clone(),
            r.congestion_msgs.to_string(),
            secs(r.exec_time_ns),
            r.live_vars_peak.to_string(),
        ]);
    }
    println!(
        "Figure 8 — Barnes-Hut on a {}x{} mesh (measured steps only, {} scale)",
        sweep.rows[0].mesh.0, sweep.rows[0].mesh.1, sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig8", &sweep);
}
