//! Figure 12 (beyond the paper): the five strategies of the Barnes-Hut
//! figures across the four topologies — mesh, torus, hypercube, fat tree —
//! at matched node counts, under the uniform-random and Barnes-Hut
//! workloads.
//!
//! The access tree of every variable is built from the *topology's own*
//! recursive decomposition (the paper's construction for general networks),
//! so this figure is the first direct measurement of the strategy beyond
//! meshes in this reproduction.

use dm_bench::table::{secs, Table};
use dm_bench::topo_exp::cross_topology_sweep;
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = cross_topology_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "topology",
        "workload",
        "strategy",
        "congestion[msgs]",
        "exec time[s]",
        "total msgs",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            r.strategy.clone(),
            r.congestion_msgs.to_string(),
            secs(r.exec_time_ns),
            r.total_msgs.to_string(),
        ]);
    }
    println!(
        "Figure 12 — strategies across topologies at {} nodes ({} scale)",
        sweep.meta.nodes, sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig12", &sweep);
}
