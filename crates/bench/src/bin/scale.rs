//! Beyond-paper scaling: network-size sweeps extended to mesh sizes the
//! paper's platform could never reach (64×64 = 4096 and 128×128 = 16384
//! processors).
//!
//! The thread-per-processor backend cannot run these sizes at all (16384 OS
//! threads); the event-driven backend completes the whole sweep in minutes.
//! Block and key sizes are reduced relative to the paper sweeps so the
//! simulated data volume per processor stays constant while the network
//! grows — the regime where the congestion-ratio curves of Figures 4 and 7
//! are interesting.
//!
//! Modes:
//! * default — Figure-4/7-style matmul and bitonic sweeps up to 64×64;
//! * `--bh` — a Figure-11-style Barnes-Hut sweep instead (25 bodies per
//!   processor, so the 64×64 point simulates 102 400 bodies);
//! * `--mega` — adds the 128×128 points to either mode (for `--bh` that is
//!   409 600 bodies — expect ~20 minutes for the two strategies);
//! * `--smoke` — 4×4 and 8×8 only, for the CI figure-suite gate.

use dm_apps::barnes_hut::BhParams;
use dm_bench::bh_exp::{self, BhRow};
use dm_bench::bitonic_exp::{self, BitonicRow};
use dm_bench::executor::Job;
use dm_bench::matmul_exp::{self, MatmulRow};
use dm_bench::table::{f2, secs, Table};
use dm_bench::{impl_to_json, HarnessOpts};
use dm_diva::StrategyKind;
use dm_mesh::TreeShape;
use std::time::Instant;

/// The `--json` payload: every sweep the scaling scenario ran.
struct ScaleRows {
    matmul: Vec<MatmulRow>,
    bitonic: Vec<BitonicRow>,
    barnes_hut: Vec<BhRow>,
}

impl_to_json!(ScaleRows {
    matmul,
    bitonic,
    barnes_hut,
});

fn run_barnes_hut(opts: &HarnessOpts, sides: &[usize]) -> Option<Vec<BhRow>> {
    // Figure-11-style: the body count grows with the processor count. 25
    // bodies per processor keeps the per-point runtime in minutes while the
    // 64×64 point still simulates ≥100 000 bodies.
    let bodies_per_proc = 25;
    let mut params_proto = BhParams {
        timesteps: 3,
        warmup_steps: 1,
        ..BhParams::new(0)
    };
    // `--timesteps 7` pushes a mega sweep to the paper's step count —
    // affordable only because per-step reclamation (`reclaim`, on unless
    // `--no-reclaim`) caps protocol state at O(cells per step).
    bh_exp::apply_lifecycle_opts(&mut params_proto, opts);
    let strategies = [
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "4-8-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 8)),
        ),
    ];
    // Describe every point as a job; the executor's memory governor keeps at
    // most two mega (128×128) points in flight regardless of `--jobs`.
    let mut jobs = Vec::new();
    for &side in sides {
        let n = bodies_per_proc * side * side;
        let mut params = params_proto;
        params.n_bodies = n;
        for (name, strategy) in &strategies {
            let progress_name = name.clone();
            let inner = bh_exp::point_job(
                (side, side),
                n,
                name.clone(),
                *strategy,
                params,
                opts.seed,
                opts.tuning(),
            );
            // Propagate the inner job's heaviness: it can exceed what the
            // wrapper's `Job::new` derives from the weight alone (the
            // Barnes-Hut memory proxy flags big points independently of the
            // timestep-scaled weight).
            let (weight, heavy) = (inner.weight, inner.heavy);
            // Wrap to keep the per-point progress lines on stderr (they are
            // not part of the golden-diffed stdout).
            let job = Job::new(weight, move || {
                let t = Instant::now();
                let row = inner.call();
                eprintln!(
                    "barnes-hut {side}x{side} n={n} {progress_name} done in {:.1?}",
                    t.elapsed()
                );
                row
            });
            jobs.push(if heavy { job.heavy() } else { job });
        }
    }
    bh_exp::run_bh_jobs(opts, "bh", jobs)
}

fn main() {
    let (opts, flags) = HarnessOpts::parse(&["--bh"]);
    let bh = flags.has("--bh");
    if opts.paper && !opts.mega {
        eprintln!("note: scale has no --paper tier (it is beyond-paper by design); running the default sweep");
    }
    let sides: Vec<usize> = if opts.mega {
        vec![16, 32, 64, 128]
    } else if opts.smoke {
        // CI tier: exercise the sweep machinery, not the scale.
        vec![4, 8]
    } else {
        vec![16, 32, 64]
    };

    let mut payload = ScaleRows {
        matmul: Vec::new(),
        bitonic: Vec::new(),
        barnes_hut: Vec::new(),
    };

    if bh {
        let Some(rows) = run_barnes_hut(&opts, &sides) else {
            return;
        };
        payload.barnes_hut = rows;
        let mut table = Table::new(&[
            "mesh",
            "bodies",
            "strategy",
            "congestion[msgs]",
            "exec time[s]",
            "force local compute[s]",
            "live vars peak",
        ]);
        for r in &payload.barnes_hut {
            table.row(vec![
                format!("{}x{}", r.mesh.0, r.mesh.1),
                r.n_bodies.to_string(),
                r.strategy.clone(),
                r.congestion_msgs.to_string(),
                secs(r.exec_time_ns),
                secs(r.force_compute_ns),
                r.live_vars_peak.to_string(),
            ]);
        }
        println!("Beyond-paper scaling — Barnes-Hut, 25 bodies per processor");
        println!("{}", table.render());
        opts.write_json(&payload);
        opts.write_snapshot("scale", &payload);
        return;
    }

    // Matrix square, Figure-4 style: fixed block size, growing mesh.
    let block = 256;
    let matmul_points: Vec<(usize, usize)> = sides.iter().map(|&s| (s, block)).collect();
    let t = Instant::now();
    // A shard or cut-short run checkpoints each sweep into its own tagged
    // sidecar and renders nothing; `--resume` finishes both and renders.
    let Some(matmul_rows) = matmul_exp::sweep(
        &matmul_points,
        &matmul_exp::figure_strategies(),
        &opts,
        "matmul",
    ) else {
        finish_bitonic(&opts, &sides);
        return;
    };
    payload.matmul = matmul_rows;
    eprintln!("matmul sweep done in {:.1?}", t.elapsed());
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "comm time[s]",
        "time ratio",
    ]);
    for r in &payload.matmul {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.comm_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!("Beyond-paper scaling — matrix multiplication, block size {block}");
    println!("{}", table.render());

    // Bitonic sorting, Figure-7 style: fixed keys per processor, growing mesh.
    let keys = 256;
    let bitonic_points: Vec<(usize, usize)> = sides.iter().map(|&s| (s, keys)).collect();
    let t = Instant::now();
    let Some(bitonic_rows) = bitonic_exp::sweep(
        &bitonic_points,
        &bitonic_exp::figure_strategies(),
        &opts,
        "bitonic",
    ) else {
        return;
    };
    payload.bitonic = bitonic_rows;
    eprintln!("bitonic sweep done in {:.1?}", t.elapsed());
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "exec time[s]",
        "time ratio",
    ]);
    for r in &payload.bitonic {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.exec_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!("Beyond-paper scaling — bitonic sorting, {keys} keys per processor");
    println!("{}", table.render());

    opts.write_json(&payload);
    opts.write_snapshot("scale", &payload);
}

/// When the matmul sweep of a shard run came back incomplete, still push the
/// bitonic shard through its own sidecar so one `scale --shard i/n`
/// invocation advances both sweeps.
fn finish_bitonic(opts: &HarnessOpts, sides: &[usize]) {
    let keys = 256;
    let points: Vec<(usize, usize)> = sides.iter().map(|&s| (s, keys)).collect();
    let _ = bitonic_exp::sweep(&points, &bitonic_exp::figure_strategies(), opts, "bitonic");
}
