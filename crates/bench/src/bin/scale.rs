//! Beyond-paper scaling: Figure-4/7-style network-size sweeps extended to
//! mesh sizes the paper's platform could never reach (64×64 = 4096 and
//! 128×128 = 16384 processors).
//!
//! The thread-per-processor backend cannot run these sizes at all (16384 OS
//! threads); the event-driven backend completes the whole sweep in minutes.
//! Block and key sizes are reduced relative to the paper sweeps so the
//! simulated data volume per processor stays constant while the network
//! grows — the regime where the congestion-ratio curves of Figures 4 and 7
//! are interesting.
//!
//! `--mega` adds the 128×128 points (the default stops at 64×64).

use dm_bench::bitonic_exp::{self, BitonicRow};
use dm_bench::matmul_exp::{self, MatmulRow};
use dm_bench::table::{f2, secs, Table};
use dm_bench::{impl_to_json, HarnessOpts};
use std::time::Instant;

/// The `--json` payload: both sweeps of the scaling scenario.
struct ScaleRows {
    matmul: Vec<MatmulRow>,
    bitonic: Vec<BitonicRow>,
}

impl_to_json!(ScaleRows { matmul, bitonic });

fn main() {
    let opts = HarnessOpts::from_args_allowing(&["--mega"]);
    let mega = std::env::args().any(|a| a == "--mega");
    let sides: Vec<usize> = if mega {
        vec![16, 32, 64, 128]
    } else {
        vec![16, 32, 64]
    };

    // Matrix square, Figure-4 style: fixed block size, growing mesh.
    let block = 256;
    let mut mm_rows = Vec::new();
    for &side in &sides {
        let t = Instant::now();
        mm_rows.extend(matmul_exp::run_point(
            side,
            block,
            &matmul_exp::figure_strategies(),
            opts.seed,
        ));
        eprintln!("matmul {side}x{side} done in {:.1?}", t.elapsed());
    }
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "comm time[s]",
        "time ratio",
    ]);
    for r in &mm_rows {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.comm_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!("Beyond-paper scaling — matrix multiplication, block size {block}");
    println!("{}", table.render());

    // Bitonic sorting, Figure-7 style: fixed keys per processor, growing mesh.
    let keys = 256;
    let mut bt_rows = Vec::new();
    for &side in &sides {
        let t = Instant::now();
        bt_rows.extend(bitonic_exp::run_point(
            side,
            keys,
            &bitonic_exp::figure_strategies(),
            opts.seed,
        ));
        eprintln!("bitonic {side}x{side} done in {:.1?}", t.elapsed());
    }
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "exec time[s]",
        "time ratio",
    ]);
    for r in &bt_rows {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.exec_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!("Beyond-paper scaling — bitonic sorting, {keys} keys per processor");
    println!("{}", table.render());

    opts.write_json(&ScaleRows {
        matmul: mm_rows,
        bitonic: bt_rows,
    });
}
