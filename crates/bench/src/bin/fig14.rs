//! Figure 14 (beyond the paper): the five strategies as the replication
//! layer of a KV serving tier, across the four topologies, under
//! Internet-scale request workloads — uniform, Zipf-skewed (s = 0.9 and
//! s = 1.2), and a migrating hotspot — with client churn off and on.
//!
//! The paper's competitive guarantee covers arbitrary access patterns; this
//! figure measures the serving-side quantities a cache operator cares
//! about: local-hit ratio, bytes moved, response-time p50/p99 (log2-bucket
//! lower bounds) and the replication-degree high-water mark.

use dm_bench::kv_exp::kv_serving_sweep;
use dm_bench::table::{secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(sweep) = kv_serving_sweep(&opts) else {
        return;
    };
    let mut table = Table::new(&[
        "topology",
        "workload",
        "churn",
        "strategy",
        "hit%",
        "bytes moved",
        "p50[ns]",
        "p99[ns]",
        "repl",
        "exec time[s]",
    ]);
    for r in &sweep.rows {
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            r.churn.clone(),
            r.strategy.clone(),
            format!("{:.1}", r.hit_percent()),
            r.bytes_moved.to_string(),
            r.p50_ns.to_string(),
            r.p99_ns.to_string(),
            r.repl_high_water.to_string(),
            secs(r.exec_time_ns),
        ]);
    }
    println!(
        "Figure 14 — KV serving tier across topologies at {} nodes ({} scale)",
        sweep.meta.nodes, sweep.meta.scale
    );
    println!("{}", table.render());
    opts.write_json(&sweep);
    opts.write_snapshot("fig14", &sweep);
}
