//! Figure 4: matrix multiplication with a fixed block size — congestion and
//! communication-time ratios vs network size.

use dm_bench::matmul_exp::figure4;
use dm_bench::table::{f2, secs, Table};
use dm_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let Some(rows) = figure4(&opts) else { return };
    let mut table = Table::new(&[
        "mesh",
        "strategy",
        "congestion[B]",
        "congestion ratio",
        "comm time[s]",
        "time ratio",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{0}x{0}", r.mesh_side),
            r.strategy.clone(),
            r.congestion_bytes.to_string(),
            f2(r.congestion_ratio),
            secs(r.comm_time_ns),
            f2(r.time_ratio),
        ]);
    }
    println!(
        "Figure 4 — matrix multiplication, block size {}",
        rows[0].block_ints
    );
    println!("{}", table.render());
    opts.write_json(&rows);
    opts.write_snapshot("fig4", &rows);
}
