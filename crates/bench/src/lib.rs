//! # dm-bench — the experiment harness of the DIVA reproduction
//!
//! One module per group of paper figures, plus shared helpers. Every figure of
//! the evaluation section has a corresponding binary in `src/bin/` that
//! regenerates the figure's rows:
//!
//! | binary  | paper figure | content |
//! |---------|--------------|---------|
//! | `fig3`  | Figure 3     | matrix multiplication on a fixed mesh: congestion and communication-time ratios vs block size |
//! | `fig4`  | Figure 4     | matrix multiplication with a fixed block size: ratios vs network size |
//! | `fig6`  | Figure 6     | bitonic sorting on a fixed mesh: ratios vs keys per processor |
//! | `fig7`  | Figure 7     | bitonic sorting with fixed keys: ratios vs network size |
//! | `fig8`  | Figure 8     | Barnes-Hut: total congestion and execution time vs number of bodies |
//! | `fig9`  | Figure 9     | Barnes-Hut: tree-building phase congestion and time |
//! | `fig10` | Figure 10    | Barnes-Hut: force-computation phase congestion, time and local computation |
//! | `fig11` | Figure 11    | Barnes-Hut: scaling the network size with N = bodies-per-processor · P |
//! | `fig12` | (beyond paper) | all five strategies across the four topologies (mesh, torus, hypercube, fat tree) at matched node counts, uniform-random + Barnes-Hut workloads |
//! | `fig13` | (beyond paper) | graceful degradation: the strategies under a seeded fault-scenario ladder (degraded links, failed links, failed nodes) with deltas vs the intact baseline |
//! | `fig14` | (beyond paper) | KV serving tier: the strategies under Zipf-skewed, migrating-hotspot and churning request workloads, with local-hit ratio, bytes moved, response-time percentiles and replication high-water |
//! | `scale` | (beyond paper) | network-size sweeps at 64×64/128×128: matmul + bitonic, or Barnes-Hut with `--bh` |
//!
//! All binaries run on the event-driven backend and accept four scale tiers
//! (see [`Scale`]): `--smoke` (seconds — the CI figure-suite gate), the
//! default (reduced scale preserving the qualitative shape of every result),
//! `--paper` (the paper's full scale) and `--mega` (beyond-paper scale:
//! 64×64 meshes, ≥100 000-body Barnes-Hut sweeps). `--json FILE` writes the
//! rows — plus sweep metadata for the Barnes-Hut figures — as JSON, and
//! turns on streaming JSONL checkpoints (`<FILE>.partial.jsonl`): a killed
//! sweep resumes with `--resume`, splits across machines with
//! `--shard i/n` + the `merge` binary, and `--snapshot FILE` emits the
//! normalized `BENCH_<fig>.json` snapshot the `trajectory` binary diffs
//! across commits (see [`stream`]). See `crates/bench/README.md` and
//! `docs/running-experiments.md` for per-binary flags and expected
//! runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bh_exp;
pub mod bitonic_exp;
pub mod calibration;
pub mod executor;
pub mod fault_exp;
pub mod json;
pub mod kv_exp;
pub mod matmul_exp;
pub mod stream;
pub mod table;
pub mod timing;
pub mod topo_exp;

use dm_diva::{Diva, DivaConfig, StrategyKind};
use dm_engine::MachineConfig;
use dm_mesh::{AnyTopology, Mesh, TreeShape};
use json::ToJson;

/// The scale tier of a figure run. Every `fig*` binary supports all four
/// (the `scale` binary, already beyond-paper by design, has `--smoke` and
/// `--mega` tiers only); the exact sweep points per tier live next to the
/// figure's sweep function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast CI tier: tiny meshes and inputs, used by the figure-suite
    /// smoke gate which diffs the rendered tables against checked-in goldens.
    Smoke,
    /// The default: reduced scale preserving the qualitative shape of every
    /// result, re-tuned upwards for the event-driven backend.
    Default,
    /// The paper's full scale (16×16/32×32 meshes, up to 60 000 bodies).
    Paper,
    /// Beyond-paper scale: 64×64+ meshes and ≥100 000-body Barnes-Hut
    /// sweeps, only reachable on the event-driven backend.
    Mega,
}

impl Scale {
    /// Tier name as printed in figure titles and JSON metadata.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Paper => "paper",
            Scale::Mega => "mega",
        }
    }
}

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run at the paper's full scale (`--paper`).
    pub paper: bool,
    /// Run at the tiny CI smoke scale (`--smoke`).
    pub smoke: bool,
    /// Run at beyond-paper scale (`--mega`; implies neither of the above).
    pub mega: bool,
    /// Optional path to write the result rows as JSON.
    pub json: Option<String>,
    /// Optional seed override.
    pub seed: u64,
    /// Per-step variable reclamation for the Barnes-Hut figures
    /// (`--no-reclaim` turns it off). Simulated quantities are bit-identical
    /// either way; only the live-variable peak — and the host memory of a
    /// long sweep — differ.
    pub reclaim: bool,
    /// Optional override of the Barnes-Hut time-step count
    /// (`--timesteps N`); reclamation is what makes large step counts
    /// affordable at mega scale.
    pub timesteps: Option<usize>,
    /// Worker-thread count of the parallel sweep executor (`--jobs N`).
    /// `None` uses the host's available parallelism; `1` runs the sweep
    /// serially on the calling thread. Every simulated quantity is identical
    /// for every value — only host wall-clock (and the per-job host-ms
    /// fields of the JSON sidecar) changes.
    pub jobs: Option<usize>,
    /// Resume from the checkpoint sidecar next to the `--json` output
    /// (`--resume`): completed jobs are restored from
    /// `<json>.partial.jsonl` and only the missing ones execute. The
    /// reassembled tables and JSON are byte-identical to an uninterrupted
    /// run (modulo per-job `host_ms`). See [`stream`].
    pub resume: bool,
    /// Run only shard `i` of `n` (`--shard i/n`): job `j` of the
    /// deterministic description-order job list belongs to shard `i` iff
    /// `j % n == i`. A shard run writes its own sidecar and renders
    /// nothing; the `merge` binary stitches shard sidecars back into the
    /// canonical one, which a final `--resume` run renders. See [`stream`].
    pub shard: Option<(usize, usize)>,
    /// Optional path for a normalized `BENCH_<fig>.json` perf-trajectory
    /// snapshot (`--snapshot FILE`): figure tag, tier, seed and the full
    /// result payload, in the shape the `trajectory` binary diffs across
    /// commits (simulated quantities exactly; `host_ms` informational).
    pub snapshot: Option<String>,
    /// Worker threads *inside* each simulation (`--workers N`): the parallel
    /// driven backend partitions the processors across N threads via the
    /// decomposition tree. `None`/`1` takes the serial driven backend
    /// untouched; every simulated quantity is bit-identical for every value
    /// (the `parallel_parity` suite gates this). Composes with `--jobs`
    /// under a shared thread budget — see [`HarnessOpts::jobs`].
    pub workers: Option<usize>,
    /// Apply the per-topology calibrated link-cost presets
    /// (`--calibrated-delays`): slower torus wrap links, latency growing
    /// with the bridged dimension on hypercubes, faster upper fat-tree
    /// stages. Off by default; the default uniform costs are bit-identical
    /// to the pre-preset behaviour.
    pub calibrated_delays: bool,
    /// Strike times of the fig13 fault scenarios (`--strike-at 0,25,50,75`),
    /// as percents of the group's *intact* run length. Empty means `[0]`
    /// (every fault strikes at t=0). A non-zero strike makes each faulted
    /// job run an intact calibration copy first to convert the percent into
    /// an absolute simulated time — jobs stay pure, so `--resume`/`--shard`
    /// keep working, at the cost of one extra run per non-zero-strike point.
    pub strike_at: Vec<u64>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            paper: false,
            smoke: false,
            mega: false,
            json: None,
            seed: 0x5EED,
            reclaim: true,
            timesteps: None,
            jobs: None,
            resume: false,
            shard: None,
            snapshot: None,
            workers: None,
            calibrated_delays: false,
            strike_at: Vec::new(),
        }
    }
}

/// Per-simulation tuning knobs, threaded from the harness flags into every
/// DIVA instance an experiment constructs (see [`HarnessOpts::tuning`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTuning {
    /// Worker threads of the parallel driven backend (1 = serial backend).
    pub workers: usize,
    /// Apply the per-topology calibrated link-cost presets.
    pub calibrated_delays: bool,
}

impl Default for SimTuning {
    fn default() -> Self {
        SimTuning {
            workers: 1,
            calibrated_delays: false,
        }
    }
}

/// Which of a binary's extra boolean flags were present on the command line
/// (second half of [`HarnessOpts::parse`]).
#[derive(Debug, Clone)]
pub struct ExtraFlags {
    names: Vec<&'static str>,
    seen: Vec<bool>,
}

impl ExtraFlags {
    /// Whether `flag` (e.g. `"--bh"`) was given. Panics if the flag was not
    /// declared in the [`HarnessOpts::parse`] call — a typo in the binary,
    /// not a user error.
    pub fn has(&self, flag: &str) -> bool {
        match self.names.iter().position(|n| *n == flag) {
            Some(i) => self.seen[i],
            None => panic!("flag {flag} was not declared in HarnessOpts::parse"),
        }
    }
}

impl HarnessOpts {
    /// The selected scale tier. When several tier flags are given the
    /// largest wins (`--mega` > `--paper` > `--smoke`).
    pub fn scale(&self) -> Scale {
        if self.mega {
            Scale::Mega
        } else if self.paper {
            Scale::Paper
        } else if self.smoke {
            Scale::Smoke
        } else {
            Scale::Default
        }
    }

    /// The worker-thread count of the sweep executor: `--jobs N` if given.
    /// Otherwise the host's available parallelism *divided by the per-sim
    /// worker count*, so that intra-sim (`--workers`) and inter-sim
    /// (`--jobs`) parallelism compose without oversubscribing the machine:
    /// `--workers 4` on an 8-core host runs 2 simulations at a time, each
    /// stepping programs on up to 4 threads. An explicit `--jobs` always
    /// wins — the budget split is only the default.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / self.workers()).max(1)
        })
    }

    /// The per-simulation worker-thread count: `--workers N` if given, 1
    /// (the serial driven backend) otherwise.
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// The fig13 strike-time axis: the `--strike-at` percents, or `[0]`
    /// when the flag was not given (all faults strike at t=0).
    pub fn strikes(&self) -> Vec<u64> {
        if self.strike_at.is_empty() {
            vec![0]
        } else {
            self.strike_at.clone()
        }
    }

    /// The per-simulation tuning knobs as one bundle, for threading through
    /// an experiment's job-description functions.
    pub fn tuning(&self) -> SimTuning {
        SimTuning {
            workers: self.workers(),
            calibrated_delays: self.calibrated_delays,
        }
    }

    /// Parse the options from command-line arguments (warns about unknown
    /// flags). Binaries with extra boolean flags of their own use
    /// [`HarnessOpts::parse`].
    pub fn from_args() -> Self {
        Self::parse(&[]).0
    }

    /// Parse the shared harness options plus the listed binary-specific
    /// boolean flags, in one pass. This is *the* flag parser of the figure
    /// suite: every binary shares the `--smoke/--paper/--mega/--json/--seed/
    /// --jobs/--no-reclaim/--timesteps` handling (and the `--help` text),
    /// and gets its extra flags back through [`ExtraFlags::has`] instead of
    /// re-scanning `std::env::args` itself.
    pub fn parse(extra_flags: &[&'static str]) -> (Self, ExtraFlags) {
        let mut opts = HarnessOpts::default();
        let mut extra = ExtraFlags {
            names: extra_flags.to_vec(),
            seen: vec![false; extra_flags.len()],
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => opts.paper = true,
                "--smoke" => opts.smoke = true,
                "--mega" => opts.mega = true,
                "--no-reclaim" => opts.reclaim = false,
                "--timesteps" => {
                    let value = args.get(i + 1);
                    match value.and_then(|s| s.parse().ok()) {
                        Some(t) => opts.timesteps = Some(t),
                        None => eprintln!("--timesteps needs a positive integer value; ignoring"),
                    }
                    // Consume the value token even when it failed to parse,
                    // so it is not re-reported as an unknown argument.
                    if value.is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
                "--jobs" => {
                    let value = args.get(i + 1);
                    match value.and_then(|s| s.parse::<usize>().ok()) {
                        Some(j) if j > 0 => opts.jobs = Some(j),
                        _ => eprintln!("--jobs needs a positive integer value; ignoring"),
                    }
                    if value.is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
                "--workers" => {
                    let value = args.get(i + 1);
                    match value.and_then(|s| s.parse::<usize>().ok()) {
                        Some(w) if w > 0 => opts.workers = Some(w),
                        _ => eprintln!("--workers needs a positive integer value; ignoring"),
                    }
                    if value.is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
                "--calibrated-delays" => opts.calibrated_delays = true,
                "--strike-at" => {
                    let value = args.get(i + 1);
                    let parsed = value.and_then(|s| {
                        s.split(',')
                            .map(|t| t.trim().parse::<u64>().ok().filter(|p| *p < 100))
                            .collect::<Option<Vec<u64>>>()
                    });
                    match parsed {
                        Some(list) if !list.is_empty() => opts.strike_at = list,
                        _ => eprintln!(
                            "--strike-at needs a comma-separated list of percents below 100 \
                             (e.g. 0,25,50,75); ignoring"
                        ),
                    }
                    if value.is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
                flag if extra_flags.contains(&flag) => {
                    let idx = extra_flags.iter().position(|f| *f == flag).unwrap();
                    extra.seen[idx] = true;
                }
                "--json" => {
                    i += 1;
                    opts.json = args.get(i).cloned();
                }
                "--snapshot" => {
                    i += 1;
                    opts.snapshot = args.get(i).cloned();
                }
                "--resume" => opts.resume = true,
                "--shard" => {
                    let value = args.get(i + 1);
                    let parsed = value.and_then(|s| {
                        let (a, b) = s.split_once('/')?;
                        let shard: usize = a.parse().ok()?;
                        let of: usize = b.parse().ok()?;
                        (of >= 1 && shard < of).then_some((shard, of))
                    });
                    match parsed {
                        Some(pair) => opts.shard = Some(pair),
                        None => eprintln!("--shard needs i/n with i < n (e.g. 0/2); ignoring"),
                    }
                    if value.is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.seed);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <fig> [--smoke|--paper|--mega] [--json FILE] [--seed N] \
                         [--jobs N] [--workers N] [--calibrated-delays] [--resume] \
                         [--shard I/N] [--snapshot FILE] [--strike-at P1,P2,...] \
                         [--no-reclaim] [--timesteps N]{}{}",
                        if extra_flags.is_empty() { "" } else { " " },
                        extra_flags
                            .iter()
                            .map(|f| format!("[{f}]"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
            i += 1;
        }
        (opts, extra)
    }

    /// Write `rows` to the JSON file if one was requested.
    pub fn write_json<T: ToJson>(&self, rows: &T) {
        if let Some(path) = &self.json {
            std::fs::write(path, rows.to_json()).expect("writing JSON output");
            eprintln!("wrote {path}");
        }
    }

    /// Write a normalized perf-trajectory snapshot (`BENCH_<fig>.json`) if
    /// `--snapshot FILE` was given: the figure tag, scale tier and seed,
    /// plus the full result payload. The `trajectory` binary diffs two such
    /// snapshots, comparing every simulated quantity exactly and reporting
    /// `host_ms` drift informationally.
    pub fn write_snapshot<T: ToJson>(&self, fig: &str, payload: &T) {
        if let Some(path) = &self.snapshot {
            let mut out = String::from("{\"fig\":");
            fig.write_json(&mut out);
            out.push_str(",\"tier\":");
            self.scale().name().write_json(&mut out);
            out.push_str(",\"seed\":");
            self.seed.write_json(&mut out);
            out.push_str(",\"payload\":");
            payload.write_json(&mut out);
            out.push('}');
            std::fs::write(path, out).expect("writing snapshot");
            eprintln!("wrote {path}");
        }
    }
}

/// Construct a DIVA instance for a mesh experiment (default tuning: serial
/// driven backend, uniform link costs).
pub fn make_diva(side_rows: usize, side_cols: usize, strategy: StrategyKind, seed: u64) -> Diva {
    make_diva_tuned(side_rows, side_cols, strategy, seed, SimTuning::default())
}

/// [`make_diva`] with explicit per-simulation tuning knobs.
pub fn make_diva_tuned(
    side_rows: usize,
    side_cols: usize,
    strategy: StrategyKind,
    seed: u64,
    tuning: SimTuning,
) -> Diva {
    make_diva_on_tuned(
        AnyTopology::Mesh(Mesh::new(side_rows, side_cols)),
        strategy,
        seed,
        tuning,
    )
}

/// Construct a DIVA instance for an experiment on an arbitrary topology
/// (default tuning).
pub fn make_diva_on(topology: AnyTopology, strategy: StrategyKind, seed: u64) -> Diva {
    make_diva_on_tuned(topology, strategy, seed, SimTuning::default())
}

/// [`make_diva_on`] with explicit per-simulation tuning knobs.
pub fn make_diva_on_tuned(
    topology: AnyTopology,
    strategy: StrategyKind,
    seed: u64,
    tuning: SimTuning,
) -> Diva {
    let cfg = DivaConfig::on(topology, strategy)
        .with_seed(seed)
        .with_machine(MachineConfig::parsytec_gcel())
        .with_workers(tuning.workers)
        .with_calibrated_delays(tuning.calibrated_delays);
    Diva::new(cfg)
}

/// The access-tree shapes evaluated by the Barnes-Hut figures, in the order
/// the paper lists them.
pub fn barnes_hut_shapes() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::hex16()),
        ),
        (
            "4-16-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(4, 16)),
        ),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        (
            "2-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::binary()),
        ),
    ]
}

/// Ratio of two quantities as used throughout the paper's figures.
pub fn ratio(value: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        f64::NAN
    } else {
        value as f64 / baseline as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_baseline() {
        assert!(ratio(5, 0).is_nan());
        assert!((ratio(30, 10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn barnes_hut_shape_list_matches_the_paper() {
        let shapes = barnes_hut_shapes();
        assert_eq!(shapes.len(), 5);
        assert_eq!(shapes[0].0, "fixed home");
        assert_eq!(shapes[4].0, "2-ary access tree");
    }

    #[test]
    fn make_diva_uses_the_requested_strategy() {
        let d = make_diva(4, 4, StrategyKind::FixedHome, 1);
        assert_eq!(d.num_procs(), 16);
        assert_eq!(d.config().strategy, StrategyKind::FixedHome);
        assert_eq!(d.config().workers, 1);
        assert!(!d.config().calibrated_delays);
    }

    #[test]
    fn tuning_knobs_reach_the_diva_config() {
        let tuning = SimTuning {
            workers: 4,
            calibrated_delays: true,
        };
        let d = make_diva_tuned(4, 4, StrategyKind::FixedHome, 1, tuning);
        assert_eq!(d.config().workers, 4);
        assert!(d.config().calibrated_delays);
    }

    #[test]
    fn strike_axis_defaults_to_time_zero() {
        let mut opts = HarnessOpts::default();
        assert_eq!(opts.strikes(), vec![0]);
        opts.strike_at = vec![0, 25, 50, 75];
        assert_eq!(opts.strikes(), vec![0, 25, 50, 75]);
    }

    #[test]
    fn jobs_budget_respects_the_per_sim_worker_count() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut opts = HarnessOpts::default();
        assert_eq!(opts.workers(), 1);
        assert_eq!(opts.jobs(), cores);
        // Splitting the budget: workers eat into the default job count, but
        // never below one sweep worker.
        opts.workers = Some(4);
        assert_eq!(opts.workers(), 4);
        assert_eq!(opts.jobs(), (cores / 4).max(1));
        // An explicit --jobs always wins over the split.
        opts.jobs = Some(7);
        assert_eq!(opts.jobs(), 7);
    }
}
