//! Minimal fixed-width table rendering for the figure binaries.

/// A simple text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a virtual-time value (nanoseconds) as seconds with three decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2.50".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_row_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(secs(2_500_000_000), "2.500");
    }
}
