//! Bitonic-sorting experiments (Figures 6 and 7 and the arity comparison of
//! Section 3.2).
//!
//! Like `matmul_exp`, every sweep first *describes* its runs as executor
//! [`Job`]s (one per point × strategy, plus one baseline per point, each
//! owning its constructed [`Diva`](dm_diva::Diva)) and assembles the ratio
//! rows from the description-ordered results — byte-identical output for
//! every `--jobs` value, across `--resume`, and across shard/merge.

use crate::executor::Job;
use crate::{make_diva_tuned, ratio, HarnessOpts, Scale, SimTuning};
use dm_apps::bitonic::{run_hand_optimized_driven, run_shared_driven, BitonicParams};
use dm_diva::StrategyKind;
use dm_mesh::TreeShape;

/// One row of a bitonic-sorting figure.
#[derive(Debug, Clone)]
pub struct BitonicRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh side length (√P).
    pub mesh_side: usize,
    /// Keys per processor.
    pub keys_per_proc: usize,
    /// Congestion (bytes over the hottest link).
    pub congestion_bytes: u64,
    /// Execution time in virtual nanoseconds.
    pub exec_time_ns: u64,
    /// Congestion ratio vs the hand-optimized baseline.
    pub congestion_ratio: f64,
    /// Execution-time ratio vs the hand-optimized baseline.
    pub time_ratio: f64,
    /// Host wall-clock milliseconds this run took on its worker (JSON only —
    /// contention-skewed under high `--jobs`, excluded from goldens).
    pub host_ms: f64,
}

crate::impl_to_json!(BitonicRow {
    strategy,
    mesh_side,
    keys_per_proc,
    congestion_bytes,
    exec_time_ns,
    congestion_ratio,
    time_ratio,
    host_ms,
});

crate::impl_from_json!(BitonicRow {
    strategy,
    mesh_side,
    keys_per_proc,
    congestion_bytes,
    exec_time_ns,
    congestion_ratio,
    time_ratio,
    host_ms,
});

/// The strategies Figure 6/7 compare against the baseline (the paper plots
/// the fixed home and the 2-4-ary access tree).
pub fn figure_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
    ]
}

/// The arity comparison of the text of Section 3.2.
pub fn arity_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        (
            "2-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::binary()),
        ),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
    ]
}

/// Describe the runs of one (mesh, keys) point: baseline first, then one job
/// per strategy, ratios left as `NAN` placeholders for [`finish_points`].
fn point_jobs(
    mesh_side: usize,
    keys_per_proc: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
    tuning: SimTuning,
) -> Vec<Job<BitonicRow>> {
    let params = BitonicParams::new(keys_per_proc);
    // Cost grows with the processor count and the keys each holds; the
    // baseline exchanges the same keys without protocol traffic.
    let weight = (mesh_side * mesh_side) as u64 * keys_per_proc as u64;
    let mut jobs = Vec::with_capacity(strategies.len() + 1);
    let baseline_diva =
        make_diva_tuned(mesh_side, mesh_side, StrategyKind::FixedHome, seed, tuning);
    jobs.push(Job::new(weight / 2, move || {
        // All experiment points run under the event-driven backend.
        let out = run_hand_optimized_driven(baseline_diva, params);
        BitonicRow {
            strategy: "hand-optimized".to_string(),
            mesh_side,
            keys_per_proc,
            congestion_bytes: out.report.congestion_bytes(),
            exec_time_ns: out.report.total_time,
            congestion_ratio: 1.0,
            time_ratio: 1.0,
            host_ms: 0.0,
        }
    }));
    for (name, strategy) in strategies {
        let name = name.clone();
        let diva = make_diva_tuned(mesh_side, mesh_side, *strategy, seed, tuning);
        jobs.push(Job::new(weight, move || {
            let out = run_shared_driven(diva, params);
            BitonicRow {
                strategy: name,
                mesh_side,
                keys_per_proc,
                congestion_bytes: out.report.congestion_bytes(),
                exec_time_ns: out.report.total_time,
                congestion_ratio: f64::NAN,
                time_ratio: f64::NAN,
                host_ms: 0.0,
            }
        }));
    }
    jobs
}

/// Fill in the per-point ratios from the baseline row of each point group.
fn finish_points(rows: &mut [BitonicRow], group: usize) {
    for point in rows.chunks_mut(group) {
        let base_congestion = point[0].congestion_bytes;
        let base_time = point[0].exec_time_ns;
        for row in &mut point[1..] {
            row.congestion_ratio = ratio(row.congestion_bytes, base_congestion);
            row.time_ratio = ratio(row.exec_time_ns, base_time);
        }
    }
}

/// Run the bitonic sort for the given (mesh, keys) points through the
/// checkpointed sweep engine; rows come back in point order, baseline
/// first. `None` means the sweep is incomplete (shard run or cut-short
/// run); the sidecar holds the completed jobs.
pub fn sweep(
    points: &[(usize, usize)],
    strategies: &[(String, StrategyKind)],
    opts: &HarnessOpts,
    tag: &str,
) -> Option<Vec<BitonicRow>> {
    let jobs: Vec<Job<BitonicRow>> = points
        .iter()
        .flat_map(|&(side, keys)| point_jobs(side, keys, strategies, opts.seed, opts.tuning()))
        .collect();
    let results = crate::stream::run_sweep(opts, tag, jobs)?;
    let mut rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    finish_points(&mut rows, strategies.len() + 1);
    Some(rows)
}

/// Run one (mesh, keys) point serially (the executor with one worker).
pub fn run_point(
    mesh_side: usize,
    keys_per_proc: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
) -> Vec<BitonicRow> {
    let opts = HarnessOpts {
        seed,
        jobs: Some(1),
        ..HarnessOpts::default()
    };
    sweep(&[(mesh_side, keys_per_proc)], strategies, &opts, "")
        .expect("un-checkpointed sweep is always complete")
}

/// Figure 6: fixed mesh, keys-per-processor sweep.
pub fn figure6(opts: &HarnessOpts) -> Option<Vec<BitonicRow>> {
    let (mesh_side, keys): (usize, Vec<usize>) = match opts.scale() {
        Scale::Smoke => (4, vec![64, 256]),
        Scale::Default => (8, vec![256, 1024, 4096]),
        Scale::Paper => (16, vec![256, 1024, 4096, 16384]),
        Scale::Mega => (32, vec![1024, 4096]),
    };
    let points: Vec<(usize, usize)> = keys.into_iter().map(|k| (mesh_side, k)).collect();
    sweep(&points, &figure_strategies(), opts, "")
}

/// Figure 7: fixed keys per processor, network size sweep.
pub fn figure7(opts: &HarnessOpts) -> Option<Vec<BitonicRow>> {
    let (sides, keys): (Vec<usize>, usize) = match opts.scale() {
        Scale::Smoke => (vec![2, 4], 256),
        Scale::Default => (vec![4, 8, 16], 1024),
        Scale::Paper => (vec![4, 8, 16, 32], 4096),
        Scale::Mega => (vec![16, 32, 64], 1024),
    };
    let points: Vec<(usize, usize)> = sides.into_iter().map(|s| (s, keys)).collect();
    sweep(&points, &figure_strategies(), opts, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_point_reproduces_the_ordering_of_the_paper() {
        let rows = run_point(4, 256, &figure_strategies(), 11);
        let fh = rows.iter().find(|r| r.strategy == "fixed home").unwrap();
        let at = rows
            .iter()
            .find(|r| r.strategy.contains("2-4-ary"))
            .unwrap();
        // Both dynamic strategies pay a congestion factor over the baseline;
        // the access tree pays less than the fixed home.
        assert!(at.congestion_ratio >= 1.0);
        assert!(fh.congestion_ratio > at.congestion_ratio);
    }
}
