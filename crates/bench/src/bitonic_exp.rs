//! Bitonic-sorting experiments (Figures 6 and 7 and the arity comparison of
//! Section 3.2).

use crate::{make_diva, ratio, HarnessOpts, Scale};
use dm_apps::bitonic::{run_hand_optimized_driven, run_shared_driven, BitonicParams};
use dm_diva::StrategyKind;
use dm_mesh::TreeShape;

/// One row of a bitonic-sorting figure.
#[derive(Debug, Clone)]
pub struct BitonicRow {
    /// Strategy name.
    pub strategy: String,
    /// Mesh side length (√P).
    pub mesh_side: usize,
    /// Keys per processor.
    pub keys_per_proc: usize,
    /// Congestion (bytes over the hottest link).
    pub congestion_bytes: u64,
    /// Execution time in virtual nanoseconds.
    pub exec_time_ns: u64,
    /// Congestion ratio vs the hand-optimized baseline.
    pub congestion_ratio: f64,
    /// Execution-time ratio vs the hand-optimized baseline.
    pub time_ratio: f64,
}

crate::impl_to_json!(BitonicRow {
    strategy,
    mesh_side,
    keys_per_proc,
    congestion_bytes,
    exec_time_ns,
    congestion_ratio,
    time_ratio,
});

/// The strategies Figure 6/7 compare against the baseline (the paper plots
/// the fixed home and the 2-4-ary access tree).
pub fn figure_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        ("fixed home".to_string(), StrategyKind::FixedHome),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
    ]
}

/// The arity comparison of the text of Section 3.2.
pub fn arity_strategies() -> Vec<(String, StrategyKind)> {
    vec![
        (
            "2-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::binary()),
        ),
        (
            "2-4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
        ),
        (
            "4-ary access tree".to_string(),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
    ]
}

/// Run the bitonic sort for one (mesh, keys) point with the given strategies
/// plus the baseline.
pub fn run_point(
    mesh_side: usize,
    keys_per_proc: usize,
    strategies: &[(String, StrategyKind)],
    seed: u64,
) -> Vec<BitonicRow> {
    let params = BitonicParams::new(keys_per_proc);
    // All experiment points run under the event-driven backend.
    let baseline = run_hand_optimized_driven(
        make_diva(mesh_side, mesh_side, StrategyKind::FixedHome, seed),
        params,
    );
    let base_congestion = baseline.report.congestion_bytes();
    let base_time = baseline.report.total_time;
    let mut rows = vec![BitonicRow {
        strategy: "hand-optimized".to_string(),
        mesh_side,
        keys_per_proc,
        congestion_bytes: base_congestion,
        exec_time_ns: base_time,
        congestion_ratio: 1.0,
        time_ratio: 1.0,
    }];
    for (name, strategy) in strategies {
        let out = run_shared_driven(make_diva(mesh_side, mesh_side, *strategy, seed), params);
        rows.push(BitonicRow {
            strategy: name.clone(),
            mesh_side,
            keys_per_proc,
            congestion_bytes: out.report.congestion_bytes(),
            exec_time_ns: out.report.total_time,
            congestion_ratio: ratio(out.report.congestion_bytes(), base_congestion),
            time_ratio: ratio(out.report.total_time, base_time),
        });
    }
    rows
}

/// Figure 6: fixed mesh, keys-per-processor sweep.
pub fn figure6(opts: &HarnessOpts) -> Vec<BitonicRow> {
    let (mesh_side, keys): (usize, Vec<usize>) = match opts.scale() {
        Scale::Smoke => (4, vec![64, 256]),
        Scale::Default => (8, vec![256, 1024, 4096]),
        Scale::Paper => (16, vec![256, 1024, 4096, 16384]),
        Scale::Mega => (32, vec![1024, 4096]),
    };
    let strategies = figure_strategies();
    keys.into_iter()
        .flat_map(|k| run_point(mesh_side, k, &strategies, opts.seed))
        .collect()
}

/// Figure 7: fixed keys per processor, network size sweep.
pub fn figure7(opts: &HarnessOpts) -> Vec<BitonicRow> {
    let (sides, keys): (Vec<usize>, usize) = match opts.scale() {
        Scale::Smoke => (vec![2, 4], 256),
        Scale::Default => (vec![4, 8, 16], 1024),
        Scale::Paper => (vec![4, 8, 16, 32], 4096),
        Scale::Mega => (vec![16, 32, 64], 1024),
    };
    let strategies = figure_strategies();
    sides
        .into_iter()
        .flat_map(|s| run_point(s, keys, &strategies, opts.seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_point_reproduces_the_ordering_of_the_paper() {
        let rows = run_point(4, 256, &figure_strategies(), 11);
        let fh = rows.iter().find(|r| r.strategy == "fixed home").unwrap();
        let at = rows
            .iter()
            .find(|r| r.strategy.contains("2-4-ary"))
            .unwrap();
        // Both dynamic strategies pay a congestion factor over the baseline;
        // the access tree pays less than the fixed home.
        assert!(at.congestion_ratio >= 1.0);
        assert!(fh.congestion_ratio > at.congestion_ratio);
    }
}
