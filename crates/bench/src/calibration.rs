//! Governor calibration: fit the executor's heavy-job heuristics from the
//! `host_ms` sidecar data recorded in `BENCH_*.json` snapshots.
//!
//! The sweep executor's memory governor historically ran on two hard-coded
//! constants: a job counts as memory-heavy at a scheduling weight of
//! [`HEAVY_WEIGHT`] (1e9), and each heavy job is assumed to need
//! [`HEAVY_JOB_BYTES`] (4 GiB) of host memory. Both were calibrated *by hand* from a handful of
//! historical runs. But every `--snapshot` run records, for each sweep
//! point, the actual host milliseconds the point took and (for the
//! Barnes-Hut rows) its live-variable peak — exactly the data the constants
//! were eyeballed from. This module closes the loop:
//!
//! * [`fit_ms_per_weight`] — a weighted least-squares fit through the origin
//!   of `host_ms ≈ slope · weight` over `(scheduling weight, host_ms)`
//!   pairs. Through the origin because a zero-weight job costs nothing;
//!   weighted by the scheduling weight so the fit is anchored by the
//!   expensive points the governor actually cares about, not the sub-ms
//!   smoke points whose timings are mostly noise.
//! * [`snapshot_weight_pairs`] — reconstructs the `(weight, host_ms)` pairs
//!   from a `BENCH_*.json` snapshot by re-deriving each row's scheduling
//!   weight from its recorded parameters (the same formulas the sweep
//!   descriptions use).
//! * [`governor`] — the process-wide calibration: scans the working
//!   directory for `BENCH_*.json` snapshots once, fits, and derives the two
//!   governor thresholds. **Without snapshots (or with too few samples) the
//!   historical constants are used unchanged** — calibration is an
//!   adjustment, never a requirement.
//!
//! Calibration affects *scheduling only*. Every simulated quantity is
//! bit-identical whatever thresholds the governor runs with; what changes is
//! how many memory-heavy points the executor admits at once.

use crate::executor::{HEAVY_JOB_BYTES, HEAVY_WEIGHT};
use crate::json::{self, FromJson, JsonValue};
use std::path::Path;

/// Minimum number of usable `(weight, host_ms)` pairs before a fit replaces
/// the historical constants. Below this the slope is dominated by noise
/// (scheduling jitter, cache state) rather than workload cost.
pub const MIN_FIT_SAMPLES: usize = 8;

/// Host time a job at the heavy-weight threshold is expected to take. This
/// anchors the calibrated threshold to the historical one: under the shipped
/// snapshots' cost rate, a weight-1e9 point (the historical
/// [`HEAVY_WEIGHT`]) runs for minutes, and "runs for minutes" — i.e. holds
/// its working set live for minutes — is what being memory-heavy has always
/// meant operationally.
pub const HEAVY_HOST_MS: f64 = 240_000.0;

/// Live-variable peak the 4 GiB-per-job budget was originally sized for
/// (mega-scale Barnes-Hut points keep >600 000 live variables plus octree
/// scratch — see the executor docs). The calibrated byte budget scales the
/// 4 GiB proportionally to the peaks actually observed in the snapshots.
pub const CALIBRATION_PEAK_VARS: u64 = 600_000;

/// A fitted linear cost model `host_ms ≈ ms_per_weight · weight`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host milliseconds per unit of scheduling weight.
    pub ms_per_weight: f64,
    /// Number of pairs the fit used.
    pub samples: usize,
}

/// The memory governor's calibrated thresholds (see [`governor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorCalibration {
    /// Scheduling weight at which a job counts as memory-heavy.
    pub heavy_weight: u64,
    /// Assumed host-memory budget per heavy job, in bytes.
    pub heavy_job_bytes: u64,
}

impl Default for GovernorCalibration {
    /// The historical constants — what the governor runs with when no
    /// snapshot data is available.
    fn default() -> Self {
        GovernorCalibration {
            heavy_weight: HEAVY_WEIGHT,
            heavy_job_bytes: HEAVY_JOB_BYTES,
        }
    }
}

/// Weighted least-squares fit of `host_ms ≈ slope · weight` through the
/// origin. Pairs with a zero weight or a non-finite/non-positive `host_ms`
/// are ignored (placeholder rows, torn records). Returns `None` when fewer
/// than [`MIN_FIT_SAMPLES`] usable pairs remain or the slope degenerates.
pub fn fit_ms_per_weight(pairs: &[(u64, f64)]) -> Option<CostModel> {
    // Through-origin WLS with per-pair weight w: slope = Σ w·ms·w / Σ w·w²
    // reduces (with the pair's own weight as the fit weight) to
    // Σ w²·ms / Σ w³ — heavier points anchor the slope.
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut samples = 0usize;
    for &(w, ms) in pairs {
        if w == 0 || !ms.is_finite() || ms <= 0.0 {
            continue;
        }
        let w = w as f64;
        num += w * w * ms;
        den += w * w * w;
        samples += 1;
    }
    if samples < MIN_FIT_SAMPLES || den == 0.0 {
        return None;
    }
    let slope = num / den;
    if !slope.is_finite() || slope <= 0.0 {
        return None;
    }
    Some(CostModel {
        ms_per_weight: slope,
        samples,
    })
}

fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    u64::from_json(v.get(key)?).ok()
}

fn field_f64(v: &JsonValue, key: &str) -> Option<f64> {
    f64::from_json(v.get(key)?).ok()
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    match v.get(key)? {
        JsonValue::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Re-derive one snapshot row's scheduling weight from its recorded
/// parameters, using the same formulas the sweep descriptions use. Returns
/// `None` for row shapes without a known weight formula.
fn row_weight(row: &JsonValue, meta: &JsonValue) -> Option<u64> {
    // Barnes-Hut mesh rows (fig8–11, scale --bh): bodies × steps × nodes.
    if let (Some(mesh), Some(n_bodies)) = (row.get("mesh"), field_u64(row, "n_bodies")) {
        let (rows, cols) = <(usize, usize)>::from_json(mesh).ok()?;
        let steps = field_u64(meta, "timesteps").unwrap_or(1).max(1);
        return Some(n_bodies * steps * (rows * cols) as u64);
    }
    // Cross-topology rows (fig12/fig13): the workload picks the formula.
    if let (Some(workload), Some(nodes)) = (field_str(row, "workload"), field_u64(row, "nodes")) {
        return match workload {
            "uniform" => Some(field_u64(meta, "uniform_ops")? * nodes),
            "barnes-hut" => {
                let steps = field_u64(meta, "bh_timesteps").unwrap_or(1).max(1);
                Some(field_u64(meta, "bh_bodies")? * steps * nodes)
            }
            _ => None,
        };
    }
    // Matmul (fig3/fig4) and bitonic (fig6/fig7) rows: nodes × volume, the
    // hand-optimized baseline at half weight (as described).
    if let Some(side) = field_u64(row, "mesh_side") {
        let volume = field_u64(row, "block_ints").or_else(|| field_u64(row, "keys_per_proc"))?;
        let weight = side * side * volume;
        return Some(if field_str(row, "strategy") == Some("hand-optimized") {
            weight / 2
        } else {
            weight
        });
    }
    None
}

/// Extract the `(scheduling weight, host_ms)` pairs of one `BENCH_*.json`
/// snapshot (as written by `--snapshot`). Rows whose weight formula is
/// unknown, or whose `host_ms` is missing or zero, contribute nothing.
pub fn snapshot_weight_pairs(text: &str) -> Vec<(u64, f64)> {
    let Ok(v) = json::parse(text) else {
        return Vec::new();
    };
    let Some(payload) = v.get("payload") else {
        return Vec::new();
    };
    let empty = JsonValue::Obj(Vec::new());
    let meta = payload.get("meta").unwrap_or(&empty);
    let Some(rows) = payload.get("rows").and_then(|r| r.as_arr()) else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let ms = field_f64(row, "host_ms").filter(|ms| ms.is_finite() && *ms > 0.0)?;
            Some((row_weight(row, meta)?, ms))
        })
        .collect()
}

/// The maximum `live_vars_peak` across a snapshot's rows (Barnes-Hut rows
/// record it; other row shapes do not have one).
fn snapshot_peak_vars(text: &str) -> u64 {
    let Ok(v) = json::parse(text) else { return 0 };
    v.get("payload")
        .and_then(|p| p.get("rows"))
        .and_then(|r| r.as_arr())
        .map(|rows| {
            rows.iter()
                .filter_map(|row| field_u64(row, "live_vars_peak"))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Calibrate the governor from every `BENCH_*.json` snapshot in `dir`.
///
/// * The heavy-*weight* threshold becomes the weight whose fitted host cost
///   reaches [`HEAVY_HOST_MS`], clamped to within 10× of the historical
///   constant either way (a fit can adjust the threshold, not invert the
///   governor's meaning).
/// * The per-heavy-job *byte* budget scales the historical 4 GiB by the
///   ratio of the largest observed live-variable peak (extrapolated to the
///   heavy threshold linearly in weight) to the [`CALIBRATION_PEAK_VARS`]
///   the constant was sized for, clamped to `[1 GiB, 8 GiB]`.
///
/// Returns `None` (caller keeps the constants) when the directory has no
/// usable snapshots or the pooled pairs are too few to fit.
pub fn governor_from_dir(dir: &Path) -> Option<GovernorCalibration> {
    let mut pairs = Vec::new();
    let mut peak_vars = 0u64;
    let mut peak_weight = 0u64;
    let entries = std::fs::read_dir(dir).ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let snap = snapshot_weight_pairs(&text);
        if let Some(&(w, _)) = snap.iter().max_by_key(|(w, _)| *w) {
            let vars = snapshot_peak_vars(&text);
            if vars > 0 && w > peak_weight {
                (peak_vars, peak_weight) = (vars, w);
            }
        }
        pairs.extend(snap);
    }
    let model = fit_ms_per_weight(&pairs)?;
    let heavy_weight = ((HEAVY_HOST_MS / model.ms_per_weight) as u64)
        .clamp(HEAVY_WEIGHT / 10, HEAVY_WEIGHT.saturating_mul(10));
    let heavy_job_bytes = if peak_vars > 0 && peak_weight > 0 {
        // Linear-in-weight extrapolation of the observed peak to the heavy
        // threshold, then scale the 4 GiB budget by how that compares to
        // the 600k-var assumption it was sized for.
        let projected = peak_vars.saturating_mul(heavy_weight) / peak_weight;
        let scaled =
            (HEAVY_JOB_BYTES as f64 * projected as f64 / CALIBRATION_PEAK_VARS as f64) as u64;
        scaled.clamp(1 << 30, 8 << 30)
    } else {
        HEAVY_JOB_BYTES
    };
    Some(GovernorCalibration {
        heavy_weight,
        heavy_job_bytes,
    })
}

/// The process-wide governor calibration: [`governor_from_dir`] on the
/// working directory (where the figure binaries find the repo's shipped
/// `BENCH_*.json` snapshots), computed once; the historical constants when
/// no snapshot data is usable. Overridable for tests and reproducibility
/// with `DM_NO_CALIBRATION=1` (constants, unconditionally).
pub fn governor() -> GovernorCalibration {
    static CAL: std::sync::OnceLock<GovernorCalibration> = std::sync::OnceLock::new();
    *CAL.get_or_init(|| {
        if std::env::var_os("DM_NO_CALIBRATION").is_some() {
            return GovernorCalibration::default();
        }
        governor_from_dir(Path::new(".")).unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_an_exact_slope() {
        // ms = 2e-4 · weight, exactly — the fit must return it exactly.
        let pairs: Vec<(u64, f64)> = (1..=10u64).map(|i| (i * 1_000, i as f64 * 0.2)).collect();
        let model = fit_ms_per_weight(&pairs).expect("enough samples");
        assert_eq!(model.samples, 10);
        assert!((model.ms_per_weight - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn fit_is_anchored_by_heavy_points() {
        // Nine consistent heavy points and one wildly-off tiny point: the
        // weighted fit must stay within a few percent of the heavy slope.
        let mut pairs: Vec<(u64, f64)> = (1..=9u64)
            .map(|i| (i * 1_000_000, i as f64 * 100.0))
            .collect();
        pairs.push((10, 50.0)); // 50 ms for weight 10: pure noise
        let model = fit_ms_per_weight(&pairs).expect("enough samples");
        assert!((model.ms_per_weight - 1e-4).abs() / 1e-4 < 0.05);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_ms_per_weight(&[]).is_none());
        // Too few usable samples.
        let few: Vec<(u64, f64)> = (1..MIN_FIT_SAMPLES as u64).map(|i| (i, i as f64)).collect();
        assert!(fit_ms_per_weight(&few).is_none());
        // Zero weights and non-positive/non-finite times never count.
        let junk: Vec<(u64, f64)> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    (0, 1.0)
                } else {
                    (1_000, [0.0, -1.0, f64::NAN][i % 3])
                }
            })
            .collect();
        assert!(fit_ms_per_weight(&junk).is_none());
    }

    /// A miniature fig8-shaped snapshot: two strategies at one body count.
    const FIG8_SNAPSHOT: &str = r#"{"fig":"fig8","tier":"default","seed":24301,
      "payload":{"meta":{"scale":"default","timesteps":3,"warmup_steps":1,
        "theta":0.5,"seed":24301,"reclaim":true},
      "rows":[
        {"strategy":"fixed home","mesh":[16,16],"n_bodies":2000,
         "live_vars_peak":3258,"host_ms":365.5},
        {"strategy":"4-ary access tree","mesh":[16,16],"n_bodies":2000,
         "live_vars_peak":3258,"host_ms":420.25}
      ]}}"#;

    #[test]
    fn snapshot_pairs_rederive_the_sweep_weights() {
        let pairs = snapshot_weight_pairs(FIG8_SNAPSHOT);
        // weight = bodies × steps × nodes = 2000 · 3 · 256.
        assert_eq!(pairs, vec![(1_536_000, 365.5), (1_536_000, 420.25)]);
        assert_eq!(snapshot_peak_vars(FIG8_SNAPSHOT), 3258);
    }

    #[test]
    fn snapshot_pairs_handle_topology_and_volume_rows() {
        let topo = r#"{"fig":"fig12","payload":{
          "meta":{"uniform_ops":64,"bh_bodies":2000,"bh_timesteps":2},
          "rows":[
            {"workload":"uniform","nodes":64,"host_ms":6.2},
            {"workload":"barnes-hut","nodes":64,"host_ms":1200.0},
            {"workload":"uniform","nodes":64,"host_ms":0.0}
          ]}}"#;
        assert_eq!(
            snapshot_weight_pairs(topo),
            vec![(64 * 64, 6.2), (2000 * 2 * 64, 1200.0)]
        );
        let volume = r#"{"fig":"fig3","payload":{"meta":{},
          "rows":[
            {"strategy":"hand-optimized","mesh_side":8,"block_ints":256,"host_ms":10.0},
            {"strategy":"fixed home","mesh_side":8,"block_ints":256,"host_ms":30.0}
          ]}}"#;
        assert_eq!(
            snapshot_weight_pairs(volume),
            vec![(8 * 8 * 256 / 2, 10.0), (8 * 8 * 256, 30.0)]
        );
        // Garbage and shape-less snapshots contribute nothing.
        assert!(snapshot_weight_pairs("not json").is_empty());
        assert!(snapshot_weight_pairs(r#"{"payload":{"rows":[{"host_ms":5.0}]}}"#).is_empty());
    }

    #[test]
    fn governor_calibrates_from_a_snapshot_dir_and_falls_back_without_one() {
        let dir = std::env::temp_dir().join(format!("dm-cal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Empty dir: no fit, caller keeps the constants.
        assert_eq!(governor_from_dir(&dir), None);
        // A snapshot with enough consistent samples: ms = 1e-3 · weight, so
        // the HEAVY_HOST_MS budget is reached at weight 2.4e8 — a *lower*
        // heavy threshold than the 1e9 constant (this host is slower than
        // the calibration machine was).
        let mut rows = String::new();
        for i in 1..=10u64 {
            if i > 1 {
                rows.push(',');
            }
            let bodies = i * 1000;
            // weight = bodies · 1 step · 4 nodes; host_ms = 1e-3 · weight.
            rows.push_str(&format!(
                r#"{{"mesh":[2,2],"n_bodies":{bodies},"live_vars_peak":{bodies},"host_ms":{}}}"#,
                (bodies * 4) as f64 * 1e-3
            ));
        }
        let snap =
            format!(r#"{{"fig":"fig8","payload":{{"meta":{{"timesteps":1}},"rows":[{rows}]}}}}"#);
        std::fs::write(dir.join("BENCH_fig8.json"), &snap).unwrap();
        // Non-snapshot files are ignored.
        std::fs::write(dir.join("notes.txt"), "not a snapshot").unwrap();
        let cal = governor_from_dir(&dir).expect("fit succeeds");
        assert_eq!(cal.heavy_weight, (HEAVY_HOST_MS / 1e-3) as u64);
        // Peak vars (10 000 at weight 40 000) extrapolate to 60e6 vars at
        // the threshold — above the 600k assumption, so the byte budget
        // hits its 8 GiB clamp.
        assert_eq!(cal.heavy_job_bytes, 8 << 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn process_wide_governor_is_always_usable() {
        let cal = governor();
        assert!(cal.heavy_weight >= HEAVY_WEIGHT / 10);
        assert!(cal.heavy_job_bytes >= 1 << 30);
    }
}
