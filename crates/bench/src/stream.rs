//! The resumable, shardable sweep engine: streaming JSONL checkpoints over
//! the parallel executor.
//!
//! Mega sweeps run 40 minutes to hours. Before this module the executor
//! buffered every result in memory and emitted one table at the end — a
//! crash lost the whole run, and one machine was the ceiling. [`run_sweep`]
//! closes both gaps without touching the determinism contract:
//!
//! * **Streaming** — every completed [`Job`] is appended to an append-only
//!   JSONL *sidecar* (`<json>.partial.jsonl`, one self-describing record per
//!   job, fsync'd per record) the moment it finishes, via the executor's
//!   completion sink. Killing the process loses at most the in-flight jobs.
//! * **Resume** (`--resume`) — on startup the sidecar is read back, records
//!   for already-completed job IDs are restored (tolerating a torn final
//!   line from the crash itself), and only the missing jobs execute. The
//!   reassembled results are in description order, so tables and JSON come
//!   out **byte-identical** to an uninterrupted run (modulo the per-job
//!   `host_ms` wall-clock sidecar field) — gated by the
//!   `resume_determinism` integration test, exactly like the `--jobs`
//!   invariance gate of PR 4.
//! * **Sharding** (`--shard i/n`) — the deterministic description-order job
//!   list is partitioned by `job_id % n == i`; each shard writes its own
//!   sidecar (`<json>.shard<i>of<n>.partial.jsonl`) and exits without
//!   rendering. The `merge` binary stitches shard sidecars back into the
//!   canonical one; a final `--resume` run (all records present, zero jobs
//!   executed) renders the canonical table and JSON. Shards can run on
//!   different machines — the job list is a pure function of the binary,
//!   tier and seed.
//!
//! The sidecar format is line-oriented so a reader never needs the whole
//! file in memory and a half-written record can only ever be the last line:
//!
//! ```text
//! {"sweep":"","scale":"default","seed":24301,"total_jobs":15,"shard":null}
//! {"job":3,"host_ms":812.4,"value":{...row...}}
//! {"job":0,"host_ms":911.0,"value":{...row...}}
//! ```
//!
//! The header pins what the records mean; resuming with a different tier,
//! seed or sweep shape is refused instead of silently mixing incompatible
//! points.

use crate::executor::{run_jobs_streamed, Job, JobResult};
use crate::json::{self, FromJson, JsonValue, ToJson};
use crate::HarnessOpts;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable that aborts a sweep after N newly executed jobs
/// (checkpoint records are written and the process exits without rendering,
/// exactly as if it had been killed between two fsyncs). This is the
/// deterministic crash-injection hook of the `resume_determinism` test; it
/// is read per sweep, so a multi-sweep binary (`scale`) applies it to each.
pub const KILL_AFTER_ENV: &str = "DM_SWEEP_KILL_AFTER";

/// The first line of every sidecar: what sweep the records belong to.
/// Resume refuses a sidecar whose header does not match the current
/// invocation — a checkpoint from a different tier, seed or sweep shape
/// must never be silently mixed into a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidecarHeader {
    /// Sweep tag within the binary (empty for single-sweep binaries; the
    /// `scale` binary distinguishes `matmul`/`bitonic`/`bh`).
    pub sweep: String,
    /// Scale tier name.
    pub scale: String,
    /// Sweep seed.
    pub seed: u64,
    /// Total number of jobs in the full (unsharded) description.
    pub total_jobs: usize,
    /// The shard this sidecar belongs to, `None` for the canonical file.
    pub shard: Option<(usize, usize)>,
}

impl ToJson for SidecarHeader {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"sweep\":");
        self.sweep.write_json(out);
        out.push_str(",\"scale\":");
        self.scale.write_json(out);
        out.push_str(",\"seed\":");
        self.seed.write_json(out);
        out.push_str(",\"total_jobs\":");
        self.total_jobs.write_json(out);
        out.push_str(",\"shard\":");
        match self.shard {
            Some(pair) => pair.write_json(out),
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

impl FromJson for SidecarHeader {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let shard = match v.get("shard") {
            Some(JsonValue::Null) | None => None,
            Some(pair) => Some(<(usize, usize)>::from_json(pair)?),
        };
        Ok(SidecarHeader {
            sweep: json::field(v, "sweep")?,
            scale: json::field(v, "scale")?,
            seed: json::field(v, "seed")?,
            total_jobs: json::field(v, "total_jobs")?,
            shard,
        })
    }
}

/// The canonical sidecar path for a figure's `--json` output path and sweep
/// tag: `<json>.partial.jsonl`, with the tag infixed for multi-sweep
/// binaries (`<json>.matmul.partial.jsonl`) and the shard infixed for shard
/// runs (`<json>.shard0of2.partial.jsonl`).
pub fn sidecar_path(json_path: &str, tag: &str, shard: Option<(usize, usize)>) -> PathBuf {
    let mut name = String::from(json_path);
    if !tag.is_empty() {
        name.push('.');
        name.push_str(tag);
    }
    if let Some((i, n)) = shard {
        name.push_str(&format!(".shard{i}of{n}"));
    }
    name.push_str(".partial.jsonl");
    PathBuf::from(name)
}

/// Append-only sidecar writer. Every record is written as one line and
/// fsync'd (`sync_data`) before `append` returns, so a completed job
/// survives any subsequent crash — the page cache is not trusted with
/// 40 minutes of simulation.
pub struct SidecarWriter {
    file: File,
}

impl SidecarWriter {
    /// Start a fresh sidecar (truncating any stale one) and persist the
    /// header line.
    pub fn create(path: &Path, header: &SidecarHeader) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(header.to_json().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(SidecarWriter { file })
    }

    /// Open an existing sidecar for appending (the resume path). The header
    /// must already have been validated by [`read_sidecar`].
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(SidecarWriter { file })
    }

    /// Persist one completed job: a self-describing single-line record,
    /// fsync'd before returning.
    pub fn append<T: ToJson>(
        &mut self,
        job_id: usize,
        result: &JobResult<T>,
    ) -> std::io::Result<()> {
        let mut line = String::from("{\"job\":");
        job_id.write_json(&mut line);
        line.push_str(",\"host_ms\":");
        result.host_ms.write_json(&mut line);
        line.push_str(",\"value\":");
        result.value.write_json(&mut line);
        line.push_str("}\n");
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Read a sidecar without interpreting the row payloads: the header plus
/// `(job_id, raw record line)` pairs. A record line that fails to parse is
/// tolerated **only** as the final line (the torn write of the crash the
/// sidecar exists to survive); corruption anywhere else is an error.
pub fn read_sidecar_lines(path: &Path) -> Result<(SidecarHeader, Vec<(usize, String)>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or_else(|| format!("{path:?} is empty"))?;
    let header = json::parse(header_line)
        .and_then(|v| SidecarHeader::from_json(&v))
        .map_err(|e| format!("{path:?} header: {e}"))?;
    let mut records = Vec::new();
    let body: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
    for (idx, line) in body.iter().enumerate() {
        let parsed = json::parse(line).and_then(|v| {
            let job: usize = json::field(&v, "job")?;
            Ok((job, v))
        });
        match parsed {
            Ok((job, _)) => {
                if job >= header.total_jobs {
                    return Err(format!(
                        "{path:?}: record for job {job} outside the sweep's {} jobs — \
                         sidecar does not belong to this sweep",
                        header.total_jobs
                    ));
                }
                records.push((job, (*line).to_string()));
            }
            Err(e) if idx + 1 == body.len() => {
                // Torn tail from the crash: the record was not fully
                // written, so the job simply counts as not completed.
                eprintln!("note: ignoring torn final record in {path:?} ({e})");
            }
            Err(e) => return Err(format!("{path:?} record {}: {e}", idx + 1)),
        }
    }
    Ok((header, records))
}

/// Read a sidecar's completed jobs as typed results, keyed by job ID.
/// Duplicate records for a job (possible after a crash-during-merge) keep
/// the last occurrence — every record for a job ID holds an identical
/// simulated payload by the determinism contract.
pub fn read_sidecar<T: FromJson>(
    path: &Path,
) -> Result<(SidecarHeader, BTreeMap<usize, JobResult<T>>), String> {
    let (header, lines) = read_sidecar_lines(path)?;
    let mut done = BTreeMap::new();
    for (job, line) in lines {
        let v = json::parse(&line).map_err(|e| format!("{path:?} job {job}: {e}"))?;
        let host_ms: f64 =
            json::field(&v, "host_ms").map_err(|e| format!("{path:?} job {job}: {e}"))?;
        let value = v
            .get("value")
            .ok_or_else(|| format!("{path:?} job {job}: missing value"))
            .and_then(|value| {
                T::from_json(value).map_err(|e| format!("{path:?} job {job}: {e}"))
            })?;
        done.insert(job, JobResult { value, host_ms });
    }
    Ok((header, done))
}

fn operator_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Run a described sweep through the checkpointed executor.
///
/// Without `--json` this is exactly [`crate::executor::run_jobs`] (nothing
/// to name a sidecar after — `--resume`/`--shard` are refused). With
/// `--json <out>`:
///
/// 1. the sidecar path is derived from `<out>`, the sweep `tag` and the
///    shard (see [`sidecar_path`]);
/// 2. `--resume` restores completed jobs from the sidecar (validating its
///    header against the current sweep) and appends to it; a fresh run
///    truncates it;
/// 3. the jobs not yet completed — restricted to `job_id % n == i` under
///    `--shard i/n` — execute on the parallel executor, each completion
///    streamed to the sidecar with a per-record fsync;
/// 4. if every job of the full sweep is now accounted for, the results are
///    returned in description order (byte-identical assembly); otherwise
///    (a shard run, or a sweep cut short by [`KILL_AFTER_ENV`]) a progress
///    note goes to stderr and `None` is returned — the caller skips
///    rendering, and a later `--resume` or `merge` finishes the job.
pub fn run_sweep<T>(opts: &HarnessOpts, tag: &str, jobs: Vec<Job<T>>) -> Option<Vec<JobResult<T>>>
where
    T: Send + ToJson + FromJson,
{
    let total = jobs.len();
    let Some(json_path) = &opts.json else {
        if opts.shard.is_some() {
            operator_error("--shard requires --json (shard sidecars are named after it)");
        }
        if opts.resume {
            operator_error("--resume requires --json (the checkpoint sidecar is named after it)");
        }
        return Some(crate::executor::run_jobs(opts.jobs(), jobs));
    };
    if let Some((i, n)) = opts.shard {
        if n == 0 || i >= n {
            operator_error(&format!(
                "--shard {i}/{n}: the index must satisfy i < n, n >= 1"
            ));
        }
    }

    let path = sidecar_path(json_path, tag, opts.shard);
    let header = SidecarHeader {
        sweep: tag.to_string(),
        scale: opts.scale().name().to_string(),
        seed: opts.seed,
        total_jobs: total,
        shard: opts.shard,
    };

    // Restore completed jobs when resuming.
    let mut done: BTreeMap<usize, JobResult<T>> = BTreeMap::new();
    let mut writer = if opts.resume && path.exists() {
        match read_sidecar::<T>(&path) {
            Ok((old, records)) => {
                if old != header {
                    operator_error(&format!(
                        "refusing to resume from {path:?}: its header {} does not match this \
                         invocation {} — different tier, seed, shard or sweep shape",
                        old.to_json(),
                        header.to_json()
                    ));
                }
                done = records;
                SidecarWriter::append_to(&path)
                    .unwrap_or_else(|e| operator_error(&format!("opening {path:?}: {e}")))
            }
            Err(e) => operator_error(&e),
        }
    } else {
        SidecarWriter::create(&path, &header)
            .unwrap_or_else(|e| operator_error(&format!("creating {path:?}: {e}")))
    };
    let restored = done.len();

    // The jobs still missing, restricted to this shard's residue class.
    let (ids, to_run): (Vec<usize>, Vec<Job<T>>) = jobs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !done.contains_key(i))
        .filter(|(i, _)| opts.shard.is_none_or(|(s, n)| i % n == s))
        .unzip();

    let kill_after = std::env::var(KILL_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let sink_ids = ids.clone();
    let results = run_jobs_streamed(
        opts.jobs(),
        to_run,
        Some(Box::new(move |k: usize, r: &JobResult<T>| {
            writer
                .append(sink_ids[k], r)
                .unwrap_or_else(|e| panic!("writing sweep checkpoint: {e}"));
        })),
        kill_after,
    );
    for (k, result) in results.into_iter().enumerate() {
        if let Some(r) = result {
            done.insert(ids[k], r);
        }
    }

    if done.len() == total {
        if restored > 0 {
            eprintln!(
                "resumed {restored}/{total} jobs from {}; executed {}",
                path.display(),
                total - restored
            );
        }
        // BTreeMap iteration is key order == description order.
        Some(done.into_values().collect())
    } else {
        eprintln!(
            "checkpoint: {}/{} jobs complete in {} — rerun with --resume (or merge shards) \
             to finish and render",
            done.len(),
            total,
            path.display()
        );
        None
    }
}

/// Attach each job's host wall-clock to its row via the given setter and
/// return the rows — the common tail of every sweep assembler.
pub fn rows_with_host_ms<T>(results: Vec<JobResult<T>>, set: impl Fn(&mut T, f64)) -> Vec<T> {
    results
        .into_iter()
        .map(|r| {
            let mut row = r.value;
            set(&mut row, r.host_ms);
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Job;

    fn opts_with_json(path: &Path) -> HarnessOpts {
        HarnessOpts {
            json: Some(path.to_string_lossy().into_owned()),
            jobs: Some(1),
            smoke: true,
            ..HarnessOpts::default()
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dm_bench_stream_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn jobs(n: usize) -> Vec<Job<u64>> {
        (0..n).map(|i| Job::new(1, move || i as u64 * 10)).collect()
    }

    #[test]
    fn fresh_run_writes_a_complete_sidecar_and_returns_ordered_results() {
        let json = tmp("fresh.json");
        let opts = opts_with_json(&json);
        let out = run_sweep(&opts, "", jobs(5)).expect("complete run");
        assert_eq!(
            out.iter().map(|r| r.value).collect::<Vec<_>>(),
            vec![0, 10, 20, 30, 40]
        );
        let side = sidecar_path(opts.json.as_ref().unwrap(), "", None);
        let (header, records) = read_sidecar::<u64>(&side).unwrap();
        assert_eq!(header.total_jobs, 5);
        assert_eq!(header.shard, None);
        assert_eq!(records.len(), 5);
        assert_eq!(records[&3].value, 30);
    }

    #[test]
    fn resume_skips_restored_jobs_and_completes() {
        let json = tmp("resume.json");
        let mut opts = opts_with_json(&json);
        // Simulate a crash: only 2 of 6 jobs checkpointed.
        let side = sidecar_path(opts.json.as_ref().unwrap(), "", None);
        let header = SidecarHeader {
            sweep: "".into(),
            scale: "smoke".into(),
            seed: opts.seed,
            total_jobs: 6,
            shard: None,
        };
        let mut w = SidecarWriter::create(&side, &header).unwrap();
        w.append(
            1,
            &JobResult {
                value: 10u64,
                host_ms: 1.0,
            },
        )
        .unwrap();
        w.append(
            4,
            &JobResult {
                value: 40u64,
                host_ms: 1.0,
            },
        )
        .unwrap();
        drop(w);
        opts.resume = true;
        // Jobs that would panic if re-executed prove the restore is real.
        let jobs: Vec<Job<u64>> = (0..6)
            .map(|i| {
                Job::new(1, move || {
                    assert!(i != 1 && i != 4, "restored job {i} re-executed");
                    i as u64 * 10
                })
            })
            .collect();
        let out = run_sweep(&opts, "", jobs).expect("complete after resume");
        assert_eq!(
            out.iter().map(|r| r.value).collect::<Vec<_>>(),
            vec![0, 10, 20, 30, 40, 50]
        );
        // The sidecar now holds all six records.
        let (_, records) = read_sidecar::<u64>(&side).unwrap();
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn torn_final_record_is_dropped_not_fatal() {
        let json = tmp("torn.json");
        let opts = opts_with_json(&json);
        let side = sidecar_path(opts.json.as_ref().unwrap(), "", None);
        let header = SidecarHeader {
            sweep: "".into(),
            scale: "smoke".into(),
            seed: opts.seed,
            total_jobs: 3,
            shard: None,
        };
        let mut w = SidecarWriter::create(&side, &header).unwrap();
        w.append(
            0,
            &JobResult {
                value: 0u64,
                host_ms: 1.0,
            },
        )
        .unwrap();
        drop(w);
        // A torn write: the crash landed mid-record.
        let mut f = OpenOptions::new().append(true).open(&side).unwrap();
        f.write_all(b"{\"job\":2,\"host_ms\":1.0,\"val").unwrap();
        drop(f);
        let (_, records) = read_sidecar::<u64>(&side).unwrap();
        assert_eq!(records.len(), 1, "torn record must not count as completed");
        // But corruption *before* the tail is a hard error.
        let text = std::fs::read_to_string(&side).unwrap();
        let corrupted = text.replacen("{\"job\":0", "{\"jo", 1);
        std::fs::write(&side, corrupted).unwrap();
        assert!(read_sidecar::<u64>(&side).is_err());
    }

    #[test]
    fn shard_runs_cover_exactly_their_residue_class() {
        let json = tmp("shard.json");
        let mut opts = opts_with_json(&json);
        opts.shard = Some((1, 2));
        assert!(
            run_sweep(&opts, "", jobs(5)).is_none(),
            "a shard run must not render"
        );
        let side = sidecar_path(opts.json.as_ref().unwrap(), "", Some((1, 2)));
        let (header, records) = read_sidecar::<u64>(&side).unwrap();
        assert_eq!(header.shard, Some((1, 2)));
        assert_eq!(records.keys().copied().collect::<Vec<_>>(), vec![1, 3]);
        // The complementary shard plus this one covers everything; after a
        // merge (simulated by writing the canonical sidecar) a resume run
        // executes nothing and renders.
        opts.shard = Some((0, 2));
        assert!(run_sweep(&opts, "", jobs(5)).is_none());
        let side0 = sidecar_path(opts.json.as_ref().unwrap(), "", Some((0, 2)));
        let (_, r0) = read_sidecar::<u64>(&side0).unwrap();
        assert_eq!(r0.keys().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn sidecar_paths_encode_tag_and_shard() {
        assert_eq!(
            sidecar_path("out.json", "", None),
            PathBuf::from("out.json.partial.jsonl")
        );
        assert_eq!(
            sidecar_path("out.json", "matmul", None),
            PathBuf::from("out.json.matmul.partial.jsonl")
        );
        assert_eq!(
            sidecar_path("out.json", "", Some((0, 2))),
            PathBuf::from("out.json.shard0of2.partial.jsonl")
        );
        assert_eq!(
            sidecar_path("out.json", "bh", Some((2, 3))),
            PathBuf::from("out.json.bh.shard2of3.partial.jsonl")
        );
    }

    #[test]
    fn headers_round_trip_with_and_without_shard() {
        for shard in [None, Some((3, 8))] {
            let h = SidecarHeader {
                sweep: "bh".into(),
                scale: "mega".into(),
                seed: 42,
                total_jobs: 100,
                shard,
            };
            let back = SidecarHeader::from_json(&json::parse(&h.to_json()).unwrap()).unwrap();
            assert_eq!(back, h);
        }
    }
}
