//! A tiny self-contained micro-benchmark harness.
//!
//! The workspace builds offline and therefore cannot depend on `criterion`;
//! the bench targets under `benches/` are plain `harness = false` binaries
//! built on this module instead. Each benchmark runs a closure repeatedly,
//! reports the median wall-clock time per iteration, and returns it so
//! benches can compute ratios (e.g. threaded vs driven runtime).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measured result of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall-clock time of one iteration.
    pub median: Duration,
    /// Minimum observed iteration time.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: usize,
}

impl Measurement {
    /// Median time in seconds.
    pub fn secs(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// Run `f` once as warm-up and then `iters` measured times, printing and
/// returning the median iteration time. The closure's result is passed
/// through [`black_box`] so the compiler cannot elide the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, iters: usize, mut f: F) -> Measurement {
    assert!(iters > 0);
    black_box(f());
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let m = Measurement {
        median: samples[samples.len() / 2],
        min: samples[0],
        iters,
    };
    println!(
        "{name:<55} median {:>12.3?}  min {:>12.3?}  ({iters} iters)",
        m.median, m.min
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_returns() {
        let mut calls = 0u32;
        let m = bench("noop", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(m.iters, 5);
        assert_eq!(calls, 6); // warm-up + 5 measured
        assert!(m.min <= m.median);
    }
}
