//! The KV serving-tier experiment (Figure 14, beyond the paper).
//!
//! The paper proves the access-tree strategy competitive for *arbitrary*
//! access patterns; this sweep confronts it with the traffic a production
//! replication tier actually serves. All five strategies of the Barnes-Hut
//! figures run across the four topologies at matched node counts, under four
//! request workloads ([`dm_apps::kv`]) —
//!
//! * **uniform** — every key equally popular (the fig12 baseline shape);
//! * **zipf-0.9** / **zipf-1.2** — Zipf-skewed popularity below and above
//!   the classical web-caching exponent of 1;
//! * **hotspot** — 90% of the traffic on a `keys/16` window that migrates
//!   across the key space at `--strike-at`-style percent boundaries of the
//!   op stream (default `25,50,75`);
//!
//! each with client churn **off** and **on**. Churn composes both halves of
//! the machinery: seeded arrive/depart idle sessions at the application
//! level ([`dm_apps::workload::churn_gaps`]) plus a transient
//! link-degradation window from the PR 9 fault plans — the run completes
//! (no node loss), so rows stay directly comparable across the axis.
//!
//! Rows report the serving metrics of the replication literature
//! ([`dm_diva::ServingReport`]): local-hit ratio, bytes moved, response-time
//! p50/p99 (log2-bucket lower bounds) and the replication-degree high-water
//! mark. Every (topology, workload, churn, strategy) point is an independent
//! executor [`Job`], so `--jobs N` parallelises the sweep with
//! byte-identical tables and JSON for every `N`, and `--shard`/`--resume`/
//! `merge` work exactly as for fig12/fig13.

use crate::executor::Job;
use crate::fault_exp::make_faulty_diva;
use crate::topo_exp::topologies_at;
use crate::{barnes_hut_shapes, HarnessOpts, Scale, SimTuning};
use dm_apps::kv::{run_kv_driven, ChurnParams, KeyDist, KvParams};
use dm_diva::{FaultPlan, StrategyKind};
use dm_mesh::AnyTopology;

/// Measurements of one (topology, workload, churn, strategy) point. All
/// fields except `host_ms` are simulated quantities and byte-identical
/// across `--jobs`, `--workers`, debug/release and resumed runs.
#[derive(Debug, Clone)]
pub struct KvRow {
    /// Topology name (`mesh 8x8`, `torus 8x8`, `hypercube-6`, `fat-tree-64`).
    pub topology: String,
    /// Workload label (`uniform`, `zipf-0.9`, `zipf-1.2`, `hotspot`).
    pub workload: String,
    /// Churn axis (`off` or `on`).
    pub churn: String,
    /// Strategy name.
    pub strategy: String,
    /// Matched processor count.
    pub nodes: usize,
    /// Client requests served (fast-path hits included).
    pub requests: u64,
    /// Requests served from a processor-local copy.
    pub local_hits: u64,
    /// Bytes of data-management protocol traffic ("bytes moved").
    pub bytes_moved: u64,
    /// Response-time median: lower bound of its log2 bucket, in ns.
    pub p50_ns: u64,
    /// Response-time 99th percentile: lower bound of its log2 bucket, in ns.
    pub p99_ns: u64,
    /// Replication-degree high-water mark (peak copies of any one key).
    pub repl_high_water: u64,
    /// Execution time of the run in ns.
    pub exec_time_ns: u64,
    /// Host wall-clock milliseconds of this point (JSON sidecar only).
    pub host_ms: f64,
}

crate::impl_to_json!(KvRow {
    topology,
    workload,
    churn,
    strategy,
    nodes,
    requests,
    local_hits,
    bytes_moved,
    p50_ns,
    p99_ns,
    repl_high_water,
    exec_time_ns,
    host_ms,
});

crate::impl_from_json!(KvRow {
    topology,
    workload,
    churn,
    strategy,
    nodes,
    requests,
    local_hits,
    bytes_moved,
    p50_ns,
    p99_ns,
    repl_high_water,
    exec_time_ns,
    host_ms,
});

impl KvRow {
    /// The local-hit ratio as a percentage (derived from the exact integer
    /// tallies; rendered with one decimal in the table).
    pub fn hit_percent(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.local_hits as f64 * 100.0 / self.requests as f64
        }
    }
}

/// Shared parameters of a KV serving sweep.
#[derive(Debug, Clone)]
pub struct KvMeta {
    /// Scale tier name.
    pub scale: String,
    /// Matched node count.
    pub nodes: usize,
    /// Keys in the shared key space.
    pub n_keys: usize,
    /// Requests per client.
    pub ops_per_client: usize,
    /// Write percentage of the request mix.
    pub write_percent: u64,
    /// Value size in bytes.
    pub val_bytes: u64,
    /// Hotspot migration points in percent of the op stream.
    pub migrate_at: Vec<u64>,
    /// Churn: sessions per client on the churn-on axis.
    pub churn_sessions: u64,
    /// Churn: nominal idle gap between sessions, µs.
    pub churn_idle_us: u64,
    /// Seed of the sweep.
    pub seed: u64,
}

crate::impl_to_json!(KvMeta {
    scale,
    nodes,
    n_keys,
    ops_per_client,
    write_percent,
    val_bytes,
    migrate_at,
    churn_sessions,
    churn_idle_us,
    seed,
});

/// A KV serving sweep: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct KvSweep {
    /// The sweep's shared parameters.
    pub meta: KvMeta,
    /// One row per (topology, workload, churn, strategy) point.
    pub rows: Vec<KvRow>,
}

crate::impl_to_json!(KvSweep { meta, rows });

/// Churn-on configuration: sessions per client, idle gap, and the transient
/// link-degradation window composed from the fault machinery (fraction,
/// factor, start ns, duration ns).
const CHURN_SESSIONS: usize = 3;
const CHURN_IDLE_US: u64 = 2_000;
const CHURN_DEGRADE: (f64, f64, u64, u64) = (0.2, 0.25, 500_000, 2_000_000);

/// The four request workloads of the sweep, in row order.
pub fn kv_workloads(migrate_at: &[u64]) -> Vec<KeyDist> {
    vec![
        KeyDist::Uniform,
        KeyDist::Zipf(0.9),
        KeyDist::Zipf(1.2),
        KeyDist::Hotspot {
            migrate_at: migrate_at.to_vec(),
            hot_permille: 900,
        },
    ]
}

/// Describe one serving point as an executor job.
fn kv_job(
    topo: AnyTopology,
    strategy_name: String,
    strategy: StrategyKind,
    params: KvParams,
    churn_label: &'static str,
    tuning: SimTuning,
) -> Job<KvRow> {
    let weight = (params.ops_per_client * topo.nodes()) as u64;
    Job::new(weight, move || {
        // The node-level half of the churn axis: a seeded transient
        // link-degradation window mid-run (heals itself, never partitions,
        // never loses a client).
        let plan = params.churn.map(|_| {
            let (fraction, factor, at, duration) = CHURN_DEGRADE;
            FaultPlan::new(params.seed ^ 0xC4).degrade_links_for(fraction, factor, at, duration)
        });
        let diva = make_faulty_diva(topo.clone(), strategy, params.seed, plan, tuning);
        let workload = params.dist.label();
        let out = run_kv_driven(diva, params);
        let s = &out.report.serving;
        KvRow {
            topology: topo.name(),
            workload,
            churn: churn_label.to_string(),
            strategy: strategy_name.clone(),
            nodes: topo.nodes(),
            requests: s.requests,
            local_hits: s.local_hits,
            bytes_moved: s.bytes_moved,
            p50_ns: s.quantile_ns(0.5),
            p99_ns: s.quantile_ns(0.99),
            repl_high_water: s.replication_high_water,
            exec_time_ns: out.report.total_time,
            host_ms: 0.0,
        }
    })
}

/// The Figure-14 sweep: five strategies × four topologies × four request
/// workloads × churn off/on at one matched node count per scale tier.
/// `None` means the sweep is incomplete (shard run or cut-short run); the
/// sidecar holds the completed jobs.
pub fn kv_serving_sweep(opts: &HarnessOpts) -> Option<KvSweep> {
    let (nodes, ops_per_client) = match opts.scale() {
        Scale::Smoke => (16, 24),
        Scale::Default => (64, 64),
        Scale::Paper => (256, 128),
        Scale::Mega => (4_096, 128),
    };
    // Hotspot migration boundaries reuse the --strike-at percent convention;
    // without the flag the window migrates at the three quartiles.
    let migrate_at = if opts.strike_at.is_empty() {
        vec![25, 50, 75]
    } else {
        opts.strike_at.clone()
    };
    let base = KvParams {
        n_keys: 8 * nodes,
        ops_per_client,
        seed: opts.seed,
        ..KvParams::new(nodes)
    };

    let mut jobs = Vec::new();
    for topo in topologies_at(nodes) {
        for dist in kv_workloads(&migrate_at) {
            for (churn_label, churn) in [
                ("off", None),
                (
                    "on",
                    Some(ChurnParams {
                        sessions: CHURN_SESSIONS,
                        idle_us: CHURN_IDLE_US,
                    }),
                ),
            ] {
                for (name, strategy) in barnes_hut_shapes() {
                    let params = KvParams {
                        dist: dist.clone(),
                        churn,
                        ..base.clone()
                    };
                    jobs.push(kv_job(
                        topo.clone(),
                        name,
                        strategy,
                        params,
                        churn_label,
                        opts.tuning(),
                    ));
                }
            }
        }
    }
    let results = crate::stream::run_sweep(opts, "", jobs)?;
    let rows = crate::stream::rows_with_host_ms(results, |row, ms| {
        row.host_ms = ms;
    });
    Some(KvSweep {
        meta: KvMeta {
            scale: opts.scale().name().to_string(),
            nodes,
            n_keys: base.n_keys,
            ops_per_client,
            write_percent: base.write_percent as u64,
            val_bytes: base.val_bytes as u64,
            migrate_at,
            churn_sessions: CHURN_SESSIONS as u64,
            churn_idle_us: CHURN_IDLE_US,
            seed: opts.seed,
        },
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::{FatTree, TreeShape};

    fn smoke_params(dist: KeyDist, churn: Option<ChurnParams>) -> KvParams {
        KvParams {
            n_keys: 128,
            ops_per_client: 8,
            seed: 0x5EED,
            dist,
            churn,
            ..KvParams::new(16)
        }
    }

    #[test]
    fn kv_point_runs_on_a_fat_tree() {
        let topo: AnyTopology = FatTree::new(16).into();
        let row = kv_job(
            topo,
            "fixed home".into(),
            StrategyKind::FixedHome,
            smoke_params(KeyDist::Zipf(0.9), None),
            "off",
            SimTuning::default(),
        )
        .call();
        assert_eq!(row.workload, "zipf-0.9");
        assert_eq!(row.churn, "off");
        assert_eq!(row.requests, 16 * 8);
        assert!(row.exec_time_ns > 0);
        assert!(row.bytes_moved > 0);
        assert!(row.p99_ns >= row.p50_ns);
    }

    #[test]
    fn churn_point_composes_the_degrade_window() {
        let topo: AnyTopology = dm_mesh::Mesh::square(4).into();
        let row = kv_job(
            topo,
            "4-ary access tree".into(),
            StrategyKind::AccessTree(TreeShape::quad()),
            smoke_params(
                KeyDist::Uniform,
                Some(ChurnParams {
                    sessions: 2,
                    idle_us: 1_000,
                }),
            ),
            "on",
            SimTuning::default(),
        )
        .call();
        assert_eq!(row.churn, "on");
        assert_eq!(row.requests, 16 * 8, "churn must not drop requests");
    }

    #[test]
    fn workload_axis_has_stable_labels() {
        let labels: Vec<String> = kv_workloads(&[25, 50, 75])
            .iter()
            .map(|d| d.label())
            .collect();
        assert_eq!(labels, ["uniform", "zipf-0.9", "zipf-1.2", "hotspot"]);
    }
}
