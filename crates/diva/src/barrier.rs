//! Combining-tree barrier synchronisation.
//!
//! The DIVA library provides barrier synchronisation built on the same
//! hierarchical mesh decomposition as the access trees. We implement the
//! classic combining tree: every processor reports its arrival to its leaf's
//! parent; an internal node that has heard from all of its children reports to
//! its own parent; when the root has heard from everybody it broadcasts a
//! release wave back down the tree. All arrive/release hops are real simulated
//! messages, so barriers contribute (a small amount of) traffic and latency,
//! identically for every data-management strategy.
//!
//! The barrier tree uses a fixed, deterministic embedding (every tree node
//! is simulated by the centre processor of its submesh on grid topologies,
//! by the middle processor of its region elsewhere), since there is exactly
//! one barrier object shared by all processors.

use dm_mesh::{AnyTopology, DecompositionTree, Mesh, NodeId, TreeNodeId, TreeShape};
use std::sync::Arc;

/// A barrier protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMsg {
    /// All processors below `node` have arrived; reported to `node`'s parent's
    /// simulator — the message is addressed to tree node `node`.
    Arrive {
        /// Tree node the arrival is reported to.
        node: TreeNodeId,
    },
    /// Release wave travelling down; addressed to tree node `node`.
    Release {
        /// Tree node the release is delivered to.
        node: TreeNodeId,
    },
}

/// An action the runtime must perform on behalf of the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAction {
    /// Send `msg` from mesh node `from` to mesh node `to`.
    Send {
        /// Sending mesh node.
        from: NodeId,
        /// Receiving mesh node.
        to: NodeId,
        /// The barrier message.
        msg: BarrierMsg,
    },
    /// Wake processor `proc`, whose `barrier()` call completes now.
    Wake {
        /// The processor to wake.
        proc: NodeId,
    },
}

/// The combining-tree barrier state machine.
///
/// The barrier itself performs no I/O: [`TreeBarrier::arrive`] and
/// [`TreeBarrier::on_message`] return the [`BarrierAction`]s the runtime must
/// carry out (sending messages through the network model, waking blocked
/// processors).
pub struct TreeBarrier {
    tree: Arc<DecompositionTree>,
    /// Mesh position simulating each tree node.
    pos: Vec<NodeId>,
    /// Arrivals seen so far per internal tree node.
    arrived: Vec<u32>,
    /// Arrivals each tree node still expects per round: the child count for
    /// internal nodes, 1 for leaves whose processor is an active member.
    /// [`TreeBarrier::remove`] decrements along the victim's path; a node at
    /// 0 has no active processor below it and drops out of both waves.
    expected: Vec<u32>,
}

impl TreeBarrier {
    /// Build a barrier over `mesh` using a combining tree of the given shape.
    pub fn new(mesh: &Mesh, shape: TreeShape) -> Self {
        Self::new_on(&AnyTopology::Mesh(mesh.clone()), shape)
    }

    /// Build a barrier over an arbitrary topology using a combining tree of
    /// the given shape.
    pub fn new_on(topo: &AnyTopology, shape: TreeShape) -> Self {
        let tree = Arc::new(DecompositionTree::build_on(topo, shape));
        let pos = tree
            .node_ids()
            .map(|id| {
                if tree.has_grid() {
                    let s = tree.submesh(id);
                    tree.mesh()
                        .node_at(s.row0 + s.rows / 2, s.col0 + s.cols / 2)
                } else {
                    let region = tree.region(id);
                    region[region.len() / 2]
                }
            })
            .collect();
        let arrived = vec![0; tree.len()];
        let expected = tree
            .node_ids()
            .map(|id| {
                if tree.node(id).proc.is_some() {
                    1
                } else {
                    tree.children(id).len() as u32
                }
            })
            .collect();
        TreeBarrier {
            tree,
            pos,
            arrived,
            expected,
        }
    }

    /// Mesh node simulating tree node `id`.
    pub fn position(&self, id: TreeNodeId) -> NodeId {
        self.pos[id.index()]
    }

    /// Processor `proc` arrives at the barrier.
    pub fn arrive(&mut self, proc: NodeId) -> Vec<BarrierAction> {
        let leaf = self.tree.leaf_of(proc);
        match self.tree.parent(leaf) {
            None => vec![BarrierAction::Wake { proc }], // single-processor mesh
            Some(parent) => vec![BarrierAction::Send {
                from: proc,
                to: self.position(parent),
                msg: BarrierMsg::Arrive { node: parent },
            }],
        }
    }

    /// A barrier message arrived at its tree node.
    pub fn on_message(&mut self, msg: BarrierMsg) -> Vec<BarrierAction> {
        match msg {
            BarrierMsg::Arrive { node } => {
                self.arrived[node.index()] += 1;
                self.check_fire(node)
            }
            BarrierMsg::Release { node } => {
                if let Some(proc) = self.tree.node(node).proc {
                    vec![BarrierAction::Wake { proc }]
                } else {
                    self.release(node)
                }
            }
        }
    }

    /// Deterministically remove `proc` from the barrier membership: its leaf
    /// stops counting towards (and receiving) both waves, empty subtrees
    /// drop out entirely, and a round that was only waiting for the victim
    /// fires immediately (the returned actions carry the wave onward).
    /// Idempotent. Must not be called while `proc` is *inside* the barrier —
    /// its arrival is already counted then, so the runtime defers the
    /// removal until the victim's wake (which it drops).
    pub fn remove(&mut self, proc: NodeId) -> Vec<BarrierAction> {
        let leaf = self.tree.leaf_of(proc);
        if self.expected[leaf.index()] == 0 {
            return Vec::new();
        }
        self.expected[leaf.index()] = 0;
        let mut node = leaf;
        while let Some(parent) = self.tree.parent(node) {
            let idx = parent.index();
            self.expected[idx] -= 1;
            if self.expected[idx] > 0 {
                // The parent keeps active members; the round may now be
                // complete without the victim.
                return self.check_fire(parent);
            }
            // The whole subtree under `parent` is empty: it can hold no
            // pending arrivals (a fired subtree's processors are inside the
            // barrier, where removal is deferred), so it drops out of its
            // own parent's expectation.
            debug_assert_eq!(self.arrived[idx], 0, "empty subtree with arrivals");
            node = parent;
        }
        Vec::new()
    }

    /// Fire `node`'s arrival upward (or release at the root) if every
    /// remaining member below it has arrived.
    fn check_fire(&mut self, node: TreeNodeId) -> Vec<BarrierAction> {
        let idx = node.index();
        if self.expected[idx] == 0 || self.arrived[idx] < self.expected[idx] {
            return Vec::new();
        }
        self.arrived[idx] = 0;
        match self.tree.parent(node) {
            Some(parent) => vec![BarrierAction::Send {
                from: self.position(node),
                to: self.position(parent),
                msg: BarrierMsg::Arrive { node: parent },
            }],
            None => self.release(node),
        }
    }

    /// Broadcast the release wave from `node` to its children (skipping
    /// subtrees with no active member left).
    fn release(&self, node: TreeNodeId) -> Vec<BarrierAction> {
        self.tree
            .children(node)
            .iter()
            .filter(|&&c| self.expected[c.index()] > 0)
            .map(|&c| {
                if let Some(proc) = self.tree.node(c).proc {
                    // Leaf children that are simulated by the same processor as
                    // `node` still get an explicit (local, cheap) message so
                    // their wake time is well defined.
                    BarrierAction::Send {
                        from: self.position(node),
                        to: proc,
                        msg: BarrierMsg::Release { node: c },
                    }
                } else {
                    BarrierAction::Send {
                        from: self.position(node),
                        to: self.position(c),
                        msg: BarrierMsg::Release { node: c },
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};

    /// Drive the barrier to completion with instant message delivery and
    /// return the set of woken processors and the number of messages sent.
    fn run_barrier(mesh: &Mesh, shape: TreeShape, arrivals: &[u32]) -> (HashSet<u32>, usize) {
        let mut barrier = TreeBarrier::new(mesh, shape);
        let mut queue: VecDeque<BarrierMsg> = VecDeque::new();
        let mut woken = HashSet::new();
        let mut messages = 0;
        let handle = |actions: Vec<BarrierAction>,
                      queue: &mut VecDeque<BarrierMsg>,
                      woken: &mut HashSet<u32>,
                      messages: &mut usize| {
            for a in actions {
                match a {
                    BarrierAction::Send { msg, .. } => {
                        *messages += 1;
                        queue.push_back(msg);
                    }
                    BarrierAction::Wake { proc } => {
                        woken.insert(proc.0);
                    }
                }
            }
        };
        for &p in arrivals {
            let acts = barrier.arrive(NodeId(p));
            handle(acts, &mut queue, &mut woken, &mut messages);
        }
        while let Some(msg) = queue.pop_front() {
            let acts = barrier.on_message(msg);
            handle(acts, &mut queue, &mut woken, &mut messages);
        }
        (woken, messages)
    }

    #[test]
    fn nobody_is_released_until_everyone_arrived() {
        let mesh = Mesh::square(4);
        let all_but_one: Vec<u32> = (0..15).collect();
        let (woken, _) = run_barrier(&mesh, TreeShape::quad(), &all_but_one);
        assert!(woken.is_empty());
    }

    #[test]
    fn everyone_is_released_after_all_arrived() {
        for shape in [TreeShape::binary(), TreeShape::quad(), TreeShape::hex16()] {
            let mesh = Mesh::square(4);
            let all: Vec<u32> = (0..16).collect();
            let (woken, messages) = run_barrier(&mesh, shape, &all);
            assert_eq!(woken.len(), 16, "{shape:?}");
            // Arrive wave + release wave: at most 2 messages per tree edge.
            assert!(
                messages <= 4 * mesh.nodes(),
                "{shape:?}: {messages} messages"
            );
        }
    }

    #[test]
    fn arrival_order_does_not_matter() {
        let mesh = Mesh::new(3, 5);
        let mut order: Vec<u32> = (0..15).collect();
        order.reverse();
        let (woken, _) = run_barrier(&mesh, TreeShape::quad(), &order);
        assert_eq!(woken.len(), 15);
    }

    #[test]
    fn consecutive_barriers_reuse_the_state_machine() {
        let mesh = Mesh::square(2);
        let mut barrier = TreeBarrier::new(&mesh, TreeShape::quad());
        for _round in 0..3 {
            let mut queue: VecDeque<BarrierMsg> = VecDeque::new();
            let mut woken = HashSet::new();
            for p in 0..4u32 {
                for a in barrier.arrive(NodeId(p)) {
                    match a {
                        BarrierAction::Send { msg, .. } => queue.push_back(msg),
                        BarrierAction::Wake { proc } => {
                            woken.insert(proc.0);
                        }
                    }
                }
            }
            while let Some(msg) = queue.pop_front() {
                for a in barrier.on_message(msg) {
                    match a {
                        BarrierAction::Send { msg, .. } => queue.push_back(msg),
                        BarrierAction::Wake { proc } => {
                            woken.insert(proc.0);
                        }
                    }
                }
            }
            assert_eq!(woken.len(), 4);
        }
    }

    #[test]
    fn removing_the_last_straggler_fires_the_round() {
        // 15 of 16 processors arrive; the 16th is removed (app-processor
        // loss) — the round must complete and wake exactly the survivors.
        let mesh = Mesh::square(4);
        let mut barrier = TreeBarrier::new(&mesh, TreeShape::quad());
        let mut queue: VecDeque<BarrierMsg> = VecDeque::new();
        let mut woken = HashSet::new();
        let drain = |actions: Vec<BarrierAction>,
                     queue: &mut VecDeque<BarrierMsg>,
                     woken: &mut HashSet<u32>| {
            for a in actions {
                match a {
                    BarrierAction::Send { msg, .. } => queue.push_back(msg),
                    BarrierAction::Wake { proc } => {
                        woken.insert(proc.0);
                    }
                }
            }
        };
        for p in 0..15u32 {
            let acts = barrier.arrive(NodeId(p));
            drain(acts, &mut queue, &mut woken);
        }
        while let Some(msg) = queue.pop_front() {
            let acts = barrier.on_message(msg);
            drain(acts, &mut queue, &mut woken);
        }
        assert!(woken.is_empty(), "stuck on the straggler");
        let acts = barrier.remove(NodeId(15));
        drain(acts, &mut queue, &mut woken);
        drain(barrier.remove(NodeId(15)), &mut queue, &mut woken); // idempotent
        while let Some(msg) = queue.pop_front() {
            let acts = barrier.on_message(msg);
            drain(acts, &mut queue, &mut woken);
        }
        assert_eq!(woken, (0..15u32).collect::<HashSet<_>>());
        // The next round works without the removed member.
        woken.clear();
        for p in 0..15u32 {
            let acts = barrier.arrive(NodeId(p));
            drain(acts, &mut queue, &mut woken);
        }
        while let Some(msg) = queue.pop_front() {
            let acts = barrier.on_message(msg);
            drain(acts, &mut queue, &mut woken);
        }
        assert_eq!(woken.len(), 15);
    }

    #[test]
    fn removing_a_whole_subtree_drops_it_from_both_waves() {
        // Remove all four processors of one quad-tree subtree before anyone
        // arrives: the remaining 12 must synchronise among themselves, and
        // no message may target the empty subtree.
        let mesh = Mesh::square(4);
        let mut barrier = TreeBarrier::new(&mesh, TreeShape::quad());
        let tree = DecompositionTree::build(&mesh, TreeShape::quad());
        let removed: Vec<u32> = tree
            .region(tree.children(tree.root())[0])
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(removed.len(), 4);
        for &p in &removed {
            assert!(barrier.remove(NodeId(p)).is_empty());
        }
        let survivors: Vec<u32> = (0..16).filter(|p| !removed.contains(p)).collect();
        let (woken, _) = {
            let mut queue: VecDeque<BarrierMsg> = VecDeque::new();
            let mut woken = HashSet::new();
            let mut messages = 0usize;
            let drain = |actions: Vec<BarrierAction>,
                         queue: &mut VecDeque<BarrierMsg>,
                         woken: &mut HashSet<u32>,
                         messages: &mut usize| {
                for a in actions {
                    match a {
                        BarrierAction::Send { msg, .. } => {
                            *messages += 1;
                            queue.push_back(msg);
                        }
                        BarrierAction::Wake { proc } => {
                            woken.insert(proc.0);
                        }
                    }
                }
            };
            for &p in &survivors {
                let acts = barrier.arrive(NodeId(p));
                drain(acts, &mut queue, &mut woken, &mut messages);
            }
            while let Some(msg) = queue.pop_front() {
                let acts = barrier.on_message(msg);
                drain(acts, &mut queue, &mut woken, &mut messages);
            }
            (woken, messages)
        };
        assert_eq!(woken, survivors.iter().copied().collect::<HashSet<_>>());
    }

    #[test]
    fn single_processor_mesh_wakes_immediately() {
        let mesh = Mesh::new(1, 1);
        let mut barrier = TreeBarrier::new(&mesh, TreeShape::quad());
        let acts = barrier.arrive(NodeId(0));
        assert_eq!(acts, vec![BarrierAction::Wake { proc: NodeId(0) }]);
    }

    #[test]
    fn barrier_over_a_hypercube_releases_everyone() {
        let topo = AnyTopology::from(dm_mesh::Hypercube::new(4));
        let mut barrier = TreeBarrier::new_on(&topo, TreeShape::quad());
        let mut queue: VecDeque<BarrierMsg> = VecDeque::new();
        let mut woken = HashSet::new();
        let handle = |actions: Vec<BarrierAction>,
                      queue: &mut VecDeque<BarrierMsg>,
                      woken: &mut HashSet<u32>| {
            for a in actions {
                match a {
                    BarrierAction::Send { msg, .. } => queue.push_back(msg),
                    BarrierAction::Wake { proc } => {
                        woken.insert(proc.0);
                    }
                }
            }
        };
        for p in 0..16u32 {
            let acts = barrier.arrive(NodeId(p));
            handle(acts, &mut queue, &mut woken);
        }
        assert!(woken.is_empty(), "nobody released before the last arrival");
        while let Some(msg) = queue.pop_front() {
            let acts = barrier.on_message(msg);
            handle(acts, &mut queue, &mut woken);
        }
        assert_eq!(woken.len(), 16);
    }

    #[test]
    fn barrier_nodes_are_embedded_in_their_submesh() {
        let mesh = Mesh::new(8, 4);
        let barrier = TreeBarrier::new(&mesh, TreeShape::quad());
        let tree = DecompositionTree::build(&mesh, TreeShape::quad());
        for id in tree.node_ids() {
            assert!(tree.submesh(id).contains(&mesh, barrier.position(id)));
        }
    }
}
