//! The access-tree data-management strategy (the paper's contribution).
//!
//! Every global variable has its own access tree — a copy of the hierarchical
//! mesh-decomposition tree — embedded into the mesh by a randomized but
//! locality-preserving rule (see [`crate::embedding`]). The nodes of the tree
//! that hold a copy of the variable always form a *connected component*
//! containing at least one node. Reads and writes are routed along the tree:
//!
//! * **read** — the request climbs from the reader's leaf towards the root
//!   until it reaches either a node holding a copy or a node whose subtree
//!   contains the copy component; in the latter case it descends towards the
//!   topmost copy node. The value then travels back along the same path,
//!   leaving a copy at every tree node it passes.
//! * **write** — the new value travels to the nearest copy node `u` the same
//!   way; `u` multicasts invalidations over the copy component (following the
//!   tree edges, acknowledgements aggregate back to `u`), updates its own
//!   copy and sends the modified value back to the writer, again leaving
//!   copies on the path. Afterwards exactly the path from `u` to the writer
//!   holds copies.
//!
//! Every tree-edge hop is a real simulated message between the embedded
//! positions of the two tree nodes, so flatter trees (4-ary, 16-ary, ℓ-k-ary)
//! trade congestion for fewer per-message startup costs exactly as discussed
//! in the paper.

use super::{AccessKind, Counter, LockTable, Policy, PolicyEnv, PolicyMsg, TxId, VarGate};
use crate::embedding::{Embedder, EmbeddingMode, VarPlacement};
use crate::var::VarHandle;
use dm_mesh::{DecompositionTree, Mesh, NodeId, TreeNodeId, TreeShape};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Per-variable state of the access-tree strategy.
#[derive(Debug)]
struct AtVar {
    placement: VarPlacement,
    /// Tree nodes currently holding a copy; always a connected component.
    copies: HashSet<TreeNodeId>,
    /// The copy node closest to the root.
    top: TreeNodeId,
    gate: VarGate,
}

/// Per-transaction protocol state.
#[derive(Debug)]
struct AtTx {
    proc: NodeId,
    kind: AccessKind,
    /// Tree nodes visited by the request, starting at the requester's leaf.
    path: Vec<TreeNodeId>,
    /// Invalidation multicast structure (write transactions only).
    inval_children: HashMap<TreeNodeId, Vec<TreeNodeId>>,
    inval_parent: HashMap<TreeNodeId, TreeNodeId>,
    pending_acks: HashMap<TreeNodeId, u32>,
}

/// The access-tree data-management policy.
pub struct AccessTreePolicy {
    embedder: Embedder,
    shape: TreeShape,
    rng: ChaCha8Rng,
    vars: Vec<Option<AtVar>>,
    txs: HashMap<TxId, AtTx>,
    locks: LockTable,
}

impl AccessTreePolicy {
    /// Create an access-tree policy for `mesh` with trees of the given shape
    /// and embedding mode. `seed` drives the random placement of tree roots.
    pub fn new(mesh: &Mesh, shape: TreeShape, mode: EmbeddingMode, seed: u64) -> Self {
        let tree = Arc::new(DecompositionTree::build(mesh, shape));
        AccessTreePolicy {
            embedder: Embedder::new(tree, mode),
            shape,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x00AC_CE55_00EE_u64),
            vars: Vec::new(),
            txs: HashMap::new(),
            locks: LockTable::new(),
        }
    }

    /// The decomposition tree shared by all access trees.
    pub fn tree(&self) -> &DecompositionTree {
        self.embedder.tree()
    }

    /// The shape of the access trees.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The tree nodes currently holding a copy of `var` (for tests).
    pub fn copy_set(&self, var: VarHandle) -> Option<&HashSet<TreeNodeId>> {
        self.vars.get(var.index()).and_then(|v| v.as_ref()).map(|v| &v.copies)
    }

    /// Check that the copy set of `var` is a non-empty connected component of
    /// the tree whose topmost node is the recorded `top` (test helper).
    pub fn assert_copy_invariants(&self, var: VarHandle) {
        let tree = self.embedder.tree();
        let v = self.var(var);
        assert!(!v.copies.is_empty(), "{var}: copy set must never be empty");
        assert!(v.copies.contains(&v.top), "{var}: top must hold a copy");
        for &c in &v.copies {
            // Walking up from any copy node must stay inside the copy set
            // until `top` is reached (connectivity + top is the unique
            // highest node).
            let mut cur = c;
            while cur != v.top {
                let parent = tree
                    .parent(cur)
                    .unwrap_or_else(|| panic!("{var}: node above top without reaching it"));
                assert!(
                    v.copies.contains(&parent),
                    "{var}: copy component is disconnected at {cur:?}"
                );
                cur = parent;
            }
        }
    }

    fn var(&self, var: VarHandle) -> &AtVar {
        self.vars
            .get(var.index())
            .and_then(|v| v.as_ref())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn var_mut(&mut self, var: VarHandle) -> &mut AtVar {
        self.vars
            .get_mut(var.index())
            .and_then(|v| v.as_mut())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn embed(&self, var: &AtVar, node: TreeNodeId) -> NodeId {
        self.embedder.position(var.placement, node)
    }

    fn data_bytes(&self, env: &dyn PolicyEnv, var: VarHandle) -> u32 {
        env.var_bytes(var) + env.config().header_bytes
    }

    /// Start an admitted access (the gate has already been passed).
    fn start_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        let tree = self.embedder.tree();
        let leaf = tree.leaf_of(proc);
        let holds_leaf = self.var(var).copies.contains(&leaf);
        match kind {
            AccessKind::Read => {
                debug_assert!(!holds_leaf, "read hits are filtered before start_access");
                env.bump(Counter::ReadMiss, 1);
                self.txs.insert(
                    tx,
                    AtTx {
                        proc,
                        kind,
                        path: vec![leaf],
                        inval_children: HashMap::new(),
                        inval_parent: HashMap::new(),
                        pending_acks: HashMap::new(),
                    },
                );
                self.forward_request(env, tx, var, leaf);
            }
            AccessKind::Write => {
                let only_copy_at_writer =
                    holds_leaf && self.var(var).copies.len() == 1;
                if only_copy_at_writer {
                    env.bump(Counter::WriteLocal, 1);
                    env.complete_at(tx, env.now() + env.config().local_access_ns());
                    self.finish_tx_no_record(env, var, kind);
                    return;
                }
                env.bump(Counter::WriteRemote, 1);
                self.txs.insert(
                    tx,
                    AtTx {
                        proc,
                        kind,
                        path: vec![leaf],
                        inval_children: HashMap::new(),
                        inval_parent: HashMap::new(),
                        pending_acks: HashMap::new(),
                    },
                );
                if holds_leaf {
                    // The writer already holds a copy (read-before-write): the
                    // nearest copy node is its own leaf, no request travels.
                    self.start_invalidation(env, tx, var, leaf);
                } else {
                    self.forward_request(env, tx, var, leaf);
                }
            }
        }
    }

    /// Forward the request of `tx` one tree hop from `from` towards the
    /// nearest copy node (climbing, or descending towards `top` once an
    /// ancestor of `top` has been reached).
    fn forward_request(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, from: TreeNodeId) {
        let tree = self.embedder.tree_arc();
        let (next, step_kind) = {
            let v = self.var(var);
            if tree.is_ancestor(from, v.top) {
                // Descend towards the topmost copy node.
                let next = *tree
                    .children(from)
                    .iter()
                    .find(|&&c| tree.is_ancestor(c, v.top))
                    .expect("descending node must have a child towards top");
                (next, self.txs[&tx].kind)
            } else {
                let next = tree
                    .parent(from)
                    .expect("climbing past the root — top not found");
                (next, self.txs[&tx].kind)
            }
        };
        let (from_pos, next_pos, bytes) = {
            let v = self.var(var);
            let bytes = match step_kind {
                // Read requests are small control messages, write requests
                // carry the new value.
                AccessKind::Read => env.config().control_msg_bytes,
                AccessKind::Write => self.data_bytes(env, var),
            };
            (self.embed(v, from), self.embed(v, next), bytes)
        };
        match step_kind {
            AccessKind::Read => env.bump(Counter::ControlMessages, 1),
            AccessKind::Write => env.bump(Counter::DataMessages, 1),
        }
        let msg = match step_kind {
            AccessKind::Read => PolicyMsg::AtReadStep { tx, var, at: next },
            AccessKind::Write => PolicyMsg::AtWriteStep { tx, var, at: next },
        };
        env.send(from_pos, next_pos, bytes, msg);
    }

    /// A request step arrived at tree node `at`.
    fn on_request_step(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, at: TreeNodeId) {
        self.txs.get_mut(&tx).expect("unknown transaction").path.push(at);
        let has_copy = self.var(var).copies.contains(&at);
        if has_copy {
            match self.txs[&tx].kind {
                AccessKind::Read => self.start_read_return(env, tx, var),
                AccessKind::Write => self.start_invalidation(env, tx, var, at),
            }
        } else {
            self.forward_request(env, tx, var, at);
        }
    }

    /// The nearest copy has been found at the end of the recorded path; send
    /// the value back towards the reader, creating copies along the way.
    fn start_read_return(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let path = &self.txs[&tx].path;
        debug_assert!(path.len() >= 2);
        let u = *path.last().unwrap();
        let prev = path[path.len() - 2];
        let bytes = self.data_bytes(env, var);
        let (from_pos, to_pos) = {
            let v = self.var(var);
            (self.embed(v, u), self.embed(v, prev))
        };
        env.bump(Counter::DataMessages, 1);
        env.send(
            from_pos,
            to_pos,
            bytes,
            PolicyMsg::AtReadData { tx, var, path_pos: (path.len() - 2) as u32 },
        );
    }

    /// A data message (read return or write-back) arrived at the path
    /// position `path_pos`; create a copy there and forward it towards the
    /// requester.
    fn on_data_step(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, path_pos: u32) {
        let tree = self.embedder.tree_arc();
        let at = self.txs[&tx].path[path_pos as usize];
        // Create a copy at this tree node.
        {
            let v = self.var_mut(var);
            if v.copies.insert(at) {
                env.bump(Counter::CopiesCreated, 1);
                if tree.is_ancestor(at, v.top) {
                    v.top = at;
                }
            }
        }
        if let Some(p) = tree.node(at).proc {
            env.set_presence(p, var, true);
        }
        if path_pos == 0 {
            // The value reached the requester.
            env.complete(tx);
            let kind = self.txs[&tx].kind;
            self.txs.remove(&tx);
            self.finish_tx_no_record(env, var, kind);
        } else {
            let next_pos = path_pos - 1;
            let next = self.txs[&tx].path[next_pos as usize];
            let bytes = self.data_bytes(env, var);
            let (from_pos, to_pos) = {
                let v = self.var(var);
                (self.embed(v, at), self.embed(v, next))
            };
            env.bump(Counter::DataMessages, 1);
            let kind = self.txs[&tx].kind;
            let msg = match kind {
                AccessKind::Read => PolicyMsg::AtReadData { tx, var, path_pos: next_pos },
                AccessKind::Write => PolicyMsg::AtWriteData { tx, var, path_pos: next_pos },
            };
            env.send(from_pos, to_pos, bytes, msg);
        }
    }

    /// The write request reached the nearest copy node `u`: invalidate every
    /// other copy by a multicast over the copy component, then (once all
    /// acknowledgements returned) send the modified value back to the writer.
    fn start_invalidation(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, u: TreeNodeId) {
        let tree = self.embedder.tree_arc();
        // Build the multicast tree: BFS over the copy component starting at u.
        let (children_map, parent_map, victims) = {
            let v = self.var(var);
            let mut children: HashMap<TreeNodeId, Vec<TreeNodeId>> = HashMap::new();
            let mut parent: HashMap<TreeNodeId, TreeNodeId> = HashMap::new();
            let mut victims: Vec<TreeNodeId> = Vec::new();
            let mut seen: HashSet<TreeNodeId> = HashSet::new();
            let mut queue = VecDeque::new();
            seen.insert(u);
            queue.push_back(u);
            while let Some(n) = queue.pop_front() {
                // Component neighbours: tree parent and tree children that hold copies.
                let mut neighbours: Vec<TreeNodeId> = Vec::new();
                if let Some(p) = tree.parent(n) {
                    if v.copies.contains(&p) {
                        neighbours.push(p);
                    }
                }
                for &c in tree.children(n) {
                    if v.copies.contains(&c) {
                        neighbours.push(c);
                    }
                }
                for nb in neighbours {
                    if seen.insert(nb) {
                        children.entry(n).or_default().push(nb);
                        parent.insert(nb, n);
                        victims.push(nb);
                        queue.push_back(nb);
                    }
                }
            }
            (children, parent, victims)
        };

        // Invalidate the state now (writes are exclusive on this variable).
        {
            let v = self.var_mut(var);
            for &victim in &victims {
                v.copies.remove(&victim);
            }
            v.top = u;
            env.bump(Counter::Invalidations, victims.len() as u64);
        }
        for &victim in &victims {
            if let Some(p) = tree.node(victim).proc {
                env.set_presence(p, var, false);
            }
        }

        let t = self.txs.get_mut(&tx).expect("unknown transaction");
        t.inval_children = children_map;
        t.inval_parent = parent_map;
        let direct: Vec<TreeNodeId> = t.inval_children.get(&u).cloned().unwrap_or_default();
        if direct.is_empty() {
            // Nothing to invalidate: go straight to the write-back phase.
            self.start_write_back(env, tx, var);
            return;
        }
        self.txs.get_mut(&tx).unwrap().pending_acks.insert(u, direct.len() as u32);
        let control = env.config().control_msg_bytes;
        let u_pos = {
            let v = self.var(var);
            self.embed(v, u)
        };
        for c in direct {
            let to_pos = {
                let v = self.var(var);
                self.embed(v, c)
            };
            env.bump(Counter::ControlMessages, 1);
            env.send(u_pos, to_pos, control, PolicyMsg::AtInval { tx, var, at: c });
        }
    }

    /// An invalidation arrived at tree node `at`: forward it to the component
    /// children (per the multicast plan) or acknowledge if there are none.
    fn on_inval(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, at: TreeNodeId) {
        let control = env.config().control_msg_bytes;
        let children: Vec<TreeNodeId> = self.txs[&tx]
            .inval_children
            .get(&at)
            .cloned()
            .unwrap_or_default();
        let at_pos = {
            let v = self.var(var);
            self.embed(v, at)
        };
        if children.is_empty() {
            let parent = self.txs[&tx].inval_parent[&at];
            let to_pos = {
                let v = self.var(var);
                self.embed(v, parent)
            };
            env.bump(Counter::ControlMessages, 1);
            env.send(at_pos, to_pos, control, PolicyMsg::AtInvalAck { tx, var, from: at, to: parent });
        } else {
            self.txs.get_mut(&tx).unwrap().pending_acks.insert(at, children.len() as u32);
            for c in children {
                let to_pos = {
                    let v = self.var(var);
                    self.embed(v, c)
                };
                env.bump(Counter::ControlMessages, 1);
                env.send(at_pos, to_pos, control, PolicyMsg::AtInval { tx, var, at: c });
            }
        }
    }

    /// An acknowledgement arrived at tree node `to`.
    fn on_inval_ack(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle, to: TreeNodeId) {
        let remaining = {
            let t = self.txs.get_mut(&tx).expect("unknown transaction");
            let counter = t.pending_acks.get_mut(&to).expect("ack without pending count");
            *counter -= 1;
            *counter
        };
        if remaining > 0 {
            return;
        }
        let u = *self.txs[&tx].path.last().unwrap();
        if to == u {
            // All copies invalidated; send the modified value back to the writer.
            self.start_write_back(env, tx, var);
        } else {
            let parent = self.txs[&tx].inval_parent[&to];
            let control = env.config().control_msg_bytes;
            let (from_pos, to_pos) = {
                let v = self.var(var);
                (self.embed(v, to), self.embed(v, parent))
            };
            env.bump(Counter::ControlMessages, 1);
            env.send(from_pos, to_pos, control, PolicyMsg::AtInvalAck { tx, var, from: to, to: parent });
        }
    }

    /// Send the modified value from the update point back to the writer along
    /// the recorded path (or complete immediately if the writer is the update
    /// point).
    fn start_write_back(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let path_len = self.txs[&tx].path.len();
        if path_len == 1 {
            // The writer's leaf was the nearest copy: it already holds the
            // (only) copy.
            let proc = self.txs[&tx].proc;
            env.set_presence(proc, var, true);
            env.complete(tx);
            let kind = self.txs[&tx].kind;
            self.txs.remove(&tx);
            self.finish_tx_no_record(env, var, kind);
            return;
        }
        let u = self.txs[&tx].path[path_len - 1];
        let prev = self.txs[&tx].path[path_len - 2];
        let bytes = self.data_bytes(env, var);
        let (from_pos, to_pos) = {
            let v = self.var(var);
            (self.embed(v, u), self.embed(v, prev))
        };
        env.bump(Counter::DataMessages, 1);
        env.send(
            from_pos,
            to_pos,
            bytes,
            PolicyMsg::AtWriteData { tx, var, path_pos: (path_len - 2) as u32 },
        );
    }

    /// Release the variable gate after a transaction of `kind` finished and
    /// start any newly admitted transactions.
    fn finish_tx_no_record(&mut self, env: &mut dyn PolicyEnv, var: VarHandle, kind: AccessKind) {
        let admitted = self.var_mut(var).gate.release(kind);
        for (tx, proc, kind) in admitted {
            self.start_access(env, tx, proc, var, kind);
        }
    }

    /// The manager node of the lock of `var`: the embedded root of the
    /// variable's access tree.
    fn lock_manager(&self, var: VarHandle) -> NodeId {
        let v = self.var(var);
        self.embed(v, self.embedder.tree().root())
    }
}

impl Policy for AccessTreePolicy {
    fn name(&self) -> String {
        format!("{} access tree", self.shape.name())
    }

    fn register_var(&mut self, var: VarHandle, owner: NodeId, bytes: u32) {
        let mesh = self.embedder.mesh().clone();
        let root = NodeId(self.rng.gen_range(0..mesh.nodes() as u32));
        let seed = self.rng.gen::<u64>();
        let leaf = self.embedder.tree().leaf_of(owner);
        let mut copies = HashSet::new();
        copies.insert(leaf);
        let idx = var.index();
        if self.vars.len() <= idx {
            self.vars.resize_with(idx + 1, || None);
        }
        let _ = bytes; // size is tracked by the registry, not per policy
        self.vars[idx] = Some(AtVar {
            placement: VarPlacement { root, seed },
            copies,
            top: leaf,
            gate: VarGate::new(),
        });
    }

    fn on_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        // Reads that hit a local copy bypass the gate entirely (they would be
        // served from the cache without any protocol action).
        if kind == AccessKind::Read {
            let leaf = self.embedder.tree().leaf_of(proc);
            if self.var(var).copies.contains(&leaf) {
                env.bump(Counter::ReadHit, 1);
                env.complete_at(tx, env.now() + env.config().local_access_ns());
                return;
            }
        }
        if self.var_mut(var).gate.admit(tx, proc, kind) {
            self.start_access(env, tx, proc, var, kind);
        }
    }

    fn on_lock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.lock_manager(var);
        self.locks.acquire(env, tx, proc, var, manager);
    }

    fn on_unlock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.lock_manager(var);
        self.locks.release(env, tx, proc, var, manager);
    }

    fn on_message(&mut self, env: &mut dyn PolicyEnv, at: NodeId, msg: PolicyMsg) {
        // Lock messages are shared between the policies.
        let handled = {
            // Work around the borrow checker: compute the manager lazily via a
            // clone of the minimal data needed.
            let managers: Vec<(VarHandle, NodeId)> = match &msg {
                PolicyMsg::LockRelease { var, .. } => vec![(*var, self.lock_manager(*var))],
                _ => Vec::new(),
            };
            let lookup = move |v: VarHandle| {
                managers
                    .iter()
                    .find(|(h, _)| *h == v)
                    .map(|(_, m)| *m)
                    .expect("lock manager lookup for unknown variable")
            };
            if matches!(
                msg,
                PolicyMsg::LockReq { .. } | PolicyMsg::LockGrant { .. } | PolicyMsg::LockRelease { .. }
            ) {
                self.locks.on_message(env, at, &msg, lookup)
            } else {
                false
            }
        };
        if handled {
            return;
        }
        match msg {
            PolicyMsg::AtReadStep { tx, var, at } | PolicyMsg::AtWriteStep { tx, var, at } => {
                self.on_request_step(env, tx, var, at)
            }
            PolicyMsg::AtReadData { tx, var, path_pos } | PolicyMsg::AtWriteData { tx, var, path_pos } => {
                self.on_data_step(env, tx, var, path_pos)
            }
            PolicyMsg::AtInval { tx, var, at } => self.on_inval(env, tx, var, at),
            PolicyMsg::AtInvalAck { tx, var, to, .. } => self.on_inval_ack(env, tx, var, to),
            other => panic!("access-tree policy received foreign message {other:?}"),
        }
    }
}
