//! The access-tree data-management strategy (the paper's contribution).
//!
//! Every global variable has its own access tree — a copy of the hierarchical
//! mesh-decomposition tree — embedded into the mesh by a randomized but
//! locality-preserving rule (see [`crate::embedding`]). The nodes of the tree
//! that hold a copy of the variable always form a *connected component*
//! containing at least one node. Reads and writes are routed along the tree:
//!
//! * **read** — the request climbs from the reader's leaf towards the root
//!   until it reaches either a node holding a copy or a node whose subtree
//!   contains the copy component; in the latter case it descends towards the
//!   topmost copy node. The value then travels back along the same path,
//!   leaving a copy at every tree node it passes.
//! * **write** — the new value travels to the nearest copy node `u` the same
//!   way; `u` multicasts invalidations over the copy component (following the
//!   tree edges, acknowledgements aggregate back to `u`), updates its own
//!   copy and sends the modified value back to the writer, again leaving
//!   copies on the path. Afterwards exactly the path from `u` to the writer
//!   holds copies.
//!
//! Every tree-edge hop is a real simulated message between the embedded
//! positions of the two tree nodes, so flatter trees (4-ary, 16-ary, ℓ-k-ary)
//! trade congestion for fewer per-message startup costs exactly as discussed
//! in the paper.

use super::{AccessKind, Counter, LockTable, Policy, PolicyEnv, PolicyMsg, TxId, VarGate};
use crate::embedding::{Embedder, EmbeddingMode, VarPlacement};
use crate::fasthash::FastMap;
use crate::var::VarHandle;
use dm_mesh::{AnyTopology, DecompositionTree, Mesh, NodeId, TreeNodeId, TreeShape};
use dm_rng::ChaCha8Rng;
use std::sync::Arc;

/// A dense bitset over the nodes of the decomposition tree — the
/// per-variable copy set.
///
/// Membership tests run on the hot path of every request step and every
/// invalidation BFS, so the set is a flat bit vector (word `n / 64`, bit
/// `n % 64`) instead of a hash set.
///
/// The size is computed by popcount instead of a cached counter: a cached
/// `len += usize::from(fresh)` next to the `|=` store miscompiled under
/// `opt-level >= 2` on rustc 1.95 (the counter silently stopped advancing
/// once `insert` was inlined into `on_data_step`), which made release builds
/// take the "sole copy at the writer" write fast path spuriously and
/// simulate a *different* — wrong — protocol run than debug builds. The
/// figure-suite goldens (generated in release, checked by `cargo test` in
/// debug) gate against any such cross-profile divergence recurring. The
/// per-write "is the writer's leaf the sole copy" test uses the early-exit
/// [`CopySet::sole_copy`] so its cost stays O(1) words in the common
/// multi-copy case even on 128×128 trees (~350 words).
#[derive(Debug, Clone)]
pub struct CopySet {
    words: Vec<u64>,
}

impl CopySet {
    fn new(tree_len: usize) -> Self {
        CopySet {
            words: vec![0; tree_len.div_ceil(64)],
        }
    }

    /// Whether `node` holds a copy.
    #[inline]
    pub fn contains(&self, node: &TreeNodeId) -> bool {
        self.words[node.index() / 64] >> (node.0 % 64) & 1 == 1
    }

    /// Number of tree nodes holding a copy.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no node holds a copy (never true between operations).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether exactly one node holds a copy. Early-exits on the second set
    /// bit, so the hot multi-copy case touches O(1) words.
    pub fn sole_copy(&self) -> bool {
        let mut total = 0u32;
        for w in &self.words {
            total += w.count_ones();
            if total > 1 {
                return false;
            }
        }
        total == 1
    }

    /// Insert `node`; returns whether it was newly inserted.
    fn insert(&mut self, node: TreeNodeId) -> bool {
        let w = &mut self.words[node.index() / 64];
        let bit = 1u64 << (node.0 % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Clear all members (used when a pooled set is recycled for a newly
    /// registered variable).
    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Remove `node`; returns whether it was present.
    fn remove(&mut self, node: &TreeNodeId) -> bool {
        let w = &mut self.words[node.index() / 64];
        let bit = 1u64 << (node.0 % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Iterate over the members in increasing node order.
    pub fn iter(&self) -> impl Iterator<Item = TreeNodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| TreeNodeId((wi * 64 + b) as u32))
        })
    }
}

/// Per-variable state of the access-tree strategy.
#[derive(Debug)]
struct AtVar {
    placement: VarPlacement,
    /// Tree nodes currently holding a copy; always a connected component.
    copies: CopySet,
    /// The copy node closest to the root.
    top: TreeNodeId,
    gate: VarGate,
}

/// One node of an invalidation-multicast plan.
#[derive(Debug, Clone, Copy)]
struct InvalNode {
    /// The tree node.
    node: TreeNodeId,
    /// Its parent in the multicast tree (itself for the root).
    parent: TreeNodeId,
    /// Acknowledgements still outstanding from its multicast children.
    pending: u32,
    /// Start of its child list in [`InvalPlan::children`].
    child_start: u32,
    /// Length of its child list.
    child_len: u32,
}

/// Flat, reusable invalidation-multicast plan over a copy component.
///
/// Replaces the per-transaction `HashMap` trio (children / parent / pending
/// acks) of the original implementation: the plan is built once per write by
/// a BFS, stored in three flat vectors, and recycled through the transaction
/// pool — no per-write allocations on the steady state.
#[derive(Debug, Default)]
struct InvalPlan {
    /// Nodes in BFS order; `nodes[0]` is the multicast root `u`.
    nodes: Vec<InvalNode>,
    /// Concatenated child lists (each node's children are contiguous).
    children: Vec<TreeNodeId>,
    /// `(node, index into nodes)`, sorted for O(log n) lookup.
    index: Vec<(TreeNodeId, u32)>,
}

impl InvalPlan {
    fn clear(&mut self) {
        self.nodes.clear();
        self.children.clear();
        self.index.clear();
    }

    /// Position of `node` in `nodes`.
    fn slot(&self, node: TreeNodeId) -> usize {
        let i = self
            .index
            .binary_search_by_key(&node, |&(n, _)| n)
            .expect("tree node not part of the invalidation plan");
        self.index[i].1 as usize
    }

    /// The multicast children of the node in `slot`.
    fn children_of(&self, slot: usize) -> &[TreeNodeId] {
        let n = &self.nodes[slot];
        &self.children[n.child_start as usize..(n.child_start + n.child_len) as usize]
    }

    /// Build the sorted lookup index (called once after the BFS).
    fn build_index(&mut self) {
        self.index.clear();
        self.index.extend(
            self.nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (n.node, i as u32)),
        );
        self.index.sort_unstable();
    }
}

/// Per-transaction protocol state. Recycled through
/// [`AccessTreePolicy::tx_pool`] so steady-state transactions allocate
/// nothing.
#[derive(Debug)]
struct AtTx {
    proc: NodeId,
    kind: AccessKind,
    /// Tree nodes visited by the request, starting at the requester's leaf.
    path: Vec<TreeNodeId>,
    /// Invalidation multicast plan (write transactions only).
    inval: InvalPlan,
}

/// The access-tree data-management policy.
pub struct AccessTreePolicy {
    embedder: Embedder,
    shape: TreeShape,
    rng: ChaCha8Rng,
    vars: Vec<Option<AtVar>>,
    txs: FastMap<TxId, AtTx>,
    locks: LockTable,
    /// Recycled transaction records (path and plan buffers keep their
    /// capacity across transactions).
    tx_pool: Vec<AtTx>,
    /// Recycled copy-set bit vectors from freed variables: a tree-sized
    /// allocation is reused instead of reallocated for every registration
    /// once variables are freed and recycled (the Barnes-Hut cell churn).
    copyset_pool: Vec<CopySet>,
    /// BFS visit stamps per tree node (generation-tagged so the scratch is
    /// never cleared).
    bfs_seen: Vec<u64>,
    /// Current BFS generation.
    bfs_gen: u64,
    /// Nodes whose data-management role failed, paired with the *live* node
    /// currently holding that role: when a successor itself fails, every
    /// redirect pointing at it is rewritten to the new successor, so lookup
    /// is a single scan and fail→restore→fail cycles cannot form a loop.
    /// Restoring a node removes its entry. Empty without a fault plan; while
    /// empty the embedding is byte-identical to a build without the fault
    /// subsystem.
    failed: Vec<(NodeId, NodeId)>,
}

impl AccessTreePolicy {
    /// Create an access-tree policy for `mesh` with trees of the given shape
    /// and embedding mode. `seed` drives the random placement of tree roots.
    pub fn new(mesh: &Mesh, shape: TreeShape, mode: EmbeddingMode, seed: u64) -> Self {
        Self::new_on(&AnyTopology::Mesh(mesh.clone()), shape, mode, seed)
    }

    /// Create an access-tree policy for an arbitrary topology: the access
    /// trees are copies of the topology's recursive decomposition (see
    /// [`DecompositionTree::build_on`]).
    pub fn new_on(topo: &AnyTopology, shape: TreeShape, mode: EmbeddingMode, seed: u64) -> Self {
        let tree = Arc::new(DecompositionTree::build_on(topo, shape));
        let tree_len = tree.len();
        AccessTreePolicy {
            embedder: Embedder::new(tree, mode),
            shape,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x00AC_CE55_00EE_u64),
            vars: Vec::new(),
            txs: FastMap::default(),
            locks: LockTable::new(),
            tx_pool: Vec::new(),
            copyset_pool: Vec::new(),
            bfs_seen: vec![0; tree_len],
            bfs_gen: 0,
            failed: Vec::new(),
        }
    }

    /// A fresh (or recycled) transaction record.
    fn make_tx(&mut self, proc: NodeId, kind: AccessKind, leaf: TreeNodeId) -> AtTx {
        let mut tx = self.tx_pool.pop().unwrap_or_else(|| AtTx {
            proc,
            kind,
            path: Vec::new(),
            inval: InvalPlan::default(),
        });
        tx.proc = proc;
        tx.kind = kind;
        tx.path.clear();
        tx.path.push(leaf);
        tx.inval.clear();
        tx
    }

    /// Remove a finished transaction and recycle its buffers.
    fn retire_tx(&mut self, tx: TxId) {
        if let Some(rec) = self.txs.remove(&tx) {
            self.tx_pool.push(rec);
        }
    }

    /// The decomposition tree shared by all access trees.
    pub fn tree(&self) -> &DecompositionTree {
        self.embedder.tree()
    }

    /// The shape of the access trees.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The tree nodes currently holding a copy of `var` (for tests).
    pub fn copy_set(&self, var: VarHandle) -> Option<&CopySet> {
        self.vars
            .get(var.index())
            .and_then(|v| v.as_ref())
            .map(|v| &v.copies)
    }

    /// Check that the copy set of `var` is a non-empty connected component of
    /// the tree whose topmost node is the recorded `top` (test helper).
    pub fn assert_copy_invariants(&self, var: VarHandle) {
        let tree = self.embedder.tree();
        let v = self.var(var);
        assert!(!v.copies.is_empty(), "{var}: copy set must never be empty");
        assert!(v.copies.contains(&v.top), "{var}: top must hold a copy");
        for c in v.copies.iter() {
            // Walking up from any copy node must stay inside the copy set
            // until `top` is reached (connectivity + top is the unique
            // highest node).
            let mut cur = c;
            while cur != v.top {
                let parent = tree
                    .parent(cur)
                    .unwrap_or_else(|| panic!("{var}: node above top without reaching it"));
                assert!(
                    v.copies.contains(&parent),
                    "{var}: copy component is disconnected at {cur:?}"
                );
                cur = parent;
            }
        }
    }

    fn var(&self, var: VarHandle) -> &AtVar {
        self.vars
            .get(var.index())
            .and_then(|v| v.as_ref())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn var_mut(&mut self, var: VarHandle) -> &mut AtVar {
        self.vars
            .get_mut(var.index())
            .and_then(|v| v.as_mut())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn embed(&self, var: &AtVar, node: TreeNodeId) -> NodeId {
        let pos = self.embedder.position(var.placement, node);
        if self.failed.is_empty() {
            return pos;
        }
        // Leaves stay pinned to their own processor — the *application*
        // processor survives a node failure; only the data-management role
        // (carried by interior tree nodes and the root) re-homes.
        if self.embedder.tree().node(node).proc.is_some() {
            return pos;
        }
        self.live_position(pos)
    }

    /// Resolve an embedded position through the re-homing redirects:
    /// identity while no node failed, otherwise the live inheritor of `p`'s
    /// role.
    fn live_position(&self, p: NodeId) -> NodeId {
        self.failed
            .iter()
            .find(|&&(v, _)| v == p)
            .map(|&(_, s)| s)
            .unwrap_or(p)
    }

    fn data_bytes(&self, env: &dyn PolicyEnv, var: VarHandle) -> u32 {
        env.var_bytes(var) + env.config().header_bytes
    }

    /// Start an admitted access (the gate has already been passed).
    fn start_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        let tree = self.embedder.tree();
        let leaf = tree.leaf_of(proc);
        let holds_leaf = self.var(var).copies.contains(&leaf);
        match kind {
            AccessKind::Read => {
                debug_assert!(!holds_leaf, "read hits are filtered before start_access");
                env.bump(Counter::ReadMiss, 1);
                let rec = self.make_tx(proc, kind, leaf);
                self.txs.insert(tx, rec);
                // The leaf of `proc` is always embedded at `proc` itself.
                self.forward_request(env, tx, var, leaf, proc, kind);
            }
            AccessKind::Write => {
                let only_copy_at_writer = holds_leaf && self.var(var).copies.sole_copy();
                if only_copy_at_writer {
                    env.bump(Counter::WriteLocal, 1);
                    env.complete_at(tx, env.now() + env.config().local_access_ns());
                    self.finish_tx_no_record(env, var, kind);
                    return;
                }
                env.bump(Counter::WriteRemote, 1);
                let rec = self.make_tx(proc, kind, leaf);
                self.txs.insert(tx, rec);
                if holds_leaf {
                    // The writer already holds a copy (read-before-write): the
                    // nearest copy node is its own leaf, no request travels.
                    self.start_invalidation(env, tx, var, leaf, proc);
                } else {
                    self.forward_request(env, tx, var, leaf, proc, kind);
                }
            }
        }
    }

    /// Forward the request of `tx` one tree hop from `from` towards the
    /// nearest copy node (climbing, or descending towards `top` once an
    /// ancestor of `top` has been reached).
    fn forward_request(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        from: TreeNodeId,
        from_pos: NodeId,
        step_kind: AccessKind,
    ) {
        let tree = self.embedder.tree_arc();
        let next = {
            let v = self.var(var);
            if tree.is_ancestor(from, v.top) {
                // Descend towards the topmost copy node.
                *tree
                    .children(from)
                    .iter()
                    .find(|&&c| tree.is_ancestor(c, v.top))
                    .expect("descending node must have a child towards top")
            } else {
                tree.parent(from)
                    .expect("climbing past the root — top not found")
            }
        };
        let bytes = match step_kind {
            // Read requests are small control messages, write requests
            // carry the new value.
            AccessKind::Read => env.config().control_msg_bytes,
            AccessKind::Write => self.data_bytes(env, var),
        };
        let next_pos = self.embed(self.var(var), next);
        match step_kind {
            AccessKind::Read => env.bump(Counter::ControlMessages, 1),
            AccessKind::Write => env.bump(Counter::DataMessages, 1),
        }
        let msg = match step_kind {
            AccessKind::Read => PolicyMsg::AtReadStep {
                tx,
                var,
                at: next,
                at_pos: next_pos,
            },
            AccessKind::Write => PolicyMsg::AtWriteStep {
                tx,
                var,
                at: next,
                at_pos: next_pos,
            },
        };
        env.send(from_pos, next_pos, bytes, msg);
    }

    /// A request step arrived at tree node `at` (embedded at `at_pos`).
    fn on_request_step(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        at: TreeNodeId,
        at_pos: NodeId,
        kind: AccessKind,
    ) {
        self.txs
            .get_mut(&tx)
            .expect("unknown transaction")
            .path
            .push(at);
        let has_copy = self.var(var).copies.contains(&at);
        if has_copy {
            match kind {
                AccessKind::Read => self.start_read_return(env, tx, var, at_pos),
                AccessKind::Write => self.start_invalidation(env, tx, var, at, at_pos),
            }
        } else {
            self.forward_request(env, tx, var, at, at_pos, kind);
        }
    }

    /// The nearest copy has been found at the end of the recorded path; send
    /// the value back towards the reader, creating copies along the way.
    fn start_read_return(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        u_pos: NodeId,
    ) {
        let path = &self.txs[&tx].path;
        debug_assert!(path.len() >= 2);
        let prev = path[path.len() - 2];
        let path_pos = (path.len() - 2) as u32;
        let bytes = self.data_bytes(env, var);
        let to_pos = self.embed(self.var(var), prev);
        env.bump(Counter::DataMessages, 1);
        env.send(
            u_pos,
            to_pos,
            bytes,
            PolicyMsg::AtReadData {
                tx,
                var,
                path_pos,
                at_pos: to_pos,
            },
        );
    }

    /// A data message (read return or write-back) arrived at the path
    /// position `path_pos`; create a copy there and forward it towards the
    /// requester.
    fn on_data_step(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        path_pos: u32,
        at_pos: NodeId,
        kind: AccessKind,
    ) {
        let tree = self.embedder.tree_arc();
        let at = self.txs[&tx].path[path_pos as usize];
        // Create a copy at this tree node.
        {
            let v = self.var_mut(var);
            if v.copies.insert(at) {
                env.bump(Counter::CopiesCreated, 1);
                if tree.is_ancestor(at, v.top) {
                    v.top = at;
                }
            }
        }
        if let Some(p) = tree.node(at).proc {
            env.set_presence(p, var, true);
        }
        if path_pos == 0 {
            // The value reached the requester.
            env.complete(tx);
            self.retire_tx(tx);
            self.finish_tx_no_record(env, var, kind);
        } else {
            let next_idx = path_pos - 1;
            let next = self.txs[&tx].path[next_idx as usize];
            let bytes = self.data_bytes(env, var);
            let to_pos = self.embed(self.var(var), next);
            env.bump(Counter::DataMessages, 1);
            let msg = match kind {
                AccessKind::Read => PolicyMsg::AtReadData {
                    tx,
                    var,
                    path_pos: next_idx,
                    at_pos: to_pos,
                },
                AccessKind::Write => PolicyMsg::AtWriteData {
                    tx,
                    var,
                    path_pos: next_idx,
                    at_pos: to_pos,
                },
            };
            env.send(at_pos, to_pos, bytes, msg);
        }
    }

    /// The write request reached the nearest copy node `u`: invalidate every
    /// other copy by a multicast over the copy component, then (once all
    /// acknowledgements returned) send the modified value back to the writer.
    fn start_invalidation(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        u: TreeNodeId,
        u_pos: NodeId,
    ) {
        let tree = self.embedder.tree_arc();
        // Build the multicast tree: BFS over the copy component starting at
        // u, directly into the transaction's flat (recycled) plan.
        let mut plan =
            std::mem::take(&mut self.txs.get_mut(&tx).expect("unknown transaction").inval);
        plan.clear();
        let mut seen = std::mem::take(&mut self.bfs_seen);
        self.bfs_gen += 1;
        let gen = self.bfs_gen;
        {
            let v = self.var(var);
            seen[u.index()] = gen;
            plan.nodes.push(InvalNode {
                node: u,
                parent: u,
                pending: 0,
                child_start: 0,
                child_len: 0,
            });
            let mut qi = 0;
            while qi < plan.nodes.len() {
                let n = plan.nodes[qi].node;
                let child_start = plan.children.len() as u32;
                // Component neighbours: tree parent and tree children that
                // hold copies.
                let parent_nb = tree.parent(n).filter(|p| v.copies.contains(p));
                for nb in parent_nb.iter().copied().chain(
                    tree.children(n)
                        .iter()
                        .copied()
                        .filter(|c| v.copies.contains(c)),
                ) {
                    if seen[nb.index()] != gen {
                        seen[nb.index()] = gen;
                        plan.children.push(nb);
                        plan.nodes.push(InvalNode {
                            node: nb,
                            parent: n,
                            pending: 0,
                            child_start: 0,
                            child_len: 0,
                        });
                    }
                }
                plan.nodes[qi].child_start = child_start;
                plan.nodes[qi].child_len = plan.children.len() as u32 - child_start;
                qi += 1;
            }
        }
        self.bfs_seen = seen;

        // Invalidate the state now (writes are exclusive on this variable):
        // every discovered node except the multicast root loses its copy.
        {
            let v = self.var_mut(var);
            for n in &plan.nodes[1..] {
                v.copies.remove(&n.node);
            }
            v.top = u;
            env.bump(Counter::Invalidations, plan.nodes.len() as u64 - 1);
        }
        for n in &plan.nodes[1..] {
            if let Some(p) = tree.node(n.node).proc {
                env.set_presence(p, var, false);
            }
        }

        let direct_len = plan.nodes[0].child_len;
        if direct_len == 0 {
            // Nothing to invalidate: go straight to the write-back phase.
            self.txs.get_mut(&tx).unwrap().inval = plan;
            self.start_write_back(env, tx, var, u_pos);
            return;
        }
        // The node → slot index is only needed once invalidation messages
        // will come back through `on_inval` / `on_inval_ack`.
        plan.build_index();
        plan.nodes[0].pending = direct_len;
        let control = env.config().control_msg_bytes;
        for i in 0..direct_len as usize {
            let c = plan.children[i];
            let to_pos = self.embed(self.var(var), c);
            env.bump(Counter::ControlMessages, 1);
            env.send(
                u_pos,
                to_pos,
                control,
                PolicyMsg::AtInval {
                    tx,
                    var,
                    at: c,
                    at_pos: to_pos,
                },
            );
        }
        self.txs.get_mut(&tx).unwrap().inval = plan;
    }

    /// An invalidation arrived at tree node `at`: forward it to the component
    /// children (per the multicast plan) or acknowledge if there are none.
    fn on_inval(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        at: TreeNodeId,
        at_pos: NodeId,
    ) {
        let control = env.config().control_msg_bytes;
        let rec = &self.txs[&tx];
        let slot = rec.inval.slot(at);
        if rec.inval.nodes[slot].child_len == 0 {
            let parent = rec.inval.nodes[slot].parent;
            let to_pos = self.embed(self.var(var), parent);
            env.bump(Counter::ControlMessages, 1);
            env.send(
                at_pos,
                to_pos,
                control,
                PolicyMsg::AtInvalAck {
                    tx,
                    var,
                    from: at,
                    to: parent,
                    to_pos,
                },
            );
        } else {
            {
                let rec = self.txs.get_mut(&tx).unwrap();
                rec.inval.nodes[slot].pending = rec.inval.nodes[slot].child_len;
            }
            let rec = &self.txs[&tx];
            for &c in rec.inval.children_of(slot) {
                let to_pos = self.embed(self.var(var), c);
                env.bump(Counter::ControlMessages, 1);
                env.send(
                    at_pos,
                    to_pos,
                    control,
                    PolicyMsg::AtInval {
                        tx,
                        var,
                        at: c,
                        at_pos: to_pos,
                    },
                );
            }
        }
    }

    /// An acknowledgement arrived at tree node `to` (embedded at `to_pos`).
    fn on_inval_ack(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        to: TreeNodeId,
        to_pos: NodeId,
    ) {
        let remaining = {
            let t = self.txs.get_mut(&tx).expect("unknown transaction");
            let slot = t.inval.slot(to);
            let node = &mut t.inval.nodes[slot];
            debug_assert!(node.pending > 0, "ack without pending count");
            node.pending -= 1;
            node.pending
        };
        if remaining > 0 {
            return;
        }
        let u = *self.txs[&tx].path.last().unwrap();
        if to == u {
            // All copies invalidated; send the modified value back to the writer.
            self.start_write_back(env, tx, var, to_pos);
        } else {
            let rec = &self.txs[&tx];
            let parent = rec.inval.nodes[rec.inval.slot(to)].parent;
            let control = env.config().control_msg_bytes;
            let parent_pos = self.embed(self.var(var), parent);
            env.bump(Counter::ControlMessages, 1);
            env.send(
                to_pos,
                parent_pos,
                control,
                PolicyMsg::AtInvalAck {
                    tx,
                    var,
                    from: to,
                    to: parent,
                    to_pos: parent_pos,
                },
            );
        }
    }

    /// Send the modified value from the update point back to the writer along
    /// the recorded path (or complete immediately if the writer is the update
    /// point).
    fn start_write_back(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        u_pos: NodeId,
    ) {
        let path_len = self.txs[&tx].path.len();
        if path_len == 1 {
            // The writer's leaf was the nearest copy: it already holds the
            // (only) copy.
            let proc = self.txs[&tx].proc;
            env.set_presence(proc, var, true);
            env.complete(tx);
            let kind = self.txs[&tx].kind;
            self.retire_tx(tx);
            self.finish_tx_no_record(env, var, kind);
            return;
        }
        let prev = self.txs[&tx].path[path_len - 2];
        let bytes = self.data_bytes(env, var);
        let to_pos = self.embed(self.var(var), prev);
        env.bump(Counter::DataMessages, 1);
        env.send(
            u_pos,
            to_pos,
            bytes,
            PolicyMsg::AtWriteData {
                tx,
                var,
                path_pos: (path_len - 2) as u32,
                at_pos: to_pos,
            },
        );
    }

    /// Release the variable gate after a transaction of `kind` finished and
    /// start any newly admitted transactions.
    fn finish_tx_no_record(&mut self, env: &mut dyn PolicyEnv, var: VarHandle, kind: AccessKind) {
        let admitted = self.var_mut(var).gate.release(kind);
        for (tx, proc, kind) in admitted {
            self.start_access(env, tx, proc, var, kind);
        }
    }

    /// The manager node of the lock of `var`: the embedded root of the
    /// variable's access tree.
    fn lock_manager(&self, var: VarHandle) -> NodeId {
        let v = self.var(var);
        self.embed(v, self.embedder.tree().root())
    }
}

impl Policy for AccessTreePolicy {
    fn name(&self) -> String {
        format!("{} access tree", self.shape.name())
    }

    fn register_var(&mut self, var: VarHandle, owner: NodeId, bytes: u32) {
        let nprocs = self.embedder.tree().topology().nodes();
        let root = NodeId(self.rng.gen_range(0..nprocs as u32));
        let seed = self.rng.next_u64();
        let leaf = self.embedder.tree().leaf_of(owner);
        // Reuse the bitset allocation of a previously freed variable.
        let mut copies = match self.copyset_pool.pop() {
            Some(mut set) => {
                set.clear();
                set
            }
            None => CopySet::new(self.embedder.tree().len()),
        };
        copies.insert(leaf);
        let idx = var.index();
        if self.vars.len() <= idx {
            self.vars.resize_with(idx + 1, || None);
        }
        let _ = bytes; // size is tracked by the registry, not per policy
        debug_assert!(
            self.vars[idx].is_none(),
            "slot of {var} was recycled without a free_var teardown"
        );
        self.vars[idx] = Some(AtVar {
            placement: VarPlacement { root, seed },
            copies,
            top: leaf,
            gate: VarGate::new(),
        });
    }

    fn free_var(&mut self, env: &mut dyn PolicyEnv, var: VarHandle) {
        let v = self
            .vars
            .get_mut(var.index())
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("free of unknown variable {var}"));
        assert!(
            v.gate.is_idle(),
            "freeing {var} with active or queued transactions"
        );
        let tree = self.embedder.tree_arc();
        for node in v.copies.iter() {
            if let Some(p) = tree.node(node).proc {
                env.set_presence(p, var, false);
            }
        }
        self.locks.evict(var);
        self.copyset_pool.push(v.copies);
    }

    fn end_epoch(&mut self, _env: &mut dyn PolicyEnv) {
        // Trim the dense per-variable vector back to the live prefix so it
        // does not keep the high-water length of a past epoch.
        while self.vars.last().is_some_and(Option::is_none) {
            self.vars.pop();
        }
    }

    fn on_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        // Reads that hit a local copy bypass the gate entirely (they would be
        // served from the cache without any protocol action).
        if kind == AccessKind::Read {
            let leaf = self.embedder.tree().leaf_of(proc);
            if self.var(var).copies.contains(&leaf) {
                env.bump(Counter::ReadHit, 1);
                env.complete_at(tx, env.now() + env.config().local_access_ns());
                return;
            }
        }
        if self.var_mut(var).gate.admit(tx, proc, kind) {
            self.start_access(env, tx, proc, var, kind);
        }
    }

    fn on_node_fail(&mut self, env: &mut dyn PolicyEnv, victim: NodeId, successor: NodeId) {
        // Fail-stop of the victim's data-management role. Interior tree
        // nodes embedded at the victim re-home to the successor (the
        // `embed` remap takes effect once the failure is recorded below);
        // here the migration traffic is charged against the *old* embedding
        // and the victim's own leaf copies are dropped. Iteration is in
        // variable index order, so both backends charge identically.
        let control = env.config().control_msg_bytes;
        let tree = self.embedder.tree_arc();
        let leaf = tree.leaf_of(victim);
        let root = tree.root();
        for idx in 0..self.vars.len() {
            let var = VarHandle(idx as u32);
            if self.vars[idx].is_none() {
                continue;
            }
            let v = self.var(var);
            // Did the victim hold cached values for interior tree nodes?
            let interior_at_victim = v
                .copies
                .iter()
                .any(|c| tree.node(c).proc.is_none() && self.embed(v, c) == victim);
            let root_at_victim = self.embed(v, root) == victim;
            let had_leaf_copy = v.copies.contains(&leaf);
            // The victim's leaf was the whole copy component: the value must
            // survive, so it climbs to the leaf's parent before the leaf
            // copy is dropped.
            let climb = if had_leaf_copy && v.top == leaf {
                let parent = tree
                    .parent(leaf)
                    .expect("sole leaf copy in a single-node tree");
                let pos = self.embed(v, parent);
                Some((parent, if pos == victim { successor } else { pos }))
            } else {
                None
            };
            if interior_at_victim {
                // The victim's interior caches move to the successor in one
                // migration message per variable.
                let bytes = self.data_bytes(env, var);
                env.charge_rehome(victim, successor, bytes);
            } else if root_at_victim {
                // No cached value to move, but the root's directory role
                // (lock management, request routing) migrates.
                env.charge_rehome(victim, successor, control);
            }
            if had_leaf_copy {
                let vm = self.var_mut(var);
                if let Some((parent, _)) = climb {
                    vm.copies.insert(parent);
                    vm.top = parent;
                }
                vm.copies.remove(&leaf);
                env.set_presence(victim, var, false);
                if let Some((_, parent_pos)) = climb {
                    let bytes = self.data_bytes(env, var);
                    env.charge_rehome(victim, parent_pos, bytes);
                }
            }
        }
        // Keep every redirect pointing at a live node: roles the victim
        // inherited from earlier failures move on to its successor. Done
        // after the charging loop above, which must see the pre-failure
        // embedding.
        for entry in &mut self.failed {
            if entry.1 == victim {
                entry.1 = successor;
            }
        }
        self.failed.push((victim, successor));
    }

    fn on_app_loss(&mut self, env: &mut dyn PolicyEnv, victim: NodeId) {
        let managers: Vec<(VarHandle, NodeId)> = self
            .locks
            .lock_vars()
            .into_iter()
            .map(|v| (v, self.lock_manager(v)))
            .collect();
        let lookup = move |v: VarHandle| {
            managers
                .iter()
                .find(|(h, _)| *h == v)
                .map(|(_, m)| *m)
                .expect("lock manager lookup for unknown variable")
        };
        self.locks.force_release(env, victim, lookup);
    }

    fn on_node_restore(&mut self, victim: NodeId) {
        // The state it lost stays where it was re-homed; dropping the
        // redirect makes the node a fresh embedding target again.
        self.failed.retain(|&(v, _)| v != victim);
    }

    fn on_lock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.lock_manager(var);
        self.locks.acquire(env, tx, proc, var, manager);
    }

    fn on_unlock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.lock_manager(var);
        self.locks.release(env, tx, proc, var, manager);
    }

    fn on_message(&mut self, env: &mut dyn PolicyEnv, at: NodeId, msg: PolicyMsg) {
        // Lock messages are shared between the policies.
        let handled = {
            // Work around the borrow checker: compute the manager lazily via a
            // clone of the minimal data needed.
            let managers: Vec<(VarHandle, NodeId)> = match &msg {
                PolicyMsg::LockRelease { var, .. } => vec![(*var, self.lock_manager(*var))],
                _ => Vec::new(),
            };
            let lookup = move |v: VarHandle| {
                managers
                    .iter()
                    .find(|(h, _)| *h == v)
                    .map(|(_, m)| *m)
                    .expect("lock manager lookup for unknown variable")
            };
            if matches!(
                msg,
                PolicyMsg::LockReq { .. }
                    | PolicyMsg::LockGrant { .. }
                    | PolicyMsg::LockRelease { .. }
            ) {
                self.locks.on_message(env, at, &msg, lookup)
            } else {
                false
            }
        };
        if handled {
            return;
        }
        match msg {
            PolicyMsg::AtReadStep {
                tx,
                var,
                at,
                at_pos,
            } => self.on_request_step(env, tx, var, at, at_pos, AccessKind::Read),
            PolicyMsg::AtWriteStep {
                tx,
                var,
                at,
                at_pos,
            } => self.on_request_step(env, tx, var, at, at_pos, AccessKind::Write),
            PolicyMsg::AtReadData {
                tx,
                var,
                path_pos,
                at_pos,
            } => self.on_data_step(env, tx, var, path_pos, at_pos, AccessKind::Read),
            PolicyMsg::AtWriteData {
                tx,
                var,
                path_pos,
                at_pos,
            } => self.on_data_step(env, tx, var, path_pos, at_pos, AccessKind::Write),
            PolicyMsg::AtInval {
                tx,
                var,
                at,
                at_pos,
            } => self.on_inval(env, tx, var, at, at_pos),
            PolicyMsg::AtInvalAck {
                tx,
                var,
                to,
                to_pos,
                ..
            } => self.on_inval_ack(env, tx, var, to, to_pos),
            other => panic!("access-tree policy received foreign message {other:?}"),
        }
    }
}
