//! Protocol-level unit tests for the data-management policies, driven by a
//! mock environment that delivers messages instantly (but in FIFO order) and
//! records completions, presence updates and counters.

use super::access_tree::AccessTreePolicy;
use super::fixed_home::FixedHomePolicy;
use super::{AccessKind, Counter, Policy, PolicyEnv, PolicyMsg, TxId, COUNTER_COUNT};
use crate::embedding::EmbeddingMode;
use crate::var::VarHandle;
use dm_engine::{MachineConfig, SimTime};
use dm_mesh::{AnyTopology, FatTree, Hypercube, Mesh, NodeId, Torus, TreeShape};
use std::collections::{HashMap, HashSet, VecDeque};

/// A deterministic mock of the runtime environment: messages are queued and
/// delivered in FIFO order with a fixed latency of 1 time unit per hop-free
/// message; no link model, no port model.
struct MockEnv {
    topo: AnyTopology,
    cfg: MachineConfig,
    now: SimTime,
    queue: VecDeque<(NodeId, PolicyMsg)>,
    completed: Vec<(TxId, SimTime)>,
    presence: HashMap<(NodeId, VarHandle), bool>,
    counters: [u64; COUNTER_COUNT],
    var_sizes: HashMap<VarHandle, u32>,
    messages_sent: u64,
    bytes_sent: u64,
    rehomes: Vec<(NodeId, NodeId, u32)>,
    /// Processors whose application was lost to a node failure.
    lost: HashSet<NodeId>,
    /// Forced lock releases tallied through `note_force_release`.
    force_released: u64,
}

impl MockEnv {
    fn new(mesh: Mesh) -> Self {
        Self::new_on(AnyTopology::Mesh(mesh))
    }

    fn new_on(topo: AnyTopology) -> Self {
        MockEnv {
            topo,
            cfg: MachineConfig::parsytec_gcel(),
            now: 0,
            queue: VecDeque::new(),
            completed: Vec::new(),
            presence: HashMap::new(),
            counters: [0; COUNTER_COUNT],
            var_sizes: HashMap::new(),
            messages_sent: 0,
            bytes_sent: 0,
            rehomes: Vec::new(),
            lost: HashSet::new(),
            force_released: 0,
        }
    }

    /// Deliver queued messages until the protocol quiesces.
    fn run(&mut self, policy: &mut dyn Policy) {
        let mut steps = 0;
        while let Some((to, msg)) = self.queue.pop_front() {
            self.now += 1;
            policy.on_message(self, to, msg);
            steps += 1;
            assert!(steps < 1_000_000, "protocol does not quiesce");
        }
    }

    fn completed_txs(&self) -> Vec<TxId> {
        self.completed.iter().map(|(t, _)| *t).collect()
    }

    fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    fn has_presence(&self, proc: NodeId, var: VarHandle) -> bool {
        *self.presence.get(&(proc, var)).unwrap_or(&false)
    }
}

impl PolicyEnv for MockEnv {
    fn now(&self) -> SimTime {
        self.now
    }
    fn config(&self) -> &MachineConfig {
        &self.cfg
    }
    fn topology(&self) -> &AnyTopology {
        &self.topo
    }
    fn var_bytes(&self, var: VarHandle) -> u32 {
        *self.var_sizes.get(&var).unwrap_or(&64)
    }
    fn send(&mut self, _from: NodeId, to: NodeId, bytes: u32, msg: PolicyMsg) -> SimTime {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.queue.push_back((to, msg));
        self.now
    }
    fn complete(&mut self, tx: TxId) {
        self.completed.push((tx, self.now));
    }
    fn complete_at(&mut self, tx: TxId, at: SimTime) {
        self.completed.push((tx, at));
    }
    fn set_presence(&mut self, proc: NodeId, var: VarHandle, present: bool) {
        self.presence.insert((proc, var), present);
    }
    fn bump(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }
    fn charge_rehome(&mut self, from: NodeId, to: NodeId, bytes: u32) {
        self.rehomes.push((from, to, bytes));
    }
    fn app_lost(&self, node: NodeId) -> bool {
        self.lost.contains(&node)
    }
    fn note_force_release(&mut self) {
        self.force_released += 1;
    }
}

fn setup_at(shape: TreeShape, side: usize) -> (AccessTreePolicy, MockEnv) {
    let mesh = Mesh::square(side);
    let policy = AccessTreePolicy::new(&mesh, shape, EmbeddingMode::Modified, 7);
    let env = MockEnv::new(mesh);
    (policy, env)
}

fn setup_fh(side: usize) -> (FixedHomePolicy, MockEnv) {
    let mesh = Mesh::square(side);
    let policy = FixedHomePolicy::new(&mesh, 7);
    let env = MockEnv::new(mesh);
    (policy, env)
}

// ---------------------------------------------------------------------------
// Access-tree strategy
// ---------------------------------------------------------------------------

#[test]
fn at_read_miss_creates_copies_on_the_tree_path() {
    let (mut policy, mut env) = setup_at(TreeShape::binary(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    policy.assert_copy_invariants(var);
    let reader = NodeId(15);
    policy.on_access(&mut env, TxId(1), reader, var, AccessKind::Read);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    policy.assert_copy_invariants(var);
    // Both the owner's leaf and the reader's leaf must now hold copies, and
    // the component spans their tree path.
    let tree = policy.tree();
    let copies = policy.copy_set(var).unwrap();
    assert!(copies.contains(&tree.leaf_of(NodeId(0))));
    assert!(copies.contains(&tree.leaf_of(reader)));
    assert!(copies.len() >= tree.tree_distance(tree.leaf_of(NodeId(0)), tree.leaf_of(reader)));
    assert!(env.has_presence(reader, var));
    assert_eq!(env.counter(Counter::ReadMiss), 1);
    assert!(env.counter(Counter::DataMessages) >= 1);
}

#[test]
fn at_read_hit_costs_nothing_on_the_network() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(5), 64);
    policy.on_access(&mut env, TxId(1), NodeId(5), var, AccessKind::Read);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    assert_eq!(env.messages_sent, 0);
    assert_eq!(env.counter(Counter::ReadHit), 1);
}

#[test]
fn at_write_by_sole_owner_is_local() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(3), 256);
    policy.on_access(&mut env, TxId(9), NodeId(3), var, AccessKind::Write);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(9)]);
    assert_eq!(env.messages_sent, 0);
    assert_eq!(env.counter(Counter::WriteLocal), 1);
}

#[test]
fn at_write_after_shared_reads_invalidates_all_other_copies() {
    let (mut policy, mut env) = setup_at(TreeShape::binary(), 4);
    let var = VarHandle(0);
    let owner = NodeId(0);
    policy.register_var(var, owner, 128);
    // Several processors read the variable, creating a large copy component.
    for (i, reader) in [5u32, 10, 15, 12].iter().enumerate() {
        policy.on_access(
            &mut env,
            TxId(i as u64 + 1),
            NodeId(*reader),
            var,
            AccessKind::Read,
        );
        env.run(&mut policy);
        policy.assert_copy_invariants(var);
    }
    let copies_before = policy.copy_set(var).unwrap().len();
    assert!(copies_before > 2);
    // Now the owner writes: every other copy must be invalidated and exactly
    // the path from the nearest copy (the owner's own leaf) remains.
    policy.on_access(&mut env, TxId(100), owner, var, AccessKind::Write);
    env.run(&mut policy);
    assert!(env.completed_txs().contains(&TxId(100)));
    policy.assert_copy_invariants(var);
    let tree = policy.tree();
    let copies_after = policy.copy_set(var).unwrap();
    assert_eq!(copies_after.len(), 1);
    assert!(copies_after.contains(&tree.leaf_of(owner)));
    assert!(env.counter(Counter::Invalidations) >= (copies_before - 1) as u64);
    // Presence of the previous readers has been revoked.
    for reader in [5u32, 10, 15, 12] {
        assert!(!env.has_presence(NodeId(reader), var));
    }
    assert!(env.has_presence(owner, var));
}

#[test]
fn at_write_by_non_copy_holder_moves_the_copy_path_to_the_writer() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    let writer = NodeId(15);
    policy.on_access(&mut env, TxId(1), writer, var, AccessKind::Write);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    policy.assert_copy_invariants(var);
    let tree = policy.tree();
    let copies = policy.copy_set(var).unwrap();
    assert!(copies.contains(&tree.leaf_of(writer)));
    // Exactly the tree path from the nearest copy (the old owner's leaf, which
    // keeps its copy per the protocol: "u modifies its own copy") to the
    // writer's leaf holds copies after the write.
    let owner_leaf = tree.leaf_of(NodeId(0));
    let writer_leaf = tree.leaf_of(writer);
    assert!(copies.contains(&owner_leaf));
    assert_eq!(
        copies.len(),
        tree.tree_distance(owner_leaf, writer_leaf) + 1
    );
    assert!(env.has_presence(writer, var));
    assert_eq!(env.counter(Counter::WriteRemote), 1);
}

#[test]
fn at_copy_component_stays_connected_under_random_workload() {
    // Property-style test: a pseudo-random sequence of reads and writes from
    // random processors never breaks the connectivity invariant.
    for shape in [
        TreeShape::binary(),
        TreeShape::quad(),
        TreeShape::lk(2, 4),
        TreeShape::hex16(),
    ] {
        let (mut policy, mut env) = setup_at(shape, 8);
        let var = VarHandle(0);
        policy.register_var(var, NodeId(17), 64);
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let proc = NodeId((state >> 33) as u32 % 64);
            let kind = if (state >> 7) & 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            policy.on_access(&mut env, TxId(i + 1), proc, var, kind);
            env.run(&mut policy);
            policy.assert_copy_invariants(var);
        }
        // Every submitted transaction completed exactly once.
        let mut seen = HashSet::new();
        for t in env.completed_txs() {
            assert!(seen.insert(t), "transaction {t:?} completed twice");
        }
        assert_eq!(seen.len(), 200);
    }
}

#[test]
fn at_flatter_trees_use_fewer_messages_per_read() {
    // A 16-ary tree has fewer levels than a 2-ary tree, so a single far read
    // needs fewer protocol messages (fewer startups) — the trade-off the
    // paper discusses.
    let mut msgs = Vec::new();
    for shape in [TreeShape::binary(), TreeShape::quad(), TreeShape::hex16()] {
        let (mut policy, mut env) = setup_at(shape, 16);
        let var = VarHandle(0);
        policy.register_var(var, NodeId(0), 1024);
        policy.on_access(&mut env, TxId(1), NodeId(255), var, AccessKind::Read);
        env.run(&mut policy);
        msgs.push(env.messages_sent);
    }
    assert!(
        msgs[0] > msgs[1],
        "2-ary should need more messages than 4-ary: {msgs:?}"
    );
    assert!(
        msgs[1] > msgs[2],
        "4-ary should need more messages than 16-ary: {msgs:?}"
    );
}

#[test]
fn at_lock_is_mutually_exclusive_and_fifo() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    // Three processors request the lock; only the first succeeds immediately.
    policy.on_lock(&mut env, TxId(1), NodeId(1), var);
    policy.on_lock(&mut env, TxId(2), NodeId(2), var);
    policy.on_lock(&mut env, TxId(3), NodeId(3), var);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    // Unlock by the holder grants to the next requester, in FIFO order.
    policy.on_unlock(&mut env, TxId(10), NodeId(1), var);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1), TxId(10), TxId(2)]);
    policy.on_unlock(&mut env, TxId(11), NodeId(2), var);
    env.run(&mut policy);
    assert!(env.completed_txs().contains(&TxId(3)));
    policy.on_unlock(&mut env, TxId(12), NodeId(3), var);
    env.run(&mut policy);
    assert_eq!(env.counter(Counter::Locks), 3);
}

#[test]
fn a_dead_lock_holder_never_wedges_its_waiters() {
    // The exact liveness hazard `LockTable::force_release` exists for:
    // processor 1 holds the lock when its node fails; processors 2 and 3
    // wait. The dead holder can never send its release (straggling lock
    // traffic from lost processors is dropped), the entry is held *and*
    // contended — `evict` would fail loudly — so without intervention the
    // waiters hang forever. `on_app_loss` must hand the lock to the next
    // waiter in FIFO order and tally the forced release.
    for at in [true, false] {
        let (mut policy, mut env): (Box<dyn Policy>, MockEnv) = if at {
            let (p, e) = setup_at(TreeShape::quad(), 4);
            (Box::new(p), e)
        } else {
            let (p, e) = setup_fh(4);
            (Box::new(p), e)
        };
        let var = VarHandle(0);
        policy.register_var(var, NodeId(0), 64);
        policy.on_lock(&mut env, TxId(1), NodeId(1), var);
        policy.on_lock(&mut env, TxId(2), NodeId(2), var);
        policy.on_lock(&mut env, TxId(3), NodeId(3), var);
        env.run(policy.as_mut());
        assert_eq!(env.completed_txs(), vec![TxId(1)], "at={at}");

        // The holder's node fails mid-critical-section. A straggling
        // release from the dead processor must be dropped, not unlock on
        // its behalf.
        env.lost.insert(NodeId(1));
        policy.on_message(
            &mut env,
            NodeId(0),
            PolicyMsg::LockRelease {
                var,
                proc: NodeId(1),
            },
        );
        env.run(policy.as_mut());
        assert_eq!(env.completed_txs(), vec![TxId(1)], "at={at}");
        assert_eq!(env.force_released, 0, "at={at}");

        // The teardown breaks the wedge: processor 2 is granted...
        policy.on_app_loss(&mut env, NodeId(1));
        env.run(policy.as_mut());
        assert_eq!(env.completed_txs(), vec![TxId(1), TxId(2)], "at={at}");
        assert_eq!(env.force_released, 1, "at={at}");

        // ...and the normal hand-off chain resumes behind it.
        policy.on_unlock(&mut env, TxId(10), NodeId(2), var);
        env.run(policy.as_mut());
        assert!(env.completed_txs().contains(&TxId(3)), "at={at}");
        policy.on_unlock(&mut env, TxId(11), NodeId(3), var);
        env.run(policy.as_mut());
        // The entry is quiescent again: the teardown-on-free path (which
        // asserts exactly that) accepts it.
        policy.free_var(&mut env, var);
    }
}

// ---------------------------------------------------------------------------
// Fixed-home strategy
// ---------------------------------------------------------------------------

#[test]
fn fh_read_miss_fetches_from_owner_via_home() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    let owner = NodeId(6);
    policy.register_var(var, owner, 64);
    assert_eq!(policy.owner_of(var), Some(owner));
    let reader = NodeId(9);
    policy.on_access(&mut env, TxId(1), reader, var, AccessKind::Read);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    // After the read, ownership is back at main memory and both processors
    // hold copies.
    let home = policy.home_of(var);
    let expected_owner = if home == owner { Some(owner) } else { None };
    assert_eq!(policy.owner_of(var), expected_owner);
    assert!(policy.copy_set(var).contains(&reader));
    assert!(policy.copy_set(var).contains(&owner));
    assert!(env.has_presence(reader, var));
    assert_eq!(env.counter(Counter::ReadMiss), 1);
}

#[test]
fn fh_read_hit_is_local() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(2), 64);
    policy.on_access(&mut env, TxId(1), NodeId(2), var, AccessKind::Read);
    env.run(&mut policy);
    assert_eq!(env.messages_sent, 0);
    assert_eq!(env.counter(Counter::ReadHit), 1);
}

#[test]
fn fh_write_invalidates_all_copies_and_transfers_ownership() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    let owner = NodeId(0);
    policy.register_var(var, owner, 64);
    // Three readers create copies.
    for (i, r) in [3u32, 7, 11].iter().enumerate() {
        policy.on_access(
            &mut env,
            TxId(i as u64 + 1),
            NodeId(*r),
            var,
            AccessKind::Read,
        );
        env.run(&mut policy);
    }
    assert_eq!(policy.copy_set(var).len(), 4);
    // Processor 7 writes.
    let writer = NodeId(7);
    policy.on_access(&mut env, TxId(50), writer, var, AccessKind::Write);
    env.run(&mut policy);
    assert!(env.completed_txs().contains(&TxId(50)));
    assert_eq!(policy.owner_of(var), Some(writer));
    assert_eq!(policy.copy_set(var).len(), 1);
    assert!(policy.copy_set(var).contains(&writer));
    assert!(env.counter(Counter::Invalidations) >= 3);
    assert!(!env.has_presence(NodeId(3), var));
    assert!(!env.has_presence(NodeId(11), var));
    assert!(env.has_presence(writer, var));
}

#[test]
fn fh_owner_write_after_exclusive_acquisition_is_local() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(5), 64);
    // Processor 5 owns the only copy, so its writes stay local.
    policy.on_access(&mut env, TxId(1), NodeId(5), var, AccessKind::Write);
    env.run(&mut policy);
    assert_eq!(env.messages_sent, 0);
    assert_eq!(env.counter(Counter::WriteLocal), 1);
    // After another processor reads, a second write by 5 is remote again.
    policy.on_access(&mut env, TxId(2), NodeId(9), var, AccessKind::Read);
    env.run(&mut policy);
    policy.on_access(&mut env, TxId(3), NodeId(5), var, AccessKind::Write);
    env.run(&mut policy);
    assert_eq!(env.counter(Counter::WriteRemote), 1);
    assert_eq!(policy.copy_set(var).len(), 1);
}

#[test]
fn fh_read_write_sequence_matches_ownership_scheme_counts() {
    // Write-after-read from the same processor: the read moves a copy to the
    // processor, the write invalidates the other copies — the "read before
    // write" pattern the paper notes makes the fixed-home strategy behave
    // like a P-ary access tree.
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(1), 64);
    let p = NodeId(14);
    policy.on_access(&mut env, TxId(1), p, var, AccessKind::Read);
    env.run(&mut policy);
    policy.on_access(&mut env, TxId(2), p, var, AccessKind::Write);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1), TxId(2)]);
    assert_eq!(policy.owner_of(var), Some(p));
    assert_eq!(
        policy.copy_set(var).iter().copied().collect::<Vec<_>>(),
        vec![p]
    );
}

#[test]
fn fh_lock_contention_is_serialised_at_the_home() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    policy.on_lock(&mut env, TxId(1), NodeId(4), var);
    policy.on_lock(&mut env, TxId(2), NodeId(8), var);
    env.run(&mut policy);
    assert_eq!(env.completed_txs(), vec![TxId(1)]);
    policy.on_unlock(&mut env, TxId(3), NodeId(4), var);
    env.run(&mut policy);
    assert!(env.completed_txs().contains(&TxId(2)));
}

// ---------------------------------------------------------------------------
// Variable lifecycle (free / epoch teardown)
// ---------------------------------------------------------------------------

#[test]
fn at_free_tears_down_copies_presence_and_locks() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    // Spread copies over the tree and take/release the lock so a lock entry
    // exists.
    for (i, reader) in [5u32, 10, 15].iter().enumerate() {
        policy.on_access(
            &mut env,
            TxId(i as u64 + 1),
            NodeId(*reader),
            var,
            AccessKind::Read,
        );
        env.run(&mut policy);
    }
    policy.on_lock(&mut env, TxId(50), NodeId(5), var);
    env.run(&mut policy);
    policy.on_unlock(&mut env, TxId(51), NodeId(5), var);
    env.run(&mut policy);
    assert!(policy.copy_set(var).unwrap().len() > 1);

    policy.free_var(&mut env, var);
    assert!(policy.copy_set(var).is_none(), "copy set must be torn down");
    for p in 0..16u32 {
        assert!(
            !env.has_presence(NodeId(p), var),
            "presence of processor {p} must be revoked"
        );
    }
    // The slot can be recycled by a new registration (a fresh incarnation
    // reusing the pooled copy-set allocation).
    policy.register_var(var, NodeId(9), 32);
    policy.assert_copy_invariants(var);
    assert_eq!(policy.copy_set(var).unwrap().len(), 1);
}

#[test]
#[should_panic(expected = "lock is held")]
fn at_free_of_a_locked_variable_fails_loudly() {
    let (mut policy, mut env) = setup_at(TreeShape::quad(), 4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 64);
    policy.on_lock(&mut env, TxId(1), NodeId(3), var);
    env.run(&mut policy);
    policy.free_var(&mut env, var);
}

#[test]
fn fh_free_tears_down_copies_and_presence() {
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(2), 64);
    for (i, r) in [3u32, 7, 11].iter().enumerate() {
        policy.on_access(
            &mut env,
            TxId(i as u64 + 1),
            NodeId(*r),
            var,
            AccessKind::Read,
        );
        env.run(&mut policy);
    }
    assert_eq!(policy.copy_set(var).len(), 4);
    policy.free_var(&mut env, var);
    for p in 0..16u32 {
        assert!(!env.has_presence(NodeId(p), var));
    }
    // Recycled incarnation starts from a clean single-copy state.
    policy.register_var(var, NodeId(5), 64);
    assert_eq!(policy.copy_set(var).len(), 1);
    assert_eq!(policy.owner_of(var), Some(NodeId(5)));
}

/// The lifecycle property loop: a pseudo-random interleaving of register,
/// read/write, lock/unlock and free over a pool of slots, for the access-tree
/// shapes and the fixed-home strategy. After every free the policy must have
/// torn down the copy set and every presence bit; after every re-register the
/// recycled slot must start from a clean single-copy state.
#[test]
fn lifecycle_property_loop_over_all_policies() {
    enum P {
        At(AccessTreePolicy),
        Fh(FixedHomePolicy),
    }
    impl P {
        fn as_policy(&mut self) -> &mut dyn Policy {
            match self {
                P::At(p) => p,
                P::Fh(p) => p,
            }
        }
        fn copies_len(&self, var: VarHandle) -> usize {
            match self {
                P::At(p) => p.copy_set(var).map(|c| c.len()).unwrap_or(0),
                P::Fh(p) => p.copy_set(var).len(),
            }
        }
        fn check_invariants(&self, var: VarHandle) {
            if let P::At(p) = self {
                p.assert_copy_invariants(var);
            }
        }
    }

    let setups: Vec<P> = vec![
        P::At(AccessTreePolicy::new(
            &Mesh::square(4),
            TreeShape::binary(),
            EmbeddingMode::Modified,
            7,
        )),
        P::At(AccessTreePolicy::new(
            &Mesh::square(4),
            TreeShape::quad(),
            EmbeddingMode::Modified,
            7,
        )),
        P::At(AccessTreePolicy::new(
            &Mesh::square(4),
            TreeShape::lk(2, 4),
            EmbeddingMode::Modified,
            7,
        )),
        P::Fh(FixedHomePolicy::new(&Mesh::square(4), 7)),
    ];
    for mut p in setups {
        let mut env = MockEnv::new(Mesh::square(4));
        const SLOTS: u32 = 8;
        // live[s] = Some(locked_by) once slot s is registered.
        let mut live: Vec<Option<Option<NodeId>>> = vec![None; SLOTS as usize];
        let mut state = 0xD1CE_5EED_u64;
        let mut tx = 0u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = ((state >> 33) % u64::from(SLOTS)) as usize;
            let var = VarHandle(slot as u32);
            let proc = NodeId((state >> 17) as u32 % 16);
            tx += 1;
            match (state >> 7) % 6 {
                // Register (if free) — recycles the slot.
                0 => {
                    if live[slot].is_none() {
                        p.as_policy().register_var(var, proc, 64);
                        live[slot] = Some(None);
                        assert_eq!(p.copies_len(var), 1, "fresh incarnation");
                    }
                }
                // Free (if live and unlocked) — full teardown.
                1 => {
                    if live[slot] == Some(None) {
                        p.as_policy().free_var(&mut env, var);
                        live[slot] = None;
                        for q in 0..16u32 {
                            assert!(
                                !env.has_presence(NodeId(q), var),
                                "presence left behind after free"
                            );
                        }
                    }
                }
                // Read or write.
                2 | 3 => {
                    if live[slot].is_some() {
                        let kind = if (state >> 13) & 1 == 0 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        };
                        p.as_policy().on_access(&mut env, TxId(tx), proc, var, kind);
                        env.run(p.as_policy());
                        p.check_invariants(var);
                        assert!(p.copies_len(var) >= 1);
                    }
                }
                // Lock.
                4 => {
                    if live[slot] == Some(None) {
                        p.as_policy().on_lock(&mut env, TxId(tx), proc, var);
                        env.run(p.as_policy());
                        live[slot] = Some(Some(proc));
                    }
                }
                // Unlock (frees the slot for future eviction).
                _ => {
                    if let Some(Some(holder)) = live[slot] {
                        p.as_policy().on_unlock(&mut env, TxId(tx), holder, var);
                        env.run(p.as_policy());
                        live[slot] = Some(None);
                    }
                }
            }
        }
        // Drain: unlock and free everything that is still live — the final
        // lock-table eviction must find every entry quiescent.
        for slot in 0..SLOTS as usize {
            let var = VarHandle(slot as u32);
            if let Some(Some(holder)) = live[slot] {
                p.as_policy()
                    .on_unlock(&mut env, TxId(9000 + slot as u64), holder, var);
                env.run(p.as_policy());
                live[slot] = Some(None);
            }
            if live[slot].is_some() {
                p.as_policy().free_var(&mut env, var);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Node failure / re-homing
// ---------------------------------------------------------------------------

fn topologies16() -> Vec<AnyTopology> {
    vec![
        Mesh::square(4).into(),
        Torus::square(4).into(),
        Hypercube::new(4).into(),
        FatTree::new(16).into(),
    ]
}

fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

#[test]
fn fh_node_fail_migrates_homes_ownership_and_copies() {
    for topo in topologies16() {
        let name = topo.name();
        let mut policy = FixedHomePolicy::new_on(&topo, 7);
        let mut env = MockEnv::new_on(topo.clone());
        for i in 0..8u32 {
            policy.register_var(VarHandle(i), NodeId((2 * i) % 16), 64);
        }
        // Spread copies and move some ownership around first.
        let mut tx = 0u64;
        for i in 0..8u32 {
            let var = VarHandle(i);
            tx += 1;
            policy.on_access(
                &mut env,
                TxId(tx),
                NodeId((i + 5) % 16),
                var,
                AccessKind::Read,
            );
            env.run(&mut policy);
            if i % 2 == 0 {
                tx += 1;
                policy.on_access(
                    &mut env,
                    TxId(tx),
                    NodeId((i + 9) % 16),
                    var,
                    AccessKind::Write,
                );
                env.run(&mut policy);
            }
        }
        // Fail the node that is home to variable 0.
        let victim = policy.home_of(VarHandle(0));
        let successor = NodeId((victim.0 + 1) % 16);
        policy.on_node_fail(&mut env, victim, successor);
        for i in 0..8u32 {
            let var = VarHandle(i);
            assert_ne!(policy.home_of(var), victim, "{name}: home must migrate");
            assert_ne!(
                policy.owner_of(var),
                Some(victim),
                "{name}: ownership must not survive"
            );
            assert!(
                !policy.copy_set(var).contains(&victim),
                "{name}: copies must be dropped"
            );
            assert!(
                !env.has_presence(victim, var),
                "{name}: presence must be revoked"
            );
        }
        assert!(
            !env.rehomes.is_empty(),
            "{name}: the victim was a home — migration traffic must be charged"
        );
        assert!(env
            .rehomes
            .iter()
            .all(|&(from, to, _)| from == victim && to != victim));
        // Newly registered variables never home at the fallen node.
        for i in 8..40u32 {
            policy.register_var(VarHandle(i), NodeId(0), 64);
            assert_ne!(policy.home_of(VarHandle(i)), victim, "{name}");
        }
        // The protocol still serves every variable — including requests from
        // the victim's (surviving) application processor.
        for i in 0..40u32 {
            tx += 1;
            let reader = if i % 4 == 0 {
                victim
            } else {
                NodeId((i + 3) % 16)
            };
            policy.on_access(
                &mut env,
                TxId(tx),
                reader,
                VarHandle(i % 8),
                AccessKind::Read,
            );
            env.run(&mut policy);
        }
    }
}

#[test]
fn at_node_fail_preserves_copy_invariants_on_every_topology() {
    let mut total_rehomes = 0usize;
    for topo in topologies16() {
        for shape in [TreeShape::binary(), TreeShape::quad()] {
            let name = format!("{} / {}", topo.name(), shape.name());
            let mut policy = AccessTreePolicy::new_on(&topo, shape, EmbeddingMode::Modified, 7);
            let mut env = MockEnv::new_on(topo.clone());
            for i in 0..6u32 {
                policy.register_var(VarHandle(i), NodeId((3 * i) % 16), 64);
            }
            let mut state = 0xFA17_5EED_u64;
            let mut tx = 0u64;
            let mut alive = [true; 16];
            for (round, &victim) in [NodeId(5), NodeId(6), NodeId(0)].iter().enumerate() {
                // A burst of pseudo-random accesses (victims of earlier
                // rounds keep issuing: the application processor survives a
                // DM-role failure)...
                for _ in 0..40 {
                    state = lcg(state);
                    let var = VarHandle((state >> 33) as u32 % 6);
                    let proc = NodeId((state >> 17) as u32 % 16);
                    let kind = if (state >> 7) & 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    tx += 1;
                    policy.on_access(&mut env, TxId(tx), proc, var, kind);
                    env.run(&mut policy);
                    policy.assert_copy_invariants(var);
                }
                // ...then one more node loses its data-management role.
                alive[victim.index()] = false;
                let successor = {
                    let mut s = (victim.index() + 1) % 16;
                    while !alive[s] {
                        s = (s + 1) % 16;
                    }
                    NodeId(s as u32)
                };
                policy.on_node_fail(&mut env, victim, successor);
                let leaf = policy.tree().leaf_of(victim);
                for i in 0..6u32 {
                    let var = VarHandle(i);
                    policy.assert_copy_invariants(var);
                    assert!(
                        !policy.copy_set(var).unwrap().contains(&leaf),
                        "{name} round {round}: the victim's leaf copy must be dropped"
                    );
                    assert!(!env.has_presence(victim, var), "{name} round {round}");
                }
                // Locks still work (the manager may just have re-homed).
                tx += 1;
                let locker = TxId(tx);
                policy.on_lock(&mut env, locker, NodeId(2), VarHandle(0));
                env.run(&mut policy);
                tx += 1;
                policy.on_unlock(&mut env, TxId(tx), NodeId(2), VarHandle(0));
                env.run(&mut policy);
            }
            total_rehomes += env.rehomes.len();
        }
    }
    assert!(
        total_rehomes > 0,
        "across 8 configurations and 3 failures each, some directory state must have migrated"
    );
}

#[test]
fn at_sole_leaf_copy_climbs_to_the_parent_when_its_node_fails() {
    let mesh = Mesh::square(4);
    let mut policy = AccessTreePolicy::new(&mesh, TreeShape::quad(), EmbeddingMode::Modified, 7);
    let mut env = MockEnv::new(mesh);
    let var = VarHandle(0);
    let victim = NodeId(9);
    // The victim's leaf holds the only copy.
    policy.register_var(var, victim, 64);
    let leaf = policy.tree().leaf_of(victim);
    assert_eq!(policy.copy_set(var).unwrap().len(), 1);
    assert!(policy.copy_set(var).unwrap().contains(&leaf));

    policy.on_node_fail(&mut env, victim, NodeId(10));
    policy.assert_copy_invariants(var);
    let copies = policy.copy_set(var).unwrap();
    assert!(
        !copies.contains(&leaf),
        "the failed leaf must not keep the copy"
    );
    let parent = policy.tree().parent(leaf).unwrap();
    assert!(
        copies.contains(&parent),
        "the value must climb to the parent"
    );
    // The climb is charged as migration traffic, not regular protocol load.
    // Exactly one data-sized migration (the climbing value) leaves the
    // victim; the root's directory role may add a small control-sized
    // charge if it happens to embed there.
    assert!(env.rehomes.iter().all(|r| r.0 == victim));
    let data: Vec<_> = env.rehomes.iter().filter(|r| r.2 >= 64).collect();
    assert_eq!(data.len(), 1, "rehomes: {:?}", env.rehomes);
    assert_eq!(env.messages_sent, 0);
}

#[test]
fn fh_many_readers_make_the_home_a_message_hotspot() {
    // Every read miss routes through the home — the congestion offset the
    // paper attributes to the fixed-home strategy for hot variables.
    let (mut policy, mut env) = setup_fh(4);
    let var = VarHandle(0);
    policy.register_var(var, NodeId(0), 1024);
    for i in 1..16u32 {
        policy.on_access(&mut env, TxId(i as u64), NodeId(i), var, AccessKind::Read);
        env.run(&mut policy);
    }
    // 15 read misses, each at least request + data = 2 messages, and the
    // first one also fetches from the owner.
    assert!(env.messages_sent >= 32);
    assert_eq!(env.counter(Counter::ReadMiss), 15);
    assert_eq!(policy.copy_set(var).len(), 16);
}
