//! The fixed-home (ownership) caching strategy — the CC-NUMA-like baseline.
//!
//! Every variable is assigned a *home* processor chosen uniformly at random.
//! The home plays the role of the main memory module of the classical
//! bus-based ownership scheme the paper describes:
//!
//! * at any time either one processor or the home ("main memory") owns the
//!   variable;
//! * a read by a processor without a valid copy asks the home; if a processor
//!   owns the variable, the home first fetches the value from the owner
//!   (ownership returns to the home), then forwards it to the reader, which
//!   keeps a cached copy;
//! * a write by a non-owner asks the home to invalidate every existing copy
//!   (one point-to-point invalidation message per copy holder, acknowledged
//!   back to the home — there is no snooping bus in a mesh), after which
//!   ownership is granted to the writer;
//! * reads and writes by a processor that already holds the necessary copy or
//!   ownership are served locally.
//!
//! Because the home serialises the distribution of copies and the collection
//! of acknowledgements, a heavily shared variable (e.g. the root cell of the
//! Barnes-Hut tree) makes both the home's links and its communication port a
//! bottleneck — exactly the effect the paper measures.

use super::{AccessKind, Counter, LockTable, Policy, PolicyEnv, PolicyMsg, TxId, VarGate};
use crate::fasthash::FastMap;
use crate::var::VarHandle;
use dm_mesh::{AnyTopology, Mesh, NodeId};
use dm_rng::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// Per-variable state of the fixed-home strategy.
#[derive(Debug)]
struct FhVar {
    home: NodeId,
    /// `Some(p)` — processor `p` owns the variable (its cached value is the
    /// only up-to-date one). `None` — the home's main-memory copy is valid.
    owner: Option<NodeId>,
    /// Processors holding a valid cached copy.
    copies: HashSet<NodeId>,
    gate: VarGate,
}

/// Per-transaction protocol state.
#[derive(Debug)]
struct FhTx {
    proc: NodeId,
    pending_acks: u32,
}

/// The fixed-home / ownership data-management policy.
pub struct FixedHomePolicy {
    /// Number of processors of the network (homes are drawn uniformly from
    /// them — the policy needs nothing else from the topology).
    nprocs: usize,
    rng: ChaCha8Rng,
    vars: Vec<Option<FhVar>>,
    txs: FastMap<TxId, FhTx>,
    locks: LockTable,
    /// Nodes whose data-management role failed, paired with the *live* node
    /// currently holding that role: when a successor itself fails, every
    /// redirect pointing at it is rewritten to the new successor, so lookup
    /// is a single scan and fail→restore→fail cycles cannot form a loop.
    /// Restoring a node removes its entry. Empty without a fault plan.
    failed: Vec<(NodeId, NodeId)>,
}

impl FixedHomePolicy {
    /// Create a fixed-home policy for `mesh`; `seed` drives the random home
    /// assignment.
    pub fn new(mesh: &Mesh, seed: u64) -> Self {
        Self::new_on(&AnyTopology::Mesh(mesh.clone()), seed)
    }

    /// Create a fixed-home policy for an arbitrary topology.
    pub fn new_on(topo: &AnyTopology, seed: u64) -> Self {
        FixedHomePolicy {
            nprocs: topo.nodes(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x00F1_0ED0_0E00_u64),
            vars: Vec::new(),
            txs: FastMap::default(),
            locks: LockTable::new(),
            failed: Vec::new(),
        }
    }

    /// Resolve a drawn home through the re-homing redirects: the identity
    /// while no node failed (so the rng stream and all placements are
    /// untouched by the fault subsystem), otherwise the live inheritor of
    /// `h`'s role.
    fn live_home(&self, h: NodeId) -> NodeId {
        self.failed
            .iter()
            .find(|&&(v, _)| v == h)
            .map(|&(_, s)| s)
            .unwrap_or(h)
    }

    /// The home processor of `var` (for tests).
    pub fn home_of(&self, var: VarHandle) -> NodeId {
        self.var(var).home
    }

    /// The processors currently holding a valid copy of `var` (for tests).
    pub fn copy_set(&self, var: VarHandle) -> &HashSet<NodeId> {
        &self.var(var).copies
    }

    /// The current owner of `var` (`None` = the home's main memory).
    pub fn owner_of(&self, var: VarHandle) -> Option<NodeId> {
        self.var(var).owner
    }

    fn var(&self, var: VarHandle) -> &FhVar {
        self.vars
            .get(var.index())
            .and_then(|v| v.as_ref())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn var_mut(&mut self, var: VarHandle) -> &mut FhVar {
        self.vars
            .get_mut(var.index())
            .and_then(|v| v.as_mut())
            .unwrap_or_else(|| panic!("unknown variable {var}"))
    }

    fn data_bytes(&self, env: &dyn PolicyEnv, var: VarHandle) -> u32 {
        env.var_bytes(var) + env.config().header_bytes
    }

    /// Start an admitted access.
    fn start_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        let control = env.config().control_msg_bytes;
        match kind {
            AccessKind::Read => {
                debug_assert!(!self.var(var).copies.contains(&proc));
                env.bump(Counter::ReadMiss, 1);
                let home = self.var(var).home;
                self.txs.insert(
                    tx,
                    FhTx {
                        proc,
                        pending_acks: 0,
                    },
                );
                env.bump(Counter::ControlMessages, 1);
                env.send(proc, home, control, PolicyMsg::FhReadReq { tx, var });
            }
            AccessKind::Write => {
                let v = self.var(var);
                if v.owner == Some(proc) && v.copies.len() == 1 {
                    // The writer owns the only copy: local write.
                    env.bump(Counter::WriteLocal, 1);
                    env.complete_at(tx, env.now() + env.config().local_access_ns());
                    self.finish_access(env, var, kind);
                    return;
                }
                env.bump(Counter::WriteRemote, 1);
                let home = v.home;
                self.txs.insert(
                    tx,
                    FhTx {
                        proc,
                        pending_acks: 0,
                    },
                );
                env.bump(Counter::ControlMessages, 1);
                env.send(proc, home, control, PolicyMsg::FhWriteReq { tx, var });
            }
        }
    }

    /// A read request arrived at the home.
    fn on_read_req(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let home = self.var(var).home;
        let owner = self.var(var).owner;
        match owner {
            Some(q) if q != home => {
                // Fetch the up-to-date value from the owner first.
                let control = env.config().control_msg_bytes;
                env.bump(Counter::ControlMessages, 1);
                env.send(home, q, control, PolicyMsg::FhFetchOwner { tx, var });
            }
            _ => {
                // Main memory (or the home's own cache) is valid.
                self.send_read_data(env, tx, var);
            }
        }
    }

    /// The owner returns the value to the home; ownership moves back to main
    /// memory and the home forwards the value to the reader.
    fn on_owner_data(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        self.var_mut(var).owner = None;
        self.send_read_data(env, tx, var);
    }

    fn send_read_data(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let home = self.var(var).home;
        let reader = self.txs[&tx].proc;
        let bytes = self.data_bytes(env, var);
        env.bump(Counter::DataMessages, 1);
        env.send(home, reader, bytes, PolicyMsg::FhReadData { tx, var });
    }

    /// The value arrived at the reader.
    fn on_read_data(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let reader = self.txs[&tx].proc;
        if self.var_mut(var).copies.insert(reader) {
            env.bump(Counter::CopiesCreated, 1);
        }
        env.set_presence(reader, var, true);
        env.complete(tx);
        self.txs.remove(&tx);
        self.finish_access(env, var, AccessKind::Read);
    }

    /// A write request arrived at the home: invalidate every other copy, then
    /// grant ownership to the writer.
    fn on_write_req(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let home = self.var(var).home;
        let writer = self.txs[&tx].proc;
        let victims: Vec<NodeId> = {
            let v = self.var(var);
            let mut targets: HashSet<NodeId> = v.copies.clone();
            if let Some(q) = v.owner {
                targets.insert(q);
            }
            targets.remove(&writer);
            let mut targets: Vec<NodeId> = targets.into_iter().collect();
            targets.sort(); // deterministic invalidation order
            targets
        };
        // Update the bookkeeping now (writes are exclusive on this variable);
        // the invalidation/ack messages model the communication cost.
        {
            let v = self.var_mut(var);
            v.copies.retain(|c| *c == writer);
            env.bump(Counter::Invalidations, victims.len() as u64);
        }
        for &victim in &victims {
            env.set_presence(victim, var, false);
        }
        if victims.is_empty() {
            self.send_write_grant(env, tx, var, home);
            return;
        }
        self.txs.get_mut(&tx).unwrap().pending_acks = victims.len() as u32;
        let control = env.config().control_msg_bytes;
        for victim in victims {
            env.bump(Counter::ControlMessages, 1);
            env.send(home, victim, control, PolicyMsg::FhInval { tx, var });
        }
    }

    /// An invalidation arrived at a copy holder: acknowledge to the home.
    fn on_inval(&mut self, env: &mut dyn PolicyEnv, at: NodeId, tx: TxId, var: VarHandle) {
        let home = self.var(var).home;
        let control = env.config().control_msg_bytes;
        env.bump(Counter::ControlMessages, 1);
        env.send(at, home, control, PolicyMsg::FhInvalAck { tx, var });
    }

    /// An acknowledgement arrived at the home.
    fn on_inval_ack(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let home = self.var(var).home;
        let remaining = {
            let t = self.txs.get_mut(&tx).expect("unknown transaction");
            t.pending_acks -= 1;
            t.pending_acks
        };
        if remaining == 0 {
            self.send_write_grant(env, tx, var, home);
        }
    }

    fn send_write_grant(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        var: VarHandle,
        home: NodeId,
    ) {
        let writer = self.txs[&tx].proc;
        let control = env.config().control_msg_bytes;
        env.bump(Counter::ControlMessages, 1);
        env.send(home, writer, control, PolicyMsg::FhWriteGrant { tx, var });
    }

    /// The grant arrived at the writer: it now owns the only copy.
    fn on_write_grant(&mut self, env: &mut dyn PolicyEnv, tx: TxId, var: VarHandle) {
        let writer = self.txs[&tx].proc;
        {
            let v = self.var_mut(var);
            v.owner = Some(writer);
            v.copies.clear();
            v.copies.insert(writer);
        }
        env.set_presence(writer, var, true);
        env.bump(Counter::CopiesCreated, 1);
        env.complete(tx);
        self.txs.remove(&tx);
        self.finish_access(env, var, AccessKind::Write);
    }

    /// Release the gate and start newly admitted transactions.
    fn finish_access(&mut self, env: &mut dyn PolicyEnv, var: VarHandle, kind: AccessKind) {
        let admitted = self.var_mut(var).gate.release(kind);
        for (tx, proc, kind) in admitted {
            self.start_access(env, tx, proc, var, kind);
        }
    }
}

impl Policy for FixedHomePolicy {
    fn name(&self) -> String {
        "fixed home".to_string()
    }

    fn register_var(&mut self, var: VarHandle, owner: NodeId, _bytes: u32) {
        let drawn = NodeId(self.rng.gen_range(0..self.nprocs as u32));
        let home = self.live_home(drawn);
        let mut copies = HashSet::new();
        copies.insert(owner);
        let idx = var.index();
        if self.vars.len() <= idx {
            self.vars.resize_with(idx + 1, || None);
        }
        debug_assert!(
            self.vars[idx].is_none(),
            "slot of {var} was recycled without a free_var teardown"
        );
        self.vars[idx] = Some(FhVar {
            home,
            owner: Some(owner),
            copies,
            gate: VarGate::new(),
        });
    }

    fn free_var(&mut self, env: &mut dyn PolicyEnv, var: VarHandle) {
        let v = self
            .vars
            .get_mut(var.index())
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("free of unknown variable {var}"));
        assert!(
            v.gate.is_idle(),
            "freeing {var} with active or queued transactions"
        );
        // Every presence-true processor is in the copy set (the owner
        // included), so revoking the copies revokes all fast-path bits.
        // Iteration order is free to vary: clearing independent bits has no
        // observable effect beyond the bits themselves.
        for p in v.copies {
            env.set_presence(p, var, false);
        }
        self.locks.evict(var);
    }

    fn end_epoch(&mut self, _env: &mut dyn PolicyEnv) {
        while self.vars.last().is_some_and(Option::is_none) {
            self.vars.pop();
        }
    }

    fn on_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    ) {
        if kind == AccessKind::Read && self.var(var).copies.contains(&proc) {
            env.bump(Counter::ReadHit, 1);
            env.complete_at(tx, env.now() + env.config().local_access_ns());
            return;
        }
        if self.var_mut(var).gate.admit(tx, proc, kind) {
            self.start_access(env, tx, proc, var, kind);
        }
    }

    fn on_node_fail(&mut self, env: &mut dyn PolicyEnv, victim: NodeId, successor: NodeId) {
        // Fail-stop of the victim's data-management role: every home it
        // served moves to the successor, its owned values flush back to main
        // memory, its cached copies vanish. The migration traffic is real —
        // charged per variable through `charge_rehome`. Iteration is in
        // variable index order, so both backends charge identically.
        let control = env.config().control_msg_bytes;
        for idx in 0..self.vars.len() {
            let var = VarHandle(idx as u32);
            let Some(v) = self.vars[idx].as_mut() else {
                continue;
            };
            let was_home = v.home == victim;
            let was_owner = v.owner == Some(victim);
            let had_copy = v.copies.contains(&victim);
            if !(was_home || was_owner || had_copy) {
                continue;
            }
            if was_owner {
                // The victim held the only up-to-date value: it flushes to
                // main memory (at the surviving home) on its way out.
                v.owner = None;
            }
            if had_copy {
                v.copies.remove(&victim);
            }
            if was_home {
                v.home = successor;
            }
            let new_home = v.home;
            let owner_elsewhere = v.owner.is_some();
            if was_owner {
                let bytes = self.data_bytes(env, var);
                env.charge_rehome(victim, new_home, bytes);
            } else if was_home {
                // The directory record migrates; the main-memory value rides
                // along only when it is the valid copy.
                let bytes = if owner_elsewhere {
                    control
                } else {
                    self.data_bytes(env, var)
                };
                env.charge_rehome(victim, successor, bytes);
            }
            if had_copy {
                env.set_presence(victim, var, false);
            }
        }
        // Keep every redirect pointing at a live node: roles the victim
        // inherited from earlier failures move on to its successor.
        for entry in &mut self.failed {
            if entry.1 == victim {
                entry.1 = successor;
            }
        }
        self.failed.push((victim, successor));
    }

    fn on_app_loss(&mut self, env: &mut dyn PolicyEnv, victim: NodeId) {
        let homes: HashMap<VarHandle, NodeId> = self
            .locks
            .lock_vars()
            .into_iter()
            .map(|v| (v, self.var(v).home))
            .collect();
        let lookup = move |v: VarHandle| *homes.get(&v).expect("lock manager for unknown variable");
        self.locks.force_release(env, victim, lookup);
    }

    fn on_node_restore(&mut self, victim: NodeId) {
        // The state it lost stays where it was re-homed; dropping the
        // redirect makes the node a fresh target for new registrations.
        self.failed.retain(|&(v, _)| v != victim);
    }

    fn on_lock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.var(var).home;
        self.locks.acquire(env, tx, proc, var, manager);
    }

    fn on_unlock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle) {
        let manager = self.var(var).home;
        self.locks.release(env, tx, proc, var, manager);
    }

    fn on_message(&mut self, env: &mut dyn PolicyEnv, at: NodeId, msg: PolicyMsg) {
        if matches!(
            msg,
            PolicyMsg::LockReq { .. } | PolicyMsg::LockGrant { .. } | PolicyMsg::LockRelease { .. }
        ) {
            let homes: HashMap<VarHandle, NodeId> = match &msg {
                PolicyMsg::LockRelease { var, .. } => {
                    let mut m = HashMap::new();
                    m.insert(*var, self.var(*var).home);
                    m
                }
                _ => HashMap::new(),
            };
            let lookup =
                move |v: VarHandle| *homes.get(&v).expect("lock manager for unknown variable");
            self.locks.on_message(env, at, &msg, lookup);
            return;
        }
        match msg {
            PolicyMsg::FhReadReq { tx, var } => self.on_read_req(env, tx, var),
            PolicyMsg::FhFetchOwner { tx, var } => {
                // The owner answers with the data.
                let home = self.var(var).home;
                let bytes = self.data_bytes(env, var);
                env.bump(Counter::DataMessages, 1);
                env.send(at, home, bytes, PolicyMsg::FhOwnerData { tx, var });
            }
            PolicyMsg::FhOwnerData { tx, var } => self.on_owner_data(env, tx, var),
            PolicyMsg::FhReadData { tx, var } => self.on_read_data(env, tx, var),
            PolicyMsg::FhWriteReq { tx, var } => self.on_write_req(env, tx, var),
            PolicyMsg::FhInval { tx, var } => self.on_inval(env, at, tx, var),
            PolicyMsg::FhInvalAck { tx, var } => self.on_inval_ack(env, tx, var),
            PolicyMsg::FhWriteGrant { tx, var } => self.on_write_grant(env, tx, var),
            other => panic!("fixed-home policy received foreign message {other:?}"),
        }
    }
}
