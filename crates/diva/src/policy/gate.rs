//! Per-variable transaction serialisation.

use super::{AccessKind, TxId};
use dm_mesh::NodeId;
use std::collections::VecDeque;

/// Serialises conflicting transactions on one variable.
///
/// Reads may proceed concurrently with each other; a write waits until all
/// outstanding transactions on the variable have completed and blocks any
/// later transaction until it completes itself (single-writer /
/// multiple-reader admission). The applications of the paper separate
/// conflicting accesses by barriers and locks, so queueing here is rare, but
/// the gate keeps the protocol state machines race-free in all cases.
#[derive(Debug, Default)]
pub struct VarGate {
    readers: u32,
    writer_active: bool,
    queue: VecDeque<(TxId, NodeId, AccessKind)>,
}

impl VarGate {
    /// Create an idle gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to admit a transaction. Returns `true` if it may start now;
    /// otherwise it is queued and will be returned by a later
    /// [`VarGate::release`].
    pub fn admit(&mut self, tx: TxId, proc: NodeId, kind: AccessKind) -> bool {
        let can_start = match kind {
            AccessKind::Read => !self.writer_active && self.queue.is_empty(),
            AccessKind::Write => !self.writer_active && self.readers == 0 && self.queue.is_empty(),
        };
        if can_start {
            match kind {
                AccessKind::Read => self.readers += 1,
                AccessKind::Write => self.writer_active = true,
            }
            true
        } else {
            self.queue.push_back((tx, proc, kind));
            false
        }
    }

    /// Mark a previously admitted transaction of the given kind as finished.
    /// Returns the transactions that become runnable now (already accounted
    /// as admitted).
    pub fn release(&mut self, kind: AccessKind) -> Vec<(TxId, NodeId, AccessKind)> {
        match kind {
            AccessKind::Read => {
                debug_assert!(self.readers > 0, "release without admit");
                self.readers -= 1;
            }
            AccessKind::Write => {
                debug_assert!(self.writer_active, "release without admit");
                self.writer_active = false;
            }
        }
        let mut admitted = Vec::new();
        while let Some(&(tx, proc, k)) = self.queue.front() {
            let can_start = match k {
                AccessKind::Read => !self.writer_active,
                AccessKind::Write => !self.writer_active && self.readers == 0,
            };
            if !can_start {
                break;
            }
            match k {
                AccessKind::Read => self.readers += 1,
                AccessKind::Write => self.writer_active = true,
            }
            self.queue.pop_front();
            admitted.push((tx, proc, k));
        }
        admitted
    }

    /// Number of transactions waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether no transaction is active or queued.
    pub fn is_idle(&self) -> bool {
        self.readers == 0 && !self.writer_active && self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(i: u64) -> TxId {
        TxId(i)
    }
    fn p(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn concurrent_reads_are_admitted() {
        let mut g = VarGate::new();
        assert!(g.admit(tx(1), p(0), AccessKind::Read));
        assert!(g.admit(tx(2), p(1), AccessKind::Read));
        assert!(g.admit(tx(3), p(2), AccessKind::Read));
        assert_eq!(g.queued(), 0);
    }

    #[test]
    fn write_waits_for_readers() {
        let mut g = VarGate::new();
        assert!(g.admit(tx(1), p(0), AccessKind::Read));
        assert!(g.admit(tx(2), p(1), AccessKind::Read));
        assert!(!g.admit(tx(3), p(2), AccessKind::Write));
        assert!(g.release(AccessKind::Read).is_empty());
        let admitted = g.release(AccessKind::Read);
        assert_eq!(admitted, vec![(tx(3), p(2), AccessKind::Write)]);
    }

    #[test]
    fn reads_behind_a_queued_write_wait_their_turn() {
        let mut g = VarGate::new();
        assert!(g.admit(tx(1), p(0), AccessKind::Read));
        assert!(!g.admit(tx(2), p(1), AccessKind::Write));
        // A read arriving after a queued write must not overtake it.
        assert!(!g.admit(tx(3), p(2), AccessKind::Read));
        let after_read = g.release(AccessKind::Read);
        assert_eq!(after_read, vec![(tx(2), p(1), AccessKind::Write)]);
        let after_write = g.release(AccessKind::Write);
        assert_eq!(after_write, vec![(tx(3), p(2), AccessKind::Read)]);
        g.release(AccessKind::Read);
        assert!(g.is_idle());
    }

    #[test]
    fn writes_are_mutually_exclusive() {
        let mut g = VarGate::new();
        assert!(g.admit(tx(1), p(0), AccessKind::Write));
        assert!(!g.admit(tx(2), p(1), AccessKind::Write));
        let admitted = g.release(AccessKind::Write);
        assert_eq!(admitted, vec![(tx(2), p(1), AccessKind::Write)]);
    }

    #[test]
    fn release_admits_multiple_reads_at_once() {
        let mut g = VarGate::new();
        assert!(g.admit(tx(1), p(0), AccessKind::Write));
        assert!(!g.admit(tx(2), p(1), AccessKind::Read));
        assert!(!g.admit(tx(3), p(2), AccessKind::Read));
        let admitted = g.release(AccessKind::Write);
        assert_eq!(admitted.len(), 2);
        assert!(admitted.iter().all(|&(_, _, k)| k == AccessKind::Read));
    }
}
