//! Distributed locks on global variables.
//!
//! The paper states that the DIVA library implements locking (and barriers)
//! with "elegant algorithms that use access trees" but gives no further
//! detail. We model each lock as a FIFO queue managed at a single *manager
//! node* — the embedded root of the variable's access tree for the
//! access-tree strategy, the variable's home for the fixed-home strategy (see
//! DESIGN.md for the substitution rationale). Requests, grants and releases
//! are real simulated messages, so lock contention produces network traffic
//! and serialisation at the manager, which is the behaviour that matters for
//! the Barnes-Hut tree-building phase.

use super::{Counter, PolicyEnv, PolicyMsg, TxId};
use crate::fasthash::FastMap;
use crate::var::VarHandle;
use dm_mesh::NodeId;
use std::collections::VecDeque;

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<NodeId>,
    /// Waiting requests: (transaction, requesting processor).
    queue: VecDeque<(TxId, NodeId)>,
}

/// Lock bookkeeping shared by both policies.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: FastMap<VarHandle, LockState>,
}

impl LockTable {
    /// Create an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A processor wants to acquire the lock of `var`, whose manager node is
    /// `manager`.
    pub fn acquire(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        manager: NodeId,
    ) {
        env.bump(Counter::Locks, 1);
        if proc == manager {
            let state = self.locks.entry(var).or_default();
            if state.held_by.is_none() {
                state.held_by = Some(proc);
                env.complete(tx);
            } else {
                state.queue.push_back((tx, proc));
            }
        } else {
            let bytes = env.config().control_msg_bytes;
            env.bump(Counter::ControlMessages, 1);
            env.send(proc, manager, bytes, PolicyMsg::LockReq { tx, var, proc });
        }
    }

    /// A processor releases the lock of `var` (manager node `manager`). The
    /// release completes for the caller as soon as the release message has
    /// left its communication port.
    pub fn release(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        manager: NodeId,
    ) {
        if proc == manager {
            self.do_release(env, var, manager);
            env.complete(tx);
        } else {
            let bytes = env.config().control_msg_bytes;
            env.bump(Counter::ControlMessages, 1);
            let sender_free = env.send(proc, manager, bytes, PolicyMsg::LockRelease { var, proc });
            env.complete_at(tx, sender_free);
        }
    }

    /// Handle a lock protocol message arriving at mesh node `at`. Returns
    /// `true` if the message was a lock message (and has been handled).
    pub fn on_message(
        &mut self,
        env: &mut dyn PolicyEnv,
        at: NodeId,
        msg: &PolicyMsg,
        manager_of: impl Fn(VarHandle) -> NodeId,
    ) -> bool {
        match *msg {
            // In-flight lock traffic from a processor lost to a node failure
            // is dropped: its held locks were already force-released at
            // failure time, so a straggling `LockReq` would wedge the lock on
            // a dead holder and a straggling `LockRelease` would release a
            // lock the teardown already handed to the next waiter.
            PolicyMsg::LockReq { proc, .. } | PolicyMsg::LockRelease { proc, .. }
                if env.app_lost(proc) =>
            {
                true
            }
            PolicyMsg::LockReq { tx, var, proc } => {
                let state = self.locks.entry(var).or_default();
                if state.held_by.is_none() {
                    state.held_by = Some(proc);
                    let bytes = env.config().control_msg_bytes;
                    env.bump(Counter::ControlMessages, 1);
                    env.send(at, proc, bytes, PolicyMsg::LockGrant { tx, var });
                } else {
                    state.queue.push_back((tx, proc));
                }
                true
            }
            PolicyMsg::LockGrant { tx, .. } => {
                env.complete(tx);
                true
            }
            PolicyMsg::LockRelease { var, .. } => {
                let manager = manager_of(var);
                self.do_release(env, var, manager);
                true
            }
            _ => false,
        }
    }

    /// Release the lock of `var` at its manager and grant it to the next
    /// waiter, if any.
    fn do_release(&mut self, env: &mut dyn PolicyEnv, var: VarHandle, manager: NodeId) {
        let state = self.locks.entry(var).or_default();
        assert!(
            state.held_by.is_some(),
            "unlock of a lock that is not held ({var})"
        );
        state.held_by = None;
        if let Some((tx, proc)) = state.queue.pop_front() {
            state.held_by = Some(proc);
            if proc == manager {
                env.complete(tx);
            } else {
                let bytes = env.config().control_msg_bytes;
                env.bump(Counter::ControlMessages, 1);
                env.send(manager, proc, bytes, PolicyMsg::LockGrant { tx, var });
            }
        }
    }

    /// Tear down the lock footprint of a processor lost to a node failure:
    /// purge its queued requests and force-release any lock it holds,
    /// granting the lock to the next surviving waiter. Unlike
    /// [`LockTable::evict`] this deliberately operates on held and contended
    /// entries — a dead holder must never wedge its waiters. Entries are
    /// visited in variable-handle order so both backends grant identically;
    /// every forced release is tallied through
    /// [`PolicyEnv::note_force_release`].
    pub fn force_release(
        &mut self,
        env: &mut dyn PolicyEnv,
        victim: NodeId,
        manager_of: impl Fn(VarHandle) -> NodeId,
    ) {
        let mut vars: Vec<VarHandle> = self.locks.keys().copied().collect();
        vars.sort_unstable();
        for var in vars {
            let state = self.locks.get_mut(&var).expect("key just listed");
            // The victim's waiting requests can never be granted — its
            // processor is gone — so they leave the queue silently.
            state.queue.retain(|&(_, proc)| proc != victim);
            if state.held_by != Some(victim) {
                continue;
            }
            env.note_force_release();
            let next = state.queue.pop_front();
            state.held_by = next.map(|(_, proc)| proc);
            if let Some((tx, proc)) = next {
                let manager = manager_of(var);
                if proc == manager {
                    env.complete(tx);
                } else {
                    let bytes = env.config().control_msg_bytes;
                    env.bump(Counter::ControlMessages, 1);
                    env.send(manager, proc, bytes, PolicyMsg::LockGrant { tx, var });
                }
            }
        }
    }

    /// Handles of every variable with a lock entry, in variable order (for
    /// the policies' force-release manager lookup).
    pub fn lock_vars(&self) -> Vec<VarHandle> {
        let mut vars: Vec<VarHandle> = self.locks.keys().copied().collect();
        vars.sort_unstable();
        vars
    }

    /// Evict the lock entry of a variable that is being freed. The lock must
    /// be quiescent: freeing a variable whose lock is still held (which
    /// includes an unlock whose release message has not yet reached the
    /// manager) or contended is an application lifecycle bug and fails
    /// loudly — a silently dropped entry would otherwise be recreated for a
    /// recycled handle and corrupt an unrelated variable's lock.
    pub fn evict(&mut self, var: VarHandle) {
        if let Some(state) = self.locks.remove(&var) {
            assert!(
                state.held_by.is_none() && state.queue.is_empty(),
                "freeing {var} whose lock is held by {:?} with {} waiter(s)",
                state.held_by,
                state.queue.len()
            );
        }
    }

    /// Current holder of the lock of `var`, if any (for tests and diagnostics).
    pub fn holder(&self, var: VarHandle) -> Option<NodeId> {
        self.locks.get(&var).and_then(|s| s.held_by)
    }

    /// Number of processors waiting for the lock of `var`.
    pub fn waiting(&self, var: VarHandle) -> usize {
        self.locks.get(&var).map(|s| s.queue.len()).unwrap_or(0)
    }
}
