//! Data-management policies (strategies).
//!
//! A [`Policy`] decides how copies of global variables are created, located
//! and invalidated. The two policies of the paper are implemented:
//!
//! * [`AccessTreePolicy`](access_tree::AccessTreePolicy) — the access-tree
//!   strategy (the paper's contribution), and
//! * [`FixedHomePolicy`](fixed_home::FixedHomePolicy) — the standard
//!   fixed-home / ownership caching scheme used as the baseline.
//!
//! Policies are driven by the runtime: `on_access` is called when a processor
//! issues a read or write that cannot be satisfied locally, `on_lock` /
//! `on_unlock` when it acquires or releases a variable lock, and `on_message`
//! whenever a protocol message scheduled by the policy arrives at its
//! destination. Policies talk back to the runtime exclusively through
//! [`PolicyEnv`]: they send messages (which are routed, timed and counted by
//! the network model) and eventually complete the transaction.

pub mod access_tree;
pub mod fixed_home;
mod gate;
mod lock_table;
#[cfg(test)]
mod proto_tests;

pub use gate::VarGate;
pub use lock_table::LockTable;

use crate::var::VarHandle;
use dm_engine::{MachineConfig, SimTime};
use dm_mesh::{AnyTopology, NodeId, TreeNodeId};

/// Identifier of an in-flight transaction (one blocked processor operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// Kind of a shared-variable access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// Statistics counters a policy can bump; they end up in the
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Read satisfied by a copy already held by the reading processor.
    ReadHit,
    /// Read that required protocol communication.
    ReadMiss,
    /// Write served locally (the writer already held the only copy).
    WriteLocal,
    /// Write that required protocol communication.
    WriteRemote,
    /// Copies of variables created (on any node of an access tree, or any
    /// processor cache for the fixed-home strategy).
    CopiesCreated,
    /// Copies invalidated.
    Invalidations,
    /// Control messages sent (requests, invalidations, acknowledgements,
    /// lock traffic).
    ControlMessages,
    /// Data-carrying messages sent.
    DataMessages,
    /// Copies evicted because of bounded memory capacity.
    Evictions,
    /// Lock acquisitions.
    Locks,
}

/// Number of distinct [`Counter`] variants (size of the counter table).
pub const COUNTER_COUNT: usize = 10;

impl Counter {
    /// Dense index of the counter.
    pub fn index(self) -> usize {
        match self {
            Counter::ReadHit => 0,
            Counter::ReadMiss => 1,
            Counter::WriteLocal => 2,
            Counter::WriteRemote => 3,
            Counter::CopiesCreated => 4,
            Counter::Invalidations => 5,
            Counter::ControlMessages => 6,
            Counter::DataMessages => 7,
            Counter::Evictions => 8,
            Counter::Locks => 9,
        }
    }

    /// All counters, in index order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::ReadHit,
        Counter::ReadMiss,
        Counter::WriteLocal,
        Counter::WriteRemote,
        Counter::CopiesCreated,
        Counter::Invalidations,
        Counter::ControlMessages,
        Counter::DataMessages,
        Counter::Evictions,
        Counter::Locks,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ReadHit => "read_hits",
            Counter::ReadMiss => "read_misses",
            Counter::WriteLocal => "writes_local",
            Counter::WriteRemote => "writes_remote",
            Counter::CopiesCreated => "copies_created",
            Counter::Invalidations => "invalidations",
            Counter::ControlMessages => "control_messages",
            Counter::DataMessages => "data_messages",
            Counter::Evictions => "evictions",
            Counter::Locks => "locks",
        }
    }
}

/// A protocol message in flight between two mesh nodes.
///
/// The variants cover both policies and the shared lock protocol; each policy
/// only ever receives the variants it sent.
#[derive(Debug, Clone)]
pub enum PolicyMsg {
    // ---- access-tree strategy -------------------------------------------------
    /// Read request travelling up/down the access tree; `at` is the tree node
    /// that processes the message next.
    AtReadStep {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
        /// Tree node the message is arriving at.
        at: TreeNodeId,
        /// Mesh position of `at` (computed by the sender; carried so the
        /// receiver does not re-derive the embedding).
        at_pos: NodeId,
    },
    /// Data message carrying the value back towards the reader, creating a
    /// copy at every tree node it passes. `path_pos` indexes into the
    /// transaction's recorded path (counting down towards the requester).
    AtReadData {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
        /// Index into the recorded request path of the node being visited.
        path_pos: u32,
        /// Mesh position of the visited node (carried by the sender).
        at_pos: NodeId,
    },
    /// Write request (carrying the new value) travelling towards the nearest
    /// copy.
    AtWriteStep {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
        /// Tree node the message is arriving at.
        at: TreeNodeId,
        /// Mesh position of `at` (carried by the sender).
        at_pos: NodeId,
    },
    /// Invalidation multicast over the copy component.
    AtInval {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
        /// Tree node being invalidated.
        at: TreeNodeId,
        /// Mesh position of `at` (carried by the sender).
        at_pos: NodeId,
    },
    /// Acknowledgement of an invalidation subtree, travelling back towards the
    /// multicast root.
    AtInvalAck {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
        /// Tree node that sends the acknowledgement (towards its multicast parent).
        from: TreeNodeId,
        /// Tree node the acknowledgement is delivered to.
        to: TreeNodeId,
        /// Mesh position of `to` (carried by the sender).
        to_pos: NodeId,
    },
    /// Modified value travelling back from the update point to the writer,
    /// creating copies along the way.
    AtWriteData {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
        /// Index into the recorded request path of the node being visited.
        path_pos: u32,
        /// Mesh position of the visited node (carried by the sender).
        at_pos: NodeId,
    },

    // ---- fixed-home strategy ---------------------------------------------------
    /// Read request arriving at the variable's home.
    FhReadReq {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
    },
    /// Home asks the current owner for the up-to-date value.
    FhFetchOwner {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
    },
    /// Owner returns the value to the home (main memory).
    FhOwnerData {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
    },
    /// Home delivers the value to the reader.
    FhReadData {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being read.
        var: VarHandle,
    },
    /// Write request arriving at the variable's home.
    FhWriteReq {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
    },
    /// Invalidation of one cached copy.
    FhInval {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
    },
    /// Acknowledgement of an invalidation, back to the home.
    FhInvalAck {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
    },
    /// Home grants ownership to the writer.
    FhWriteGrant {
        /// Transaction this message belongs to.
        tx: TxId,
        /// Variable being written.
        var: VarHandle,
    },

    // ---- distributed locks (shared by both policies) ----------------------------
    /// Lock request arriving at the lock manager node.
    LockReq {
        /// Transaction of the requesting processor's `lock` call.
        tx: TxId,
        /// Variable whose lock is requested.
        var: VarHandle,
        /// Requesting processor.
        proc: NodeId,
    },
    /// Lock grant arriving at the requesting processor.
    LockGrant {
        /// Transaction of the requesting processor's `lock` call.
        tx: TxId,
        /// Variable whose lock is granted.
        var: VarHandle,
    },
    /// Lock release arriving at the lock manager node.
    LockRelease {
        /// Variable whose lock is released.
        var: VarHandle,
        /// Processor releasing the lock.
        proc: NodeId,
    },
}

/// The interface through which a policy interacts with the runtime.
///
/// All sends are routed along the topology's deterministic paths, timed by
/// the [`dm_engine::LinkNetwork`] model, and counted towards the congestion
/// statistics. `complete` wakes the processor whose operation started the
/// transaction.
pub trait PolicyEnv {
    /// Current virtual time (issue time of the operation being handled, or
    /// arrival time of the message being handled).
    fn now(&self) -> SimTime;
    /// The machine parameters.
    fn config(&self) -> &MachineConfig;
    /// The network topology.
    fn topology(&self) -> &AnyTopology;
    /// Size of a variable in bytes.
    fn var_bytes(&self, var: VarHandle) -> u32;
    /// Send a protocol message of `bytes` bytes from mesh node `from` to mesh
    /// node `to`; it is delivered to [`Policy::on_message`] at its arrival
    /// time. Returns the time at which the sender's communication port is
    /// free again.
    fn send(&mut self, from: NodeId, to: NodeId, bytes: u32, msg: PolicyMsg) -> SimTime;
    /// Complete a transaction at the current time, waking the processor that
    /// issued it.
    fn complete(&mut self, tx: TxId);
    /// Complete a transaction at an explicit time `at` (≥ `now`).
    fn complete_at(&mut self, tx: TxId, at: SimTime);
    /// Update the runtime's fast-path information: processor `proc` now does /
    /// does not hold a readable copy of `var`.
    fn set_presence(&mut self, proc: NodeId, var: VarHandle, present: bool);
    /// Bump a statistics counter by `n`.
    fn bump(&mut self, counter: Counter, n: u64);
    /// Charge one re-homing migration message of `bytes` bytes from the
    /// failed node to its successor: the traffic is routed, timed and counted
    /// like any message (so robustness costs show up in congestion) and
    /// tallied in the report's [`FaultTally`](crate::FaultTally), but
    /// delivers to no handler — re-homing mutates directory state in place.
    /// Default no-op so protocol test harnesses need not model faults.
    fn charge_rehome(&mut self, _from: NodeId, _to: NodeId, _bytes: u32) {}
    /// Whether `node`'s application processor has been fail-stopped by a
    /// node failure. Lock handling consults this to drop in-flight requests
    /// and releases from dead processors. Default `false`: without the fault
    /// subsystem no processor is ever lost.
    fn app_lost(&self, _node: NodeId) -> bool {
        false
    }
    /// Tally one lock force-released because its holder's processor was
    /// lost. Default no-op so protocol test harnesses need not model faults.
    fn note_force_release(&mut self) {}
}

/// A data-management strategy.
///
/// Besides the protocol callbacks, a policy participates in the **variable
/// lifecycle** (see [`crate::var`]): `register_var` sets up per-variable
/// protocol state, `free_var` tears it down again when the runtime retires
/// the variable, and `end_epoch` lets the policy compact bulk bookkeeping at
/// application epoch boundaries. Lifecycle calls are pure bookkeeping: they
/// send no messages and consume no simulated time, so a run with reclamation
/// produces bit-identical simulated quantities to one without.
pub trait Policy: Send {
    /// Human-readable strategy name (used in reports and tables).
    fn name(&self) -> String;

    /// Register a newly created variable whose only copy lives at `owner`.
    /// The slot of `var` may be recycled from an earlier freed variable.
    fn register_var(&mut self, var: VarHandle, owner: NodeId, bytes: u32);

    /// Tear down all per-variable protocol state of `var`: clear the copy
    /// set, revoke every presence bit through
    /// [`PolicyEnv::set_presence`], and evict the lock entry. The variable
    /// must be quiescent — no in-flight transactions, no held or queued lock
    /// (the runtime's applications free at barriers, where this holds).
    ///
    /// # Panics
    /// Panics if the variable is unknown, still gated, or its lock is held.
    fn free_var(&mut self, env: &mut dyn PolicyEnv, var: VarHandle);

    /// An application epoch ended (a processor executed
    /// [`crate::Op::EndEpoch`] and the runtime freed its epoch variables).
    /// Policies use this to compact bulk state — e.g. trimming the dense
    /// per-variable vectors back to the live prefix.
    fn end_epoch(&mut self, env: &mut dyn PolicyEnv);

    /// A processor issued a read or write that was not satisfied from its
    /// local cache.
    fn on_access(
        &mut self,
        env: &mut dyn PolicyEnv,
        tx: TxId,
        proc: NodeId,
        var: VarHandle,
        kind: AccessKind,
    );

    /// A processor wants to acquire the lock attached to `var`.
    fn on_lock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle);

    /// A processor releases the lock attached to `var`.
    fn on_unlock(&mut self, env: &mut dyn PolicyEnv, tx: TxId, proc: NodeId, var: VarHandle);

    /// A protocol message previously sent via [`PolicyEnv::send`] arrived at
    /// mesh node `at`.
    fn on_message(&mut self, env: &mut dyn PolicyEnv, at: NodeId, msg: PolicyMsg);

    /// Node `victim`'s data-management role failed (fail-stop): migrate every
    /// directory/home/lock responsibility it held to `successor`, charging
    /// the migration traffic through [`PolicyEnv::charge_rehome`]. The
    /// victim's *application* processor keeps running — only the strategy's
    /// state held at the victim moves. Default no-op: a policy that ignores
    /// node failures keeps routing protocol traffic through the victim.
    fn on_node_fail(&mut self, _env: &mut dyn PolicyEnv, _victim: NodeId, _successor: NodeId) {}

    /// Node `victim`'s *application* processor was fail-stopped (the runtime
    /// fail-stops resident programs along with the node's DM role). The
    /// policy must tear down the victim's lock footprint — force-releasing
    /// held locks so surviving waiters are never wedged — via
    /// [`LockTable::force_release`](lock_table::LockTable::force_release).
    /// Called after `on_node_fail` of the same victim. Default no-op.
    fn on_app_loss(&mut self, _env: &mut dyn PolicyEnv, _victim: NodeId) {}

    /// Node `victim` rejoined as a fresh DM successor. Pure bookkeeping: the
    /// directory state it lost stays where it was re-homed (pulling it back
    /// would cost a second migration for no placement benefit — the
    /// successor is as good a host as the restored node), so the policy only
    /// drops the victim's re-homing redirect, making it eligible again for
    /// new registrations and future successions. Default no-op.
    fn on_node_restore(&mut self, _victim: NodeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_unique() {
        let mut seen = vec![false; COUNTER_COUNT];
        for c in Counter::ALL {
            let i = c.index();
            assert!(i < COUNTER_COUNT);
            assert!(!seen[i], "duplicate counter index {i}");
            seen[i] = true;
            assert!(!c.name().is_empty());
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
