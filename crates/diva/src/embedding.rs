//! Embedding of access trees into the network.
//!
//! Every global variable has its own *access tree* — a copy of the
//! decomposition tree — whose nodes must be mapped to processors of the
//! network. The theoretical analysis uses a fully random embedding (every
//! tree node is mapped to a uniformly random processor of its submesh). The
//! DIVA library uses the *modified* (regular) embedding described in Section
//! 2 of the paper: only the root is placed at random; every other node
//! copies the relative position of its parent, reduced modulo its own
//! submesh size. The modified embedding shortens expected distances between
//! neighbouring tree nodes at the price of correlations the theory does not
//! cover — the paper reports no adverse effects, and both variants are
//! available here.
//!
//! On grid topologies (mesh, torus) the rules operate on 2-D submesh
//! coordinates, exactly as in the paper (and bit-identically to the
//! pre-topology-abstraction code on meshes). On the other topologies the
//! same rules operate on each tree node's *region* in decomposition order:
//! the modified embedding reduces the parent's relative rank modulo the
//! region size, the random embedding picks a pseudo-random rank.

use dm_mesh::{DecompositionTree, Mesh, NodeId, TreeNodeId};
use dm_rng::splitmix64;
use std::cell::RefCell;
use std::sync::Arc;

/// Which embedding rule maps access-tree nodes to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingMode {
    /// The practical embedding of the DIVA library: the root is random, every
    /// descendant reuses its parent's relative position modulo its own
    /// submesh dimensions.
    Modified,
    /// The embedding of the theoretical analysis: every tree node is mapped
    /// to an independently (pseudo-)random processor of its submesh, derived
    /// deterministically from the variable's seed.
    Random,
}

/// Per-variable randomness driving the embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarPlacement {
    /// Processor the root of the variable's access tree is mapped to.
    pub root: NodeId,
    /// Seed for the per-node pseudo-random choices of the [`EmbeddingMode::Random`] mode.
    pub seed: u64,
}

/// Number of entries of the direct-mapped position cache (a power of two).
const POSITION_CACHE_SLOTS: usize = 1 << 14;

/// Maps access-tree nodes of individual variables to mesh processors.
#[derive(Debug)]
pub struct Embedder {
    tree: Arc<DecompositionTree>,
    mode: EmbeddingMode,
    /// Direct-mapped memo for [`EmbeddingMode::Modified`] positions, which
    /// depend only on `(root, tree node)`: `(key, position)` pairs, replaced
    /// on collision. Embedding runs a few times per simulated protocol
    /// message, and protocol traffic revisits the same tree edges over and
    /// over. Interior mutability keeps the lookup API `&self`; the simulator
    /// drives each policy from a single thread. `RefCell` is `Send` (the
    /// parallel sweep executor moves whole simulations between worker
    /// threads, each owned by one thread at a time) but deliberately not
    /// `Sync` — sharing one embedder across threads is not a supported use,
    /// and the compile-time `Send` assertions in `runtime` pin exactly this
    /// contract.
    cache: RefCell<Vec<(u64, NodeId)>>,
}

impl Embedder {
    /// Create an embedder for the given decomposition tree and mode.
    pub fn new(tree: Arc<DecompositionTree>, mode: EmbeddingMode) -> Self {
        Embedder {
            tree,
            mode,
            cache: RefCell::new(vec![(u64::MAX, NodeId(0)); POSITION_CACHE_SLOTS]),
        }
    }

    /// The decomposition tree all access trees are copies of.
    pub fn tree(&self) -> &DecompositionTree {
        &self.tree
    }

    /// A cheap shared handle to the decomposition tree.
    pub fn tree_arc(&self) -> Arc<DecompositionTree> {
        Arc::clone(&self.tree)
    }

    /// The coordinate mesh the trees are embedded into (grid topologies
    /// only — panics otherwise; see [`DecompositionTree::mesh`]).
    pub fn mesh(&self) -> &Mesh {
        self.tree.mesh()
    }

    /// The embedding mode.
    pub fn mode(&self) -> EmbeddingMode {
        self.mode
    }

    /// The processor that simulates tree node `node` of the access tree of a
    /// variable with placement `placement`.
    ///
    /// Leaves are always mapped to the processor they represent, regardless of
    /// the mode.
    pub fn position(&self, placement: VarPlacement, node: TreeNodeId) -> NodeId {
        if let Some(p) = self.tree.node(node).proc {
            return p;
        }
        match self.mode {
            EmbeddingMode::Modified => {
                // Modified positions depend only on (root, node) — memoize.
                let key = (placement.root.0 as u64) << 32 | node.0 as u64;
                let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    >> (64 - POSITION_CACHE_SLOTS.trailing_zeros()))
                    as usize;
                {
                    let cache = self.cache.borrow();
                    let (k, pos) = cache[slot];
                    if k == key {
                        return pos;
                    }
                }
                let pos = self.position_modified(placement, node);
                self.cache.borrow_mut()[slot] = (key, pos);
                pos
            }
            EmbeddingMode::Random => self.position_random(placement, node),
        }
    }

    /// Modified embedding: fold the root position down the path from the root
    /// to `node`, taking the parent's relative coordinates modulo the child's
    /// submesh dimensions at every step (grid topologies), or the parent's
    /// relative rank modulo the child's region size (other topologies).
    ///
    /// `position` is called several times per simulated protocol message, so
    /// the root-to-node fold recurses along the parent chain (depth is
    /// logarithmic in the network size) instead of materialising the path.
    fn position_modified(&self, placement: VarPlacement, node: TreeNodeId) -> NodeId {
        if !self.tree.has_grid() {
            let rel = self.rel_rank_modified(placement, node);
            let (lo, _) = self.tree.leaf_range(node);
            return self.tree.leaf_order()[lo + rel];
        }
        let mesh = self.tree.mesh();
        let (rel_r, rel_c) = self.rel_pos_modified(placement, node);
        let sub = self.tree.submesh(node);
        mesh.node_at(sub.row0 + rel_r, sub.col0 + rel_c)
    }

    /// Relative rank of the modified embedding within `node`'s region
    /// (non-grid topologies).
    fn rel_rank_modified(&self, placement: VarPlacement, node: TreeNodeId) -> usize {
        match self.tree.parent(node) {
            // The root's region is the whole network: its relative rank is
            // the root processor's rank in decomposition order.
            None => self.tree.leaf_rank(placement.root),
            Some(parent) => {
                let rel = self.rel_rank_modified(placement, parent);
                let (lo, hi) = self.tree.leaf_range(node);
                rel % (hi - lo)
            }
        }
    }

    /// Relative coordinates of the modified embedding within `node`'s submesh.
    fn rel_pos_modified(&self, placement: VarPlacement, node: TreeNodeId) -> (usize, usize) {
        match self.tree.parent(node) {
            None => {
                let root_sub = self.tree.submesh(node);
                let (root_r, root_c) = self.tree.mesh().coord(placement.root);
                (root_r - root_sub.row0, root_c - root_sub.col0)
            }
            Some(parent) => {
                let (rel_r, rel_c) = self.rel_pos_modified(placement, parent);
                let sub = self.tree.submesh(node);
                (rel_r % sub.rows, rel_c % sub.cols)
            }
        }
    }

    /// Random embedding: an independent pseudo-random processor of the node's
    /// submesh (or region), derived from the variable seed and the tree-node
    /// id.
    fn position_random(&self, placement: VarPlacement, node: TreeNodeId) -> NodeId {
        if node == self.tree.root() {
            return placement.root;
        }
        let h = splitmix64(placement.seed ^ ((node.0 as u64) << 32 | 0xA5A5_5A5A));
        if !self.tree.has_grid() {
            let (lo, hi) = self.tree.leaf_range(node);
            return self.tree.leaf_order()[lo + (h % (hi - lo) as u64) as usize];
        }
        let mesh = self.tree.mesh();
        let sub = self.tree.submesh(node);
        let idx = (h % sub.size() as u64) as usize;
        let dr = idx / sub.cols;
        let dc = idx % sub.cols;
        mesh.node_at(sub.row0 + dr, sub.col0 + dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::TreeShape;

    fn embedder(rows: usize, cols: usize, shape: TreeShape, mode: EmbeddingMode) -> Embedder {
        let mesh = Mesh::new(rows, cols);
        Embedder::new(Arc::new(DecompositionTree::build(&mesh, shape)), mode)
    }

    fn placements(mesh_nodes: usize) -> Vec<VarPlacement> {
        (0..mesh_nodes as u32)
            .map(|i| VarPlacement {
                root: NodeId(i),
                seed: 0x1234_5678_9ABC_DEF0 ^ ((i as u64) * 7919),
            })
            .collect()
    }

    #[test]
    fn every_node_lands_in_its_submesh() {
        for mode in [EmbeddingMode::Modified, EmbeddingMode::Random] {
            for shape in [TreeShape::binary(), TreeShape::quad(), TreeShape::lk(2, 4)] {
                let e = embedder(8, 8, shape, mode);
                let mesh = e.mesh().clone();
                for placement in placements(mesh.nodes()).into_iter().step_by(7) {
                    for t in e.tree().node_ids() {
                        let pos = e.position(placement, t);
                        assert!(
                            e.tree().submesh(t).contains(&mesh, pos),
                            "{mode:?} {shape:?} node {t:?} mapped outside its submesh"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn leaves_map_to_their_processor() {
        for mode in [EmbeddingMode::Modified, EmbeddingMode::Random] {
            let e = embedder(6, 5, TreeShape::binary(), mode);
            let placement = VarPlacement {
                root: NodeId(13),
                seed: 42,
            };
            for p in e.mesh().clone().node_ids() {
                let leaf = e.tree().leaf_of(p);
                assert_eq!(e.position(placement, leaf), p);
            }
        }
    }

    #[test]
    fn root_maps_to_the_placement_root() {
        for mode in [EmbeddingMode::Modified, EmbeddingMode::Random] {
            let e = embedder(8, 8, TreeShape::quad(), mode);
            for placement in placements(64) {
                assert_eq!(e.position(placement, e.tree().root()), placement.root);
            }
        }
    }

    #[test]
    fn modified_embedding_follows_the_paper_rule() {
        // On an 8x8 mesh with the 4-ary tree, a root at relative position
        // (r, c) puts the child for quadrant (qr, qc) at
        // (4*qr + r mod 4, 4*qc + c mod 4).
        let e = embedder(8, 8, TreeShape::quad(), EmbeddingMode::Modified);
        let mesh = e.mesh().clone();
        let root_pos = mesh.node_at(5, 6);
        let placement = VarPlacement {
            root: root_pos,
            seed: 0,
        };
        let root = e.tree().root();
        for &child in e.tree().children(root) {
            let sub = e.tree().submesh(child);
            let pos = e.position(placement, child);
            let (r, c) = mesh.coord(pos);
            assert_eq!(r, sub.row0 + 5 % sub.rows);
            assert_eq!(c, sub.col0 + 6 % sub.cols);
        }
    }

    #[test]
    fn modified_embedding_keeps_parent_child_distance_small() {
        // The whole point of the modified embedding: the expected distance
        // between a node and its parent is at most about the side length of
        // the parent's submesh.
        let e = embedder(16, 16, TreeShape::quad(), EmbeddingMode::Modified);
        let mesh = e.mesh().clone();
        for placement in placements(mesh.nodes()).into_iter().step_by(13) {
            for t in e.tree().node_ids() {
                if let Some(parent) = e.tree().parent(t) {
                    let d = mesh.distance(e.position(placement, t), e.position(placement, parent));
                    let parent_sub = e.tree().submesh(parent);
                    assert!(
                        d <= parent_sub.rows + parent_sub.cols,
                        "parent-child distance {d} too large"
                    );
                }
            }
        }
    }

    #[test]
    fn random_embedding_is_deterministic_per_seed() {
        let e = embedder(8, 8, TreeShape::binary(), EmbeddingMode::Random);
        let p1 = VarPlacement {
            root: NodeId(3),
            seed: 99,
        };
        let p2 = VarPlacement {
            root: NodeId(3),
            seed: 99,
        };
        let p3 = VarPlacement {
            root: NodeId(3),
            seed: 100,
        };
        let mut differs = false;
        for t in e.tree().node_ids() {
            assert_eq!(e.position(p1, t), e.position(p2, t));
            if e.position(p1, t) != e.position(p3, t) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different embeddings");
    }

    #[test]
    fn non_grid_embeddings_land_in_their_region() {
        use dm_mesh::{AnyTopology, FatTree, Hypercube};
        for topo in [
            AnyTopology::from(Hypercube::new(5)),
            AnyTopology::from(FatTree::new(32)),
        ] {
            for mode in [EmbeddingMode::Modified, EmbeddingMode::Random] {
                for shape in [TreeShape::binary(), TreeShape::quad(), TreeShape::lk(2, 4)] {
                    let tree = Arc::new(DecompositionTree::build_on(&topo, shape));
                    let e = Embedder::new(Arc::clone(&tree), mode);
                    for placement in placements(topo.nodes()).into_iter().step_by(5) {
                        assert_eq!(e.position(placement, tree.root()), placement.root);
                        for t in tree.node_ids() {
                            let pos = e.position(placement, t);
                            assert!(
                                tree.region(t).contains(&pos),
                                "{mode:?} {shape:?} node {t:?} mapped outside its region"
                            );
                        }
                        for p in 0..topo.nodes() as u32 {
                            let leaf = tree.leaf_of(NodeId(p));
                            assert_eq!(e.position(placement, leaf), NodeId(p));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_embedding_spreads_over_the_submesh() {
        // The root's children under the random mode should not all collapse to
        // the same relative position across many variables.
        let e = embedder(16, 16, TreeShape::quad(), EmbeddingMode::Random);
        let root_child = e.tree().children(e.tree().root())[0];
        let mut distinct = std::collections::HashSet::new();
        for placement in placements(256) {
            distinct.insert(e.position(placement, root_child));
        }
        assert!(
            distinct.len() > 16,
            "random embedding not spreading: {}",
            distinct.len()
        );
    }
}
