//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is a declarative, seeded description of what breaks and
//! when: "20% of the links degrade to a quarter bandwidth at t = 1 ms",
//! "node 7 fails at t = 2 ms", "3 random nodes fail at t = 5 ms". The
//! coordinator resolves the plan against the run's topology once, up front,
//! into concrete timed actions (sampling via `dm-rng`, so the same plan and
//! seed pick the same victims on every host and in both backends) and injects
//! them into the event queue like any other simulation event.
//!
//! ## Semantics
//!
//! * **Link degradation** multiplies a link's bandwidth; routing is
//!   unchanged (the hardware router is oblivious to bandwidth).
//! * **Link failure** removes a directed link from service; traffic detours
//!   around it deterministically ([`dm_mesh::Topology::route_links_avoiding`]
//!   via the engine's cost table). If the surviving links no longer connect
//!   the machine, the run ends cleanly as
//!   [`RunOutcome::Partitioned`](crate::RunOutcome) instead of hanging.
//! * **Node failure** is fail-stop of the *whole node*. Its
//!   data-management role: every directory/home/lock responsibility the
//!   victim held migrates to a deterministic successor (the next alive
//!   node id, wrapping), and the migration traffic is charged to the
//!   simulation ([`FaultTally`](crate::FaultTally) tallies it). And its
//!   resident application program: the program is killed at the fault
//!   time, its in-flight requests drained, its held locks force-released
//!   (tallied, never leaked into a wedge), and its barrier membership
//!   removed deterministically; the survivors run to completion and the
//!   run ends as [`RunOutcome::Degraded`](crate::RunOutcome) with a
//!   partial survivor checksum. The victim's physical links stay up, so
//!   node failures never partition the network.
//!
//! * **Link healing** returns a link to service at its pristine cost
//!   (calibrated preset if one was applied): bandwidth snaps back, the
//!   detour memo is invalidated, and routes deterministically revert to
//!   what an intact network would use. The windowed forms
//!   ([`FaultPlan::degrade_links_for`] / [`FaultPlan::fail_links_for`])
//!   sample their victims *once* and schedule the matching heal
//!   `duration` ns later, so a flapping link fails and heals as the same
//!   physical link.
//! * **Node restoration** brings a failed node back as a *fresh* DM
//!   successor: it inherits no directory state (what it held was already
//!   re-homed at failure time, and pulling it back would cost a second
//!   migration for no benefit — see `docs/architecture.md`), but it is
//!   eligible again as a successor for future failures, and it may itself
//!   fail again later. The application processor lost at failure time does
//!   **not** come back — fail-stop loses its program state permanently.
//!
//! Faults injected at time `t` apply before any same-time protocol message is
//! processed (the coordinator enqueues them first, and the event queue breaks
//! time ties by insertion order). Destructive actions at time `t` apply
//! before recovery actions at the same `t` (resolution stable-sorts by
//! `(time, destructive-before-recovery)`), so a zero-duration window still
//! tallies both edges. Requests a processor issued before `t` may
//! still have been costed against the pre-fault network — exactly like real
//! traffic already in flight when a link dies — and this boundary is
//! identical in the driven and prototype backends, keeping them
//! bit-identical under any plan.

use dm_engine::SimTime;
use dm_mesh::{LinkId, NodeId, Topology};
use dm_rng::ChaCha8Rng;

/// One declarative fault specification of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// At time `at`, degrade a sampled `fraction` of all links to `factor`
    /// of their current bandwidth.
    DegradeLinks {
        /// Fraction of all links to degrade (0.0–1.0).
        fraction: f64,
        /// Remaining bandwidth multiplier (0 < factor ≤ 1).
        factor: f64,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, take a sampled `fraction` of all links out of service.
    FailLinks {
        /// Fraction of all links to fail (0.0–1.0).
        fraction: f64,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, fail one specific node's data-management role.
    FailNode {
        /// The victim.
        node: NodeId,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, fail `count` sampled distinct nodes.
    FailRandomNodes {
        /// Number of victims (capped so at least one node survives).
        count: usize,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, return one specific link to service at its pristine
    /// cost (no-op if the link is healthy).
    HealLink {
        /// The link to heal.
        link: LinkId,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, bring one failed node back as a fresh DM successor
    /// (no-op if the node is alive; its lost application processor does not
    /// come back).
    RestoreNode {
        /// The node to restore.
        node: NodeId,
        /// Injection time in ns.
        at: SimTime,
    },
    /// At time `at`, degrade a sampled `fraction` of all links to `factor`
    /// of their bandwidth, healing the *same* links `duration` ns later.
    DegradeLinksFor {
        /// Fraction of all links to degrade (0.0–1.0).
        fraction: f64,
        /// Remaining bandwidth multiplier (0 < factor ≤ 1).
        factor: f64,
        /// Injection time in ns.
        at: SimTime,
        /// Window length in ns; the heal fires at `at + duration`.
        duration: SimTime,
    },
    /// At time `at`, take a sampled `fraction` of all links out of service,
    /// healing the *same* links `duration` ns later.
    FailLinksFor {
        /// Fraction of all links to fail (0.0–1.0).
        fraction: f64,
        /// Injection time in ns.
        at: SimTime,
        /// Window length in ns; the heal fires at `at + duration`.
        duration: SimTime,
    },
}

/// A deterministic, seeded failure schedule for one run.
///
/// Built declaratively, resolved against the concrete topology by the
/// coordinator. The plan seed is independent of the run seed so the same
/// failure pattern can be replayed across strategies and seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan sampling with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Degrade a sampled `fraction` of all links to `factor` of their
    /// bandwidth at time `at`.
    pub fn degrade_links(mut self, fraction: f64, factor: f64, at: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        assert!(factor > 0.0 && factor <= 1.0, "factor out of range");
        self.specs.push(FaultSpec::DegradeLinks {
            fraction,
            factor,
            at,
        });
        self
    }

    /// Fail a sampled `fraction` of all links at time `at`.
    pub fn fail_links(mut self, fraction: f64, at: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        self.specs.push(FaultSpec::FailLinks { fraction, at });
        self
    }

    /// Fail one specific node's data-management role at time `at`.
    pub fn fail_node(mut self, node: NodeId, at: SimTime) -> Self {
        self.specs.push(FaultSpec::FailNode { node, at });
        self
    }

    /// Fail `count` sampled distinct nodes at time `at`.
    pub fn fail_random_nodes(mut self, count: usize, at: SimTime) -> Self {
        self.specs.push(FaultSpec::FailRandomNodes { count, at });
        self
    }

    /// Return one specific link to service at its pristine cost at time
    /// `at` (no-op if the link is healthy at that point).
    pub fn heal_link(mut self, link: LinkId, at: SimTime) -> Self {
        self.specs.push(FaultSpec::HealLink { link, at });
        self
    }

    /// Bring one failed node back as a fresh DM successor at time `at`.
    ///
    /// Dropped at resolution time unless an earlier spec (in builder order)
    /// failed that node: fail/restore pairs are matched in the order the
    /// plan was built, like the duplicate-victim rule of
    /// [`FaultPlan::fail_node`].
    pub fn restore_node(mut self, node: NodeId, at: SimTime) -> Self {
        self.specs.push(FaultSpec::RestoreNode { node, at });
        self
    }

    /// Degrade a sampled `fraction` of all links to `factor` of their
    /// bandwidth at time `at`, healing the same links at `at + duration`.
    pub fn degrade_links_for(
        mut self,
        fraction: f64,
        factor: f64,
        at: SimTime,
        duration: SimTime,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        assert!(factor > 0.0 && factor <= 1.0, "factor out of range");
        self.specs.push(FaultSpec::DegradeLinksFor {
            fraction,
            factor,
            at,
            duration,
        });
        self
    }

    /// Fail a sampled `fraction` of all links at time `at`, healing the
    /// same links at `at + duration`.
    pub fn fail_links_for(mut self, fraction: f64, at: SimTime, duration: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        self.specs.push(FaultSpec::FailLinksFor {
            fraction,
            at,
            duration,
        });
        self
    }

    /// Whether the plan contains no specifications.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The plan's sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declarative specifications, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Resolve the plan against a concrete topology into timed actions.
    ///
    /// Sampling draws from a ChaCha8 stream seeded from the plan seed alone,
    /// consuming draws in specification order — the resolution is a pure
    /// function of (plan, topology). Node victims are distinct across the
    /// whole plan, and at least one node always survives.
    pub(crate) fn resolve(&self, topo: &dyn Topology) -> Vec<TimedFault> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x00FA_017A_B1E0_u64);
        let mut out = Vec::with_capacity(self.specs.len());
        let mut fallen_nodes: Vec<NodeId> = Vec::new();
        let nprocs = topo.nodes();
        for spec in &self.specs {
            match *spec {
                FaultSpec::DegradeLinks {
                    fraction,
                    factor,
                    at,
                } => {
                    let victims = sample_links(&mut rng, topo, fraction);
                    out.push(TimedFault {
                        at,
                        action: FaultAction::DegradeLinks(
                            victims.into_iter().map(|l| (l, factor)).collect(),
                        ),
                    });
                }
                FaultSpec::FailLinks { fraction, at } => {
                    let victims = sample_links(&mut rng, topo, fraction);
                    out.push(TimedFault {
                        at,
                        action: FaultAction::FailLinks(victims),
                    });
                }
                FaultSpec::FailNode { node, at } => {
                    assert!(
                        node.index() < nprocs,
                        "fault plan names node {node} outside the topology"
                    );
                    if !fallen_nodes.contains(&node) && fallen_nodes.len() + 1 < nprocs {
                        fallen_nodes.push(node);
                        out.push(TimedFault {
                            at,
                            action: FaultAction::FailNode(node),
                        });
                    }
                }
                FaultSpec::FailRandomNodes { count, at } => {
                    for _ in 0..count {
                        if fallen_nodes.len() + 1 >= nprocs {
                            break; // keep at least one survivor
                        }
                        // Rejection-sample a not-yet-fallen node: bounded in
                        // expectation because victims stay a minority.
                        let node = loop {
                            let n = NodeId(rng.gen_range(0..nprocs as u32));
                            if !fallen_nodes.contains(&n) {
                                break n;
                            }
                        };
                        fallen_nodes.push(node);
                        out.push(TimedFault {
                            at,
                            action: FaultAction::FailNode(node),
                        });
                    }
                }
                FaultSpec::HealLink { link, at } => {
                    assert!(
                        link.index() < topo.link_slots(),
                        "fault plan names link {link:?} outside the topology"
                    );
                    out.push(TimedFault {
                        at,
                        action: FaultAction::HealLinks(vec![link]),
                    });
                }
                FaultSpec::RestoreNode { node, at } => {
                    assert!(
                        node.index() < nprocs,
                        "fault plan names node {node} outside the topology"
                    );
                    // Only a currently fallen node can be restored; removing
                    // it from the fallen list makes it eligible to fail
                    // again (and frees its slot under the survivor cap).
                    if let Some(pos) = fallen_nodes.iter().position(|&n| n == node) {
                        fallen_nodes.remove(pos);
                        out.push(TimedFault {
                            at,
                            action: FaultAction::RestoreNode(node),
                        });
                    }
                }
                FaultSpec::DegradeLinksFor {
                    fraction,
                    factor,
                    at,
                    duration,
                } => {
                    // Sample once: the heal targets the exact links that
                    // degraded, whatever else the plan does in between.
                    let victims = sample_links(&mut rng, topo, fraction);
                    out.push(TimedFault {
                        at,
                        action: FaultAction::DegradeLinks(
                            victims.iter().map(|&l| (l, factor)).collect(),
                        ),
                    });
                    out.push(TimedFault {
                        at: at + duration,
                        action: FaultAction::HealLinks(victims),
                    });
                }
                FaultSpec::FailLinksFor {
                    fraction,
                    at,
                    duration,
                } => {
                    let victims = sample_links(&mut rng, topo, fraction);
                    out.push(TimedFault {
                        at,
                        action: FaultAction::FailLinks(victims.clone()),
                    });
                    out.push(TimedFault {
                        at: at + duration,
                        action: FaultAction::HealLinks(victims),
                    });
                }
            }
        }
        // Chronological order with fault-before-heal at equal times; the
        // stable sort preserves builder order within each (time, kind)
        // class, so plans without recovery events resolve exactly as
        // before.
        out.sort_by_key(|f| (f.at, f.action.recovery_rank()));
        out
    }
}

/// Sample `fraction` of the topology's links by partial Fisher-Yates over the
/// existing link ids (rounding the victim count to the nearest integer).
fn sample_links(rng: &mut ChaCha8Rng, topo: &dyn Topology, fraction: f64) -> Vec<LinkId> {
    let mut pool = topo.link_ids();
    let k = ((pool.len() as f64 * fraction).round() as usize).min(pool.len());
    for i in 0..k {
        let j = i + rng.gen_range(0..(pool.len() - i) as u32) as usize;
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// One concrete fault, resolved and scheduled. A batch of link failures is
/// one action so connectivity is checked once per batch, not per link.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TimedFault {
    pub at: SimTime,
    pub action: FaultAction,
}

/// The concrete effect of one [`TimedFault`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FaultAction {
    /// Degrade each listed link to the paired bandwidth factor.
    DegradeLinks(Vec<(LinkId, f64)>),
    /// Take every listed link out of service, then re-check connectivity.
    FailLinks(Vec<LinkId>),
    /// Fail one node's data-management role and fail-stop its resident
    /// application processor.
    FailNode(NodeId),
    /// Return every listed link to service at its pristine cost.
    HealLinks(Vec<LinkId>),
    /// Bring one failed node back as a fresh DM successor.
    RestoreNode(NodeId),
}

impl FaultAction {
    /// Ordering class at equal times: destructive actions before recovery
    /// actions.
    fn recovery_rank(&self) -> u8 {
        match self {
            FaultAction::DegradeLinks(_) | FaultAction::FailLinks(_) | FaultAction::FailNode(_) => {
                0
            }
            FaultAction::HealLinks(_) | FaultAction::RestoreNode(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::{AnyTopology, Mesh};

    fn mesh4() -> AnyTopology {
        Mesh::square(4).into()
    }

    #[test]
    fn resolution_is_deterministic() {
        let plan = FaultPlan::new(7)
            .degrade_links(0.2, 0.5, 1_000)
            .fail_links(0.1, 2_000)
            .fail_random_nodes(2, 3_000);
        let a = plan.resolve(&mesh4());
        let b = plan.resolve(&mesh4());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed picks different victims.
        let c = FaultPlan {
            seed: 8,
            specs: plan.specs.clone(),
        }
        .resolve(&mesh4());
        assert_ne!(a, c);
    }

    #[test]
    fn link_fractions_round_to_counts() {
        let topo = mesh4(); // 48 directed links
        let plan = FaultPlan::new(1).fail_links(0.25, 500);
        let faults = plan.resolve(&topo);
        assert_eq!(faults.len(), 1);
        match &faults[0].action {
            FaultAction::FailLinks(links) => {
                assert_eq!(links.len(), 12);
                let unique: std::collections::HashSet<_> = links.iter().collect();
                assert_eq!(unique.len(), links.len(), "victims must be distinct");
            }
            other => panic!("expected FailLinks, got {other:?}"),
        }
        assert_eq!(faults[0].at, 500);
    }

    #[test]
    fn node_victims_are_distinct_and_leave_a_survivor() {
        let topo = mesh4();
        let plan = FaultPlan::new(3)
            .fail_node(NodeId(5), 100)
            .fail_node(NodeId(5), 200) // duplicate: dropped
            .fail_random_nodes(100, 300); // far more than the node count
        let faults = plan.resolve(&topo);
        let victims: Vec<NodeId> = faults
            .iter()
            .map(|f| match f.action {
                FaultAction::FailNode(n) => n,
                ref other => panic!("expected FailNode, got {other:?}"),
            })
            .collect();
        let unique: std::collections::HashSet<_> = victims.iter().collect();
        assert_eq!(unique.len(), victims.len());
        assert_eq!(victims.len(), 15, "one node of 16 must survive");
        assert!(victims.contains(&NodeId(5)));
    }

    #[test]
    fn empty_plan_resolves_to_nothing() {
        let plan = FaultPlan::new(0);
        assert!(plan.is_empty());
        assert!(plan.resolve(&mesh4()).is_empty());
    }

    #[test]
    fn windowed_failure_heals_the_same_links() {
        let plan = FaultPlan::new(9).fail_links_for(0.25, 1_000, 500);
        let faults = plan.resolve(&mesh4());
        assert_eq!(faults.len(), 2);
        let failed = match &faults[0].action {
            FaultAction::FailLinks(links) => links.clone(),
            other => panic!("expected FailLinks, got {other:?}"),
        };
        let healed = match &faults[1].action {
            FaultAction::HealLinks(links) => links.clone(),
            other => panic!("expected HealLinks, got {other:?}"),
        };
        assert_eq!(faults[0].at, 1_000);
        assert_eq!(faults[1].at, 1_500);
        assert_eq!(failed, healed, "the heal must target the failed links");
    }

    #[test]
    fn restore_requires_a_preceding_failure_and_permits_refailure() {
        let plan = FaultPlan::new(4)
            .restore_node(NodeId(2), 50) // never failed: dropped
            .fail_node(NodeId(2), 100)
            .restore_node(NodeId(2), 200)
            .fail_node(NodeId(2), 300); // fallen slot freed: fails again
        let faults = plan.resolve(&mesh4());
        let kinds: Vec<_> = faults
            .iter()
            .map(|f| match f.action {
                FaultAction::FailNode(n) => ("fail", n, f.at),
                FaultAction::RestoreNode(n) => ("restore", n, f.at),
                ref other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("fail", NodeId(2), 100),
                ("restore", NodeId(2), 200),
                ("fail", NodeId(2), 300),
            ]
        );
    }

    #[test]
    fn resolution_orders_by_time_with_faults_before_heals() {
        // A zero-length window plus a later out-of-order spec: the resolved
        // schedule is chronological, and at the shared instant the failure
        // precedes the heal.
        let plan = FaultPlan::new(6)
            .fail_links_for(0.1, 2_000, 0)
            .degrade_links(0.1, 0.5, 1_000);
        let faults = plan.resolve(&mesh4());
        assert_eq!(faults.len(), 3);
        assert!(matches!(faults[0].action, FaultAction::DegradeLinks(_)));
        assert_eq!(faults[0].at, 1_000);
        assert!(matches!(faults[1].action, FaultAction::FailLinks(_)));
        assert!(matches!(faults[2].action, FaultAction::HealLinks(_)));
        assert_eq!(faults[1].at, 2_000);
        assert_eq!(faults[2].at, 2_000);
    }
}
