//! Statistics reported by a simulation run.

use crate::policy::{Counter, COUNTER_COUNT};
use dm_engine::{ns_to_secs, SimTime};
use dm_mesh::LinkStats;
use std::collections::BTreeMap;

/// Per-region (per-phase) measurements.
///
/// Regions are declared by the application with
/// [`ProcCtx::region`](crate::ProcCtx::region); the Barnes-Hut harness uses
/// them to reproduce the per-phase congestion and time figures of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Wall-clock (virtual) time spent in the region — the maximum over all
    /// processors of the time between entering and leaving the region.
    pub wall_time: SimTime,
    /// Modelled local-computation time inside the region (maximum over
    /// processors).
    pub compute_time: SimTime,
    /// Maximum number of messages over any single link, attributed to this
    /// region.
    pub congestion_msgs: u64,
    /// Maximum number of bytes over any single link, attributed to this region.
    pub congestion_bytes: u64,
    /// Total messages attributed to this region.
    pub total_msgs: u64,
    /// Total bytes attributed to this region.
    pub total_bytes: u64,
}

impl RegionReport {
    /// Time spent communicating (wall time minus modelled computation).
    pub fn comm_time(&self) -> SimTime {
        self.wall_time.saturating_sub(self.compute_time)
    }
}

/// Fault accounting of a run: what the [`FaultPlan`](crate::FaultPlan)
/// injected and what recovery cost. All fields stay zero when no plan is set,
/// so fault-free reports (and their JSON) are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Links whose bandwidth was degraded.
    pub links_degraded: u64,
    /// Links taken out of service.
    pub links_failed: u64,
    /// Nodes whose data-management role failed.
    pub nodes_failed: u64,
    /// Migration messages charged for re-homing directory state.
    pub rehome_msgs: u64,
    /// Migration bytes charged for re-homing directory state.
    pub rehome_bytes: u64,
    /// Links returned to service at their pristine cost.
    pub links_healed: u64,
    /// Failed nodes brought back as fresh DM successors.
    pub nodes_restored: u64,
    /// Locks force-released because their holder's processor was lost.
    pub locks_force_released: u64,
    /// Application processors fail-stopped (directly by a node failure, or
    /// transitively because they could only ever be unblocked by a lost
    /// processor).
    pub procs_lost: u64,
}

impl FaultTally {
    /// Whether any fault was injected or any recovery traffic charged.
    pub fn any(&self) -> bool {
        *self != FaultTally::default()
    }
}

/// The outcome of a simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Name of the data-management strategy that produced this run.
    pub strategy: String,
    /// Virtual time at which the last processor finished (and all protocol
    /// traffic quiesced).
    pub total_time: SimTime,
    /// Per-link traffic statistics of the whole run.
    pub link_stats: LinkStats,
    /// Protocol counters (hits, misses, copies, invalidations, messages, ...).
    counters: [u64; COUNTER_COUNT],
    /// Per-region measurements, keyed by the region name.
    pub regions: BTreeMap<String, RegionReport>,
    /// Total messages handed to the network (including node-local ones).
    pub messages_sent: u64,
    /// Total bytes handed to the network.
    pub bytes_sent: u64,
    /// Modelled local computation time (maximum over processors).
    pub compute_time: SimTime,
    /// Number of barrier synchronisations executed.
    pub barriers: u64,
    /// Total variable registrations (pre-run and in-run, including slots
    /// recycled after a free).
    pub vars_registered: u64,
    /// Total variables freed (explicitly or through epoch ends).
    pub vars_freed: u64,
    /// Highest number of simultaneously live variables — the footprint of
    /// the per-variable protocol state. With per-step reclamation this stays
    /// O(live working set) instead of growing with the run length.
    pub live_vars_high_water: u64,
    /// Fault accounting — all zero unless a `FaultPlan` was active.
    pub faults: FaultTally,
}

impl RunReport {
    /// Construct a report (used by the runtime).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        strategy: String,
        total_time: SimTime,
        link_stats: LinkStats,
        counters: [u64; COUNTER_COUNT],
        regions: BTreeMap<String, RegionReport>,
        messages_sent: u64,
        bytes_sent: u64,
        compute_time: SimTime,
        barriers: u64,
        vars_registered: u64,
        vars_freed: u64,
        live_vars_high_water: u64,
        faults: FaultTally,
    ) -> Self {
        RunReport {
            strategy,
            total_time,
            link_stats,
            counters,
            regions,
            messages_sent,
            bytes_sent,
            compute_time,
            barriers,
            vars_registered,
            vars_freed,
            live_vars_high_water,
            faults,
        }
    }

    /// Congestion in messages: the maximum number of messages that crossed any
    /// single directed link (the unit of the paper's Barnes-Hut figures).
    pub fn congestion_msgs(&self) -> u64 {
        self.link_stats.congestion_msgs()
    }

    /// Congestion in bytes: the maximum number of bytes that crossed any
    /// single directed link.
    pub fn congestion_bytes(&self) -> u64 {
        self.link_stats.congestion_bytes()
    }

    /// Total bytes over all links ("total communication load").
    pub fn total_traffic_bytes(&self) -> u64 {
        self.link_stats.total_bytes()
    }

    /// Value of a protocol counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// The execution time in (virtual) seconds.
    pub fn total_time_secs(&self) -> f64 {
        ns_to_secs(self.total_time)
    }

    /// Wall time minus modelled computation time, in nanoseconds — the
    /// "communication time" of the paper's matrix-multiplication experiments.
    pub fn comm_time(&self) -> SimTime {
        self.total_time.saturating_sub(self.compute_time)
    }

    /// A region report by name, if the application declared it.
    pub fn region(&self, name: &str) -> Option<&RegionReport> {
        self.regions.get(name)
    }

    /// A compact human-readable summary (used by examples and the harness).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("strategy:            {}\n", self.strategy));
        s.push_str(&format!(
            "execution time:      {:.3} s (compute {:.3} s, communication {:.3} s)\n",
            self.total_time_secs(),
            ns_to_secs(self.compute_time),
            ns_to_secs(self.comm_time()),
        ));
        s.push_str(&format!(
            "congestion:          {} messages / {} bytes on the hottest link\n",
            self.congestion_msgs(),
            self.congestion_bytes()
        ));
        s.push_str(&format!(
            "network totals:      {} messages, {} bytes\n",
            self.messages_sent, self.bytes_sent
        ));
        s.push_str(&format!("barriers:            {}\n", self.barriers));
        s.push_str(&format!(
            "variables:           {} registered, {} freed, peak live {}\n",
            self.vars_registered, self.vars_freed, self.live_vars_high_water
        ));
        if self.faults.any() {
            s.push_str(&format!(
                "faults:              {} links degraded, {} links failed, {} nodes failed, re-homing {} msgs / {} bytes\n",
                self.faults.links_degraded,
                self.faults.links_failed,
                self.faults.nodes_failed,
                self.faults.rehome_msgs,
                self.faults.rehome_bytes
            ));
            let f = &self.faults;
            if f.links_healed + f.nodes_restored + f.locks_force_released + f.procs_lost > 0 {
                s.push_str(&format!(
                    "recovery:            {} links healed, {} nodes restored, {} locks force-released, {} procs lost\n",
                    f.links_healed, f.nodes_restored, f.locks_force_released, f.procs_lost
                ));
            }
        }
        for c in Counter::ALL {
            s.push_str(&format!(
                "{:<20} {}\n",
                format!("{}:", c.name()),
                self.counter(c)
            ));
        }
        for (name, r) in &self.regions {
            s.push_str(&format!(
                "region {:<13} wall {:.3} s, compute {:.3} s, congestion {} msgs / {} bytes\n",
                name,
                ns_to_secs(r.wall_time),
                ns_to_secs(r.compute_time),
                r.congestion_msgs,
                r.congestion_bytes
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::Mesh;

    #[test]
    fn report_accessors() {
        let mesh = Mesh::square(2);
        let mut stats = LinkStats::new(&mesh);
        let link = mesh.link_ids().next().unwrap();
        stats.record(link, 100);
        stats.record(link, 50);
        let mut counters = [0u64; COUNTER_COUNT];
        counters[Counter::ReadHit.index()] = 7;
        let mut regions = BTreeMap::new();
        regions.insert(
            "force".to_string(),
            RegionReport {
                wall_time: 10_000,
                compute_time: 4_000,
                congestion_msgs: 3,
                congestion_bytes: 300,
                total_msgs: 9,
                total_bytes: 900,
            },
        );
        let r = RunReport::new(
            "4-ary access tree".into(),
            2_000_000_000,
            stats,
            counters,
            regions,
            12,
            1234,
            500_000_000,
            3,
            40,
            30,
            10,
            FaultTally::default(),
        );
        assert_eq!(r.congestion_bytes(), 150);
        assert_eq!(r.congestion_msgs(), 2);
        assert_eq!(r.counter(Counter::ReadHit), 7);
        assert_eq!(r.counter(Counter::ReadMiss), 0);
        assert!((r.total_time_secs() - 2.0).abs() < 1e-9);
        assert_eq!(r.comm_time(), 1_500_000_000);
        assert_eq!(r.region("force").unwrap().comm_time(), 6_000);
        assert!(r.region("missing").is_none());
        assert_eq!(r.vars_registered, 40);
        assert_eq!(r.vars_freed, 30);
        assert_eq!(r.live_vars_high_water, 10);
        let s = r.summary();
        assert!(s.contains("4-ary access tree"));
        assert!(s.contains("read_hits"));
        assert!(s.contains("region force"));
        assert!(s.contains("peak live 10"));
        // Fault-free runs keep the summary free of fault lines.
        assert!(!r.faults.any());
        assert!(!s.contains("faults:"));
        let mut faulty = r.clone();
        faulty.faults.links_failed = 2;
        faulty.faults.rehome_bytes = 640;
        assert!(faulty.faults.any());
        assert!(faulty.summary().contains("2 links failed"));
        // Recovery counters stay off the summary until one is non-zero.
        assert!(!faulty.summary().contains("recovery:"));
        faulty.faults.links_healed = 2;
        faulty.faults.locks_force_released = 1;
        faulty.faults.procs_lost = 1;
        let s = faulty.summary();
        assert!(s.contains("2 links healed"));
        assert!(s.contains("1 locks force-released"));
        assert!(s.contains("1 procs lost"));
    }
}
