//! Statistics reported by a simulation run.

use crate::policy::{Counter, COUNTER_COUNT};
use dm_engine::{ns_to_secs, SimTime};
use dm_mesh::LinkStats;
use std::collections::BTreeMap;

/// Per-region (per-phase) measurements.
///
/// Regions are declared by the application with
/// [`ProcCtx::region`](crate::ProcCtx::region); the Barnes-Hut harness uses
/// them to reproduce the per-phase congestion and time figures of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Wall-clock (virtual) time spent in the region — the maximum over all
    /// processors of the time between entering and leaving the region.
    pub wall_time: SimTime,
    /// Modelled local-computation time inside the region (maximum over
    /// processors).
    pub compute_time: SimTime,
    /// Maximum number of messages over any single link, attributed to this
    /// region.
    pub congestion_msgs: u64,
    /// Maximum number of bytes over any single link, attributed to this region.
    pub congestion_bytes: u64,
    /// Total messages attributed to this region.
    pub total_msgs: u64,
    /// Total bytes attributed to this region.
    pub total_bytes: u64,
}

impl RegionReport {
    /// Time spent communicating (wall time minus modelled computation).
    pub fn comm_time(&self) -> SimTime {
        self.wall_time.saturating_sub(self.compute_time)
    }
}

/// Fault accounting of a run: what the [`FaultPlan`](crate::FaultPlan)
/// injected and what recovery cost. All fields stay zero when no plan is set,
/// so fault-free reports (and their JSON) are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Links whose bandwidth was degraded.
    pub links_degraded: u64,
    /// Links taken out of service.
    pub links_failed: u64,
    /// Nodes whose data-management role failed.
    pub nodes_failed: u64,
    /// Migration messages charged for re-homing directory state.
    pub rehome_msgs: u64,
    /// Migration bytes charged for re-homing directory state.
    pub rehome_bytes: u64,
    /// Links returned to service at their pristine cost.
    pub links_healed: u64,
    /// Failed nodes brought back as fresh DM successors.
    pub nodes_restored: u64,
    /// Locks force-released because their holder's processor was lost.
    pub locks_force_released: u64,
    /// Application processors fail-stopped (directly by a node failure, or
    /// transitively because they could only ever be unblocked by a lost
    /// processor).
    pub procs_lost: u64,
}

impl FaultTally {
    /// Whether any fault was injected or any recovery traffic charged.
    pub fn any(&self) -> bool {
        *self != FaultTally::default()
    }
}

/// Number of fixed log2 buckets of the per-request response-time histogram:
/// bucket `i` counts responses whose virtual latency lies in
/// `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0-latency responses, the last
/// bucket absorbs everything ≥ 2^31 ns ≈ 2.1 s).
pub const RESPONSE_BUCKETS: usize = 32;

/// Serving-side metrics of a request workload, in the vocabulary of the
/// replication literature (hit ratio, bytes moved, response time,
/// replication degree).
///
/// Tallied centrally by the coordinator's [`PolicyEnv`](crate::PolicyEnv)
/// implementation — not by the policies and not by the frontends — so both
/// strategies and all execution backends report bit-identical values. All
/// fields are simulated quantities (no host clocks, no allocation addresses),
/// which keeps them byte-exact across `--jobs`, `--workers`, debug/release
/// and resumed runs. Fields stay zero for workloads that never touch shared
/// variables, so reports of the message-passing baselines are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingReport {
    /// Client read/write requests served (fast-path local hits included;
    /// lock/unlock traffic is synchronisation, not serving, and is excluded).
    pub requests: u64,
    /// Requests satisfied from a processor-local copy without any protocol
    /// transaction (the fast path).
    pub local_hits: u64,
    /// Bytes of data-management protocol traffic (control and data) handed
    /// to the network on behalf of the strategy — the "bytes moved" of the
    /// replication-metrics literature. Excludes application message passing,
    /// barrier traffic and fault-recovery migrations (the latter are tallied
    /// in [`FaultTally`]).
    pub bytes_moved: u64,
    /// Per-request response-time histogram over [`RESPONSE_BUCKETS`] fixed
    /// log2 buckets of virtual nanoseconds. Completions that evaporated
    /// because their processor was lost to a node failure are not counted.
    pub response_hist: [u64; RESPONSE_BUCKETS],
    /// Highest number of simultaneously live copies of any single variable —
    /// the replication-degree high-water mark.
    pub replication_high_water: u64,
}

impl ServingReport {
    /// The histogram bucket of a response latency of `ns` virtual
    /// nanoseconds: `floor(log2(ns))`, clamped to the fixed bucket range.
    pub fn bucket(ns: SimTime) -> usize {
        (63 - ns.max(1).leading_zeros() as usize).min(RESPONSE_BUCKETS - 1)
    }

    /// Total responses recorded in the histogram.
    pub fn responses(&self) -> u64 {
        self.response_hist.iter().sum()
    }

    /// Fraction of requests served from a local copy (0 when no request was
    /// served).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.requests as f64
        }
    }

    /// The latency quantile `q` (e.g. `0.5`, `0.99`) as the lower bound of
    /// the histogram bucket in which it falls, in virtual nanoseconds — a
    /// deterministic integer suitable for golden files. Returns 0 when the
    /// histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> SimTime {
        let total = self.responses();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut acc = 0;
        for (i, &count) in self.response_hist.iter().enumerate() {
            acc += count;
            if acc >= target {
                return 1 << i;
            }
        }
        1 << (RESPONSE_BUCKETS - 1)
    }

    /// Whether any serving activity was recorded.
    pub fn any(&self) -> bool {
        *self != ServingReport::default()
    }
}

/// The outcome of a simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Name of the data-management strategy that produced this run.
    pub strategy: String,
    /// Virtual time at which the last processor finished (and all protocol
    /// traffic quiesced).
    pub total_time: SimTime,
    /// Per-link traffic statistics of the whole run.
    pub link_stats: LinkStats,
    /// Protocol counters (hits, misses, copies, invalidations, messages, ...).
    counters: [u64; COUNTER_COUNT],
    /// Per-region measurements, keyed by the region name.
    pub regions: BTreeMap<String, RegionReport>,
    /// Total messages handed to the network (including node-local ones).
    pub messages_sent: u64,
    /// Total bytes handed to the network.
    pub bytes_sent: u64,
    /// Modelled local computation time (maximum over processors).
    pub compute_time: SimTime,
    /// Number of barrier synchronisations executed.
    pub barriers: u64,
    /// Total variable registrations (pre-run and in-run, including slots
    /// recycled after a free).
    pub vars_registered: u64,
    /// Total variables freed (explicitly or through epoch ends).
    pub vars_freed: u64,
    /// Highest number of simultaneously live variables — the footprint of
    /// the per-variable protocol state. With per-step reclamation this stays
    /// O(live working set) instead of growing with the run length.
    pub live_vars_high_water: u64,
    /// Fault accounting — all zero unless a `FaultPlan` was active.
    pub faults: FaultTally,
    /// Serving-side metrics (hit ratio, bytes moved, response-time
    /// histogram, replication degree) — see [`ServingReport`].
    pub serving: ServingReport,
}

impl RunReport {
    /// Construct a report (used by the runtime).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        strategy: String,
        total_time: SimTime,
        link_stats: LinkStats,
        counters: [u64; COUNTER_COUNT],
        regions: BTreeMap<String, RegionReport>,
        messages_sent: u64,
        bytes_sent: u64,
        compute_time: SimTime,
        barriers: u64,
        vars_registered: u64,
        vars_freed: u64,
        live_vars_high_water: u64,
        faults: FaultTally,
        serving: ServingReport,
    ) -> Self {
        RunReport {
            strategy,
            total_time,
            link_stats,
            counters,
            regions,
            messages_sent,
            bytes_sent,
            compute_time,
            barriers,
            vars_registered,
            vars_freed,
            live_vars_high_water,
            faults,
            serving,
        }
    }

    /// Congestion in messages: the maximum number of messages that crossed any
    /// single directed link (the unit of the paper's Barnes-Hut figures).
    pub fn congestion_msgs(&self) -> u64 {
        self.link_stats.congestion_msgs()
    }

    /// Congestion in bytes: the maximum number of bytes that crossed any
    /// single directed link.
    pub fn congestion_bytes(&self) -> u64 {
        self.link_stats.congestion_bytes()
    }

    /// Total bytes over all links ("total communication load").
    pub fn total_traffic_bytes(&self) -> u64 {
        self.link_stats.total_bytes()
    }

    /// Value of a protocol counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// The execution time in (virtual) seconds.
    pub fn total_time_secs(&self) -> f64 {
        ns_to_secs(self.total_time)
    }

    /// Wall time minus modelled computation time, in nanoseconds — the
    /// "communication time" of the paper's matrix-multiplication experiments.
    pub fn comm_time(&self) -> SimTime {
        self.total_time.saturating_sub(self.compute_time)
    }

    /// A region report by name, if the application declared it.
    pub fn region(&self, name: &str) -> Option<&RegionReport> {
        self.regions.get(name)
    }

    /// A compact human-readable summary (used by examples and the harness).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("strategy:            {}\n", self.strategy));
        s.push_str(&format!(
            "execution time:      {:.3} s (compute {:.3} s, communication {:.3} s)\n",
            self.total_time_secs(),
            ns_to_secs(self.compute_time),
            ns_to_secs(self.comm_time()),
        ));
        s.push_str(&format!(
            "congestion:          {} messages / {} bytes on the hottest link\n",
            self.congestion_msgs(),
            self.congestion_bytes()
        ));
        s.push_str(&format!(
            "network totals:      {} messages, {} bytes\n",
            self.messages_sent, self.bytes_sent
        ));
        s.push_str(&format!("barriers:            {}\n", self.barriers));
        s.push_str(&format!(
            "variables:           {} registered, {} freed, peak live {}\n",
            self.vars_registered, self.vars_freed, self.live_vars_high_water
        ));
        if self.faults.any() {
            s.push_str(&format!(
                "faults:              {} links degraded, {} links failed, {} nodes failed, re-homing {} msgs / {} bytes\n",
                self.faults.links_degraded,
                self.faults.links_failed,
                self.faults.nodes_failed,
                self.faults.rehome_msgs,
                self.faults.rehome_bytes
            ));
            let f = &self.faults;
            if f.links_healed + f.nodes_restored + f.locks_force_released + f.procs_lost > 0 {
                s.push_str(&format!(
                    "recovery:            {} links healed, {} nodes restored, {} locks force-released, {} procs lost\n",
                    f.links_healed, f.nodes_restored, f.locks_force_released, f.procs_lost
                ));
            }
        }
        if self.serving.any() {
            s.push_str(&format!(
                "serving:             {} requests, {:.1}% local hits, {} bytes moved, p50 {} ns, p99 {} ns, repl high-water {}\n",
                self.serving.requests,
                self.serving.hit_ratio() * 100.0,
                self.serving.bytes_moved,
                self.serving.quantile_ns(0.5),
                self.serving.quantile_ns(0.99),
                self.serving.replication_high_water
            ));
        }
        for c in Counter::ALL {
            s.push_str(&format!(
                "{:<20} {}\n",
                format!("{}:", c.name()),
                self.counter(c)
            ));
        }
        for (name, r) in &self.regions {
            s.push_str(&format!(
                "region {:<13} wall {:.3} s, compute {:.3} s, congestion {} msgs / {} bytes\n",
                name,
                ns_to_secs(r.wall_time),
                ns_to_secs(r.compute_time),
                r.congestion_msgs,
                r.congestion_bytes
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mesh::Mesh;

    #[test]
    fn report_accessors() {
        let mesh = Mesh::square(2);
        let mut stats = LinkStats::new(&mesh);
        let link = mesh.link_ids().next().unwrap();
        stats.record(link, 100);
        stats.record(link, 50);
        let mut counters = [0u64; COUNTER_COUNT];
        counters[Counter::ReadHit.index()] = 7;
        let mut regions = BTreeMap::new();
        regions.insert(
            "force".to_string(),
            RegionReport {
                wall_time: 10_000,
                compute_time: 4_000,
                congestion_msgs: 3,
                congestion_bytes: 300,
                total_msgs: 9,
                total_bytes: 900,
            },
        );
        let r = RunReport::new(
            "4-ary access tree".into(),
            2_000_000_000,
            stats,
            counters,
            regions,
            12,
            1234,
            500_000_000,
            3,
            40,
            30,
            10,
            FaultTally::default(),
            ServingReport::default(),
        );
        assert_eq!(r.congestion_bytes(), 150);
        assert_eq!(r.congestion_msgs(), 2);
        assert_eq!(r.counter(Counter::ReadHit), 7);
        assert_eq!(r.counter(Counter::ReadMiss), 0);
        assert!((r.total_time_secs() - 2.0).abs() < 1e-9);
        assert_eq!(r.comm_time(), 1_500_000_000);
        assert_eq!(r.region("force").unwrap().comm_time(), 6_000);
        assert!(r.region("missing").is_none());
        assert_eq!(r.vars_registered, 40);
        assert_eq!(r.vars_freed, 30);
        assert_eq!(r.live_vars_high_water, 10);
        let s = r.summary();
        assert!(s.contains("4-ary access tree"));
        assert!(s.contains("read_hits"));
        assert!(s.contains("region force"));
        assert!(s.contains("peak live 10"));
        // Fault-free runs keep the summary free of fault lines.
        assert!(!r.faults.any());
        assert!(!s.contains("faults:"));
        let mut faulty = r.clone();
        faulty.faults.links_failed = 2;
        faulty.faults.rehome_bytes = 640;
        assert!(faulty.faults.any());
        assert!(faulty.summary().contains("2 links failed"));
        // Recovery counters stay off the summary until one is non-zero.
        assert!(!faulty.summary().contains("recovery:"));
        faulty.faults.links_healed = 2;
        faulty.faults.locks_force_released = 1;
        faulty.faults.procs_lost = 1;
        let s = faulty.summary();
        assert!(s.contains("2 links healed"));
        assert!(s.contains("1 locks force-released"));
        assert!(s.contains("1 procs lost"));
        // Workloads without serving activity keep the summary line off.
        assert!(!r.serving.any());
        assert!(!r.summary().contains("serving:"));
        let mut serving = r.clone();
        serving.serving.requests = 200;
        serving.serving.local_hits = 50;
        serving.serving.bytes_moved = 4096;
        serving.serving.response_hist[ServingReport::bucket(900)] = 200;
        serving.serving.replication_high_water = 5;
        let s = serving.summary();
        assert!(s.contains("200 requests"));
        assert!(s.contains("25.0% local hits"));
        assert!(s.contains("repl high-water 5"));
    }

    #[test]
    fn serving_buckets_and_quantiles() {
        // floor(log2(ns)), with 0 absorbed into bucket 0 and a clamped tail.
        assert_eq!(ServingReport::bucket(0), 0);
        assert_eq!(ServingReport::bucket(1), 0);
        assert_eq!(ServingReport::bucket(2), 1);
        assert_eq!(ServingReport::bucket(3), 1);
        assert_eq!(ServingReport::bucket(1024), 10);
        assert_eq!(ServingReport::bucket(u64::MAX), RESPONSE_BUCKETS - 1);
        let mut s = ServingReport::default();
        assert_eq!(s.quantile_ns(0.5), 0, "empty histogram has no quantile");
        assert_eq!(s.hit_ratio(), 0.0);
        // 90 responses near 1 us, 10 near 1 ms: the median sits in the fast
        // bucket, the p99 in the slow one.
        s.response_hist[ServingReport::bucket(1_000)] = 90;
        s.response_hist[ServingReport::bucket(1_000_000)] = 10;
        assert_eq!(s.responses(), 100);
        assert_eq!(s.quantile_ns(0.5), 1 << 9);
        assert_eq!(s.quantile_ns(0.99), 1 << 19);
        s.requests = 100;
        s.local_hits = 25;
        assert!((s.hit_ratio() - 0.25).abs() < 1e-12);
        assert!(s.any());
    }
}
