//! Global variables (shared data objects) and their registry.

use dm_mesh::NodeId;
use std::any::Any;
use std::sync::Arc;

/// Handle to a DIVA global variable.
///
/// A global variable is a shared data object that every processor can read
/// and write through [`crate::ProcCtx`]. Handles are plain `u32` indices and
/// can therefore be stored inside other global variables (this is how the
/// Barnes-Hut application builds its shared tree "with pointers", as the
/// paper describes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarHandle(pub u32);

impl VarHandle {
    /// The handle as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// The dynamically typed value of a global variable.
///
/// Values live in one logical store (the simulator does not physically
/// replicate payloads — only the *accounting* of copies is distributed), so
/// they are shared as `Arc<dyn Any>` and downcast by the typed accessors of
/// [`crate::ProcCtx`].
pub type Value = Arc<dyn Any + Send + Sync>;

/// Static metadata of a global variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Size of the object in bytes; determines the size of every data message
    /// that carries the variable.
    pub bytes: u32,
    /// Processor that created the variable and initially holds its only copy.
    pub owner: NodeId,
}

/// Registry of all global variables of a run.
#[derive(Debug, Default)]
pub struct VarRegistry {
    vars: Vec<VarInfo>,
}

impl VarRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new variable and return its handle.
    pub fn register(&mut self, bytes: u32, owner: NodeId) -> VarHandle {
        let h = VarHandle(self.vars.len() as u32);
        self.vars.push(VarInfo { bytes, owner });
        h
    }

    /// Metadata of a variable.
    pub fn info(&self, var: VarHandle) -> &VarInfo {
        &self.vars[var.index()]
    }

    /// Size of a variable in bytes.
    pub fn bytes(&self, var: VarHandle) -> u32 {
        self.vars[var.index()].bytes
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_handles() {
        let mut r = VarRegistry::new();
        assert!(r.is_empty());
        let a = r.register(100, NodeId(0));
        let b = r.register(200, NodeId(3));
        assert_eq!(a, VarHandle(0));
        assert_eq!(b, VarHandle(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.bytes(a), 100);
        assert_eq!(r.info(b).owner, NodeId(3));
        assert_eq!(a.to_string(), "var0");
    }
}
