//! Global variables (shared data objects), their registry, and the variable
//! lifecycle.
//!
//! # Variable lifecycle
//!
//! A global variable goes through three stages:
//!
//! 1. **register** — [`VarRegistry::register`] (via [`crate::Diva::alloc`]
//!    before the run or [`crate::ProcCtx::alloc`] / [`crate::Op::Alloc`]
//!    during it) assigns a slot and returns the [`VarHandle`];
//! 2. **access** — reads, writes and locks through the handle; every layer
//!    (registry, policy copy sets, presence bitsets, lock table) keeps
//!    per-variable state indexed by the handle;
//! 3. **free** — [`VarRegistry::free`] (via [`crate::ProcCtx::free`] /
//!    [`crate::Op::Free`], or in bulk via [`crate::ProcCtx::end_epoch`] /
//!    [`crate::Op::EndEpoch`]) retires the slot: the policy tears down the
//!    variable's protocol state, the value store drops the payload, and the
//!    slot goes onto a free list to be **recycled** by a later registration.
//!
//! # Handle reuse rules
//!
//! Because freed slots are recycled, a handle is only valid between its
//! registration and its free. The registry keeps a per-slot *generation*
//! counter (odd while the slot is live, even while it sits on the free list)
//! and `debug_assert`s it on every metadata lookup, so touching a freed slot
//! fails loudly in debug builds instead of silently reading a recycled
//! variable. Applications must not cache handles across a free point: the
//! Barnes-Hut application, for example, rebuilds its cell handle lists from
//! scratch every time step and retires the previous step's cells at the step
//! barrier (see `dm-apps`).

use dm_mesh::NodeId;
use std::any::Any;
use std::sync::Arc;

/// Handle to a DIVA global variable.
///
/// A global variable is a shared data object that every processor can read
/// and write through [`crate::ProcCtx`]. Handles are plain `u32` slot indices
/// and can therefore be stored inside other global variables (this is how the
/// Barnes-Hut application builds its shared tree "with pointers", as the
/// paper describes). Slots are recycled after [`VarRegistry::free`], so a
/// stored handle is only meaningful while its variable is live — see the
/// module documentation for the reuse rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarHandle(pub u32);

impl VarHandle {
    /// The handle as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// The dynamically typed value of a global variable.
///
/// Values live in one logical store (the simulator does not physically
/// replicate payloads — only the *accounting* of copies is distributed), so
/// they are shared as `Arc<dyn Any>` and downcast by the typed accessors of
/// [`crate::ProcCtx`].
pub type Value = Arc<dyn Any + Send + Sync>;

/// Static metadata of a global variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Size of the object in bytes; determines the size of every data message
    /// that carries the variable.
    pub bytes: u32,
    /// Processor that created the variable and initially holds its only copy.
    pub owner: NodeId,
}

/// One slot of the registry slab.
#[derive(Debug)]
struct Slot {
    info: VarInfo,
    /// Seqlock-style generation: odd while the slot holds a live variable,
    /// even while it sits on the free list. Bumped by both `register` and
    /// `free`, so every (re-)incarnation of a slot is distinguishable.
    gen: u32,
}

/// Registry of all global variables of a run — a generational slab.
///
/// Freed slots are recycled (LIFO) by later registrations, so the dense
/// per-variable arrays every layer keeps (value store, presence bitsets,
/// policy state vectors) stay bounded by the *live* variable count instead of
/// growing with the total number of registrations. The registry also tracks
/// the live-variable high-water mark, which the runtime surfaces through
/// [`crate::RunReport`] so reclamation is observable.
#[derive(Debug, Default)]
pub struct VarRegistry {
    slots: Vec<Slot>,
    /// Freed slot indices, recycled LIFO.
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    registered: u64,
    freed: u64,
}

impl VarRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new variable and return its handle. Recycles the most
    /// recently freed slot if one is available.
    pub fn register(&mut self, bytes: u32, owner: NodeId) -> VarHandle {
        let info = VarInfo { bytes, owner };
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert_eq!(slot.gen & 1, 0, "recycling a live slot");
                slot.gen += 1;
                slot.info = info;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot { info, gen: 1 });
                idx
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        self.registered += 1;
        VarHandle(idx)
    }

    /// Free a variable: its slot goes onto the free list and will be recycled
    /// by a later [`VarRegistry::register`].
    ///
    /// # Panics
    /// Panics if the variable is not live (double free, or a stale handle to
    /// a recycled slot whose current incarnation was already freed).
    pub fn free(&mut self, var: VarHandle) {
        let slot = self
            .slots
            .get_mut(var.index())
            .unwrap_or_else(|| panic!("free of unknown variable {var}"));
        assert_eq!(
            slot.gen & 1,
            1,
            "double free of {var} (slot generation {})",
            slot.gen
        );
        slot.gen += 1;
        self.free.push(var.0);
        self.live -= 1;
        self.freed += 1;
    }

    #[inline]
    fn slot(&self, var: VarHandle) -> &Slot {
        let slot = &self.slots[var.index()];
        debug_assert_eq!(
            slot.gen & 1,
            1,
            "stale handle {var}: slot generation {} is freed",
            slot.gen
        );
        slot
    }

    /// Metadata of a live variable.
    ///
    /// In debug builds this `debug_assert`s that the slot's generation is
    /// live, so use of a stale handle fails loudly instead of silently
    /// touching a recycled slot.
    pub fn info(&self, var: VarHandle) -> &VarInfo {
        &self.slot(var).info
    }

    /// Size of a variable in bytes (same staleness check as
    /// [`VarRegistry::info`]).
    pub fn bytes(&self, var: VarHandle) -> u32 {
        self.slot(var).info.bytes
    }

    /// Whether the slot of `var` currently holds a live variable.
    pub fn is_live(&self, var: VarHandle) -> bool {
        self.slots.get(var.index()).is_some_and(|s| s.gen & 1 == 1)
    }

    /// Current generation of the slot of `var` (odd = live, even = freed).
    /// Record it at registration time to recognise the slot's recycling
    /// later (the runtime's epoch lists do exactly this).
    pub fn generation(&self, var: VarHandle) -> u32 {
        self.slots[var.index()].gen
    }

    /// Number of slots ever created (live + freed); the dense per-variable
    /// arrays of the runtime are sized by this.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no variable has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of currently live variables.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Highest number of simultaneously live variables seen so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of registrations (including recycled slots).
    pub fn registered_count(&self) -> u64 {
        self.registered
    }

    /// Total number of frees.
    pub fn freed_count(&self) -> u64 {
        self.freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_handles() {
        let mut r = VarRegistry::new();
        assert!(r.is_empty());
        let a = r.register(100, NodeId(0));
        let b = r.register(200, NodeId(3));
        assert_eq!(a, VarHandle(0));
        assert_eq!(b, VarHandle(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.bytes(a), 100);
        assert_eq!(r.info(b).owner, NodeId(3));
        assert_eq!(a.to_string(), "var0");
    }

    #[test]
    fn free_recycles_slots_lifo_and_tracks_high_water() {
        let mut r = VarRegistry::new();
        let a = r.register(8, NodeId(0));
        let b = r.register(16, NodeId(1));
        let c = r.register(24, NodeId(2));
        assert_eq!(r.live_count(), 3);
        assert_eq!(r.high_water(), 3);
        r.free(b);
        r.free(a);
        assert_eq!(r.live_count(), 1);
        assert!(!r.is_live(a));
        assert!(!r.is_live(b));
        assert!(r.is_live(c));
        // LIFO recycling: a's slot first, then b's; len never grows.
        let d = r.register(32, NodeId(3));
        let e = r.register(40, NodeId(4));
        assert_eq!(d, a);
        assert_eq!(e, b);
        assert_eq!(r.len(), 3);
        assert_eq!(r.bytes(d), 32);
        assert_eq!(r.info(e).owner, NodeId(4));
        assert_eq!(r.high_water(), 3);
        assert_eq!(r.registered_count(), 5);
        assert_eq!(r.freed_count(), 2);
    }

    #[test]
    fn generations_distinguish_slot_incarnations() {
        let mut r = VarRegistry::new();
        let a = r.register(8, NodeId(0));
        let g1 = r.generation(a);
        assert_eq!(g1 & 1, 1, "live slot has an odd generation");
        r.free(a);
        assert_eq!(r.generation(a), g1 + 1);
        let b = r.register(8, NodeId(0));
        assert_eq!(b, a, "slot is recycled");
        assert_eq!(r.generation(b), g1 + 2, "new incarnation, new generation");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut r = VarRegistry::new();
        let a = r.register(8, NodeId(0));
        r.free(a);
        r.free(a);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale handle")]
    fn stale_handle_metadata_lookup_fails_loudly() {
        let mut r = VarRegistry::new();
        let a = r.register(8, NodeId(0));
        r.free(a);
        let _ = r.bytes(a);
    }
}
