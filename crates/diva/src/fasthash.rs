//! A minimal multiply-mix hasher for the integer-keyed hot maps of the
//! runtime (transaction tables, mailboxes, lock tables).
//!
//! The default SipHash of `std::collections::HashMap` showed up prominently
//! in simulator profiles; every key we hash is a small integer (or a tuple
//! of them), so a single multiply-rotate round in the style of rustc's
//! `FxHasher` is plenty and several times faster. Not DoS-resistant — all
//! keys are generated internally by the simulator.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One multiply-rotate round per written word.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(SEED).rotate_left(26);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(x as u64);
    }
}

/// A `HashMap` keyed by internal integer ids, using [`FastHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hashes_spread() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
