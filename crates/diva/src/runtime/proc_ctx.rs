//! The per-processor handle through which application code accesses DIVA.

use super::shared::{Request, Response, SharedState, TimedRequest};
use crate::policy::AccessKind;
use crate::var::{Value, VarHandle};
use dm_engine::{us_to_ns, MachineConfig};
use std::any::Any;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// The interface a simulated processor uses to access global variables,
/// synchronise, and (for the hand-optimized baselines) exchange explicit
/// messages.
///
/// One `ProcCtx` is handed to the program closure of every simulated
/// processor by [`Diva::run_prototype`](crate::Diva::run_prototype). All methods account virtual
/// time: local cache hits and `compute()` calls accumulate locally and are
/// charged at the next blocking operation; everything else blocks the
/// simulated processor until the simulated operation completes.
pub struct ProcCtx {
    pub(crate) proc: usize,
    pub(crate) nprocs: usize,
    pub(crate) mesh_dims: (usize, usize),
    pub(crate) shared: Arc<SharedState>,
    pub(crate) req_tx: Sender<TimedRequest>,
    pub(crate) resp_rx: Receiver<Response>,
    pub(crate) machine: MachineConfig,
    pub(crate) pending_compute_ns: u64,
    pub(crate) pending_overhead_ns: u64,
    pub(crate) pending_hits: u64,
    pub(crate) finished: bool,
}

impl ProcCtx {
    /// The id of this simulated processor (row-major mesh numbering).
    pub fn proc_id(&self) -> usize {
        self.proc
    }

    /// Total number of simulated processors.
    pub fn num_procs(&self) -> usize {
        self.nprocs
    }

    /// Grid dimensions `(rows, cols)` for grid topologies (mesh, torus);
    /// `(1, nprocs)` for topologies without a 2-D layout.
    pub fn mesh_dims(&self) -> (usize, usize) {
        self.mesh_dims
    }

    /// The machine parameters of the simulated platform.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Read a global variable, returning a shared handle to its current value.
    ///
    /// # Panics
    /// Panics if the stored value is not of type `T`.
    pub fn read<T: Any + Send + Sync>(&mut self, var: VarHandle) -> Arc<T> {
        let value = self.read_value(var);
        value.downcast::<T>().unwrap_or_else(|_| {
            panic!("variable {var} does not hold a value of the requested type")
        })
    }

    /// Read a global variable as a dynamically typed value.
    pub fn read_value(&mut self, var: VarHandle) -> Value {
        if self.shared.fast_path && self.shared.has_copy(self.proc, var) {
            self.pending_overhead_ns += self.shared.local_access_ns;
            self.pending_hits += 1;
            return self.shared.value(var);
        }
        let resp = self.request(Request::Access {
            proc: self.proc,
            var,
            kind: AccessKind::Read,
            value: None,
        });
        match resp {
            Response::Value(v) => v,
            other => panic!("unexpected response to read: {other:?}"),
        }
    }

    /// Write a new value into a global variable.
    pub fn write<T: Any + Send + Sync>(&mut self, var: VarHandle, value: T) {
        self.write_value(var, Arc::new(value));
    }

    /// Write a dynamically typed value into a global variable.
    pub fn write_value(&mut self, var: VarHandle, value: Value) {
        let resp = self.request(Request::Access {
            proc: self.proc,
            var,
            kind: AccessKind::Write,
            value: Some(value),
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Allocate a new global variable of `bytes` bytes whose only copy
    /// initially resides at this processor.
    pub fn alloc<T: Any + Send + Sync>(&mut self, bytes: u32, value: T) -> VarHandle {
        self.alloc_value(bytes, Arc::new(value))
    }

    /// Allocate a new global variable holding a dynamically typed value.
    pub fn alloc_value(&mut self, bytes: u32, value: Value) -> VarHandle {
        let resp = self.request(Request::Alloc {
            proc: self.proc,
            bytes,
            value,
        });
        match resp {
            Response::Handle(h) => h,
            other => panic!("unexpected response to alloc: {other:?}"),
        }
    }

    /// Wait until every processor has reached the barrier.
    pub fn barrier(&mut self) {
        let resp = self.request(Request::Barrier { proc: self.proc });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Acquire the lock attached to `var` (blocking, FIFO).
    pub fn lock(&mut self, var: VarHandle) {
        let resp = self.request(Request::Lock {
            proc: self.proc,
            var,
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Release the lock attached to `var`.
    pub fn unlock(&mut self, var: VarHandle) {
        let resp = self.request(Request::Unlock {
            proc: self.proc,
            var,
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Free a global variable: tear down its protocol state and recycle its
    /// slot (see [`crate::var`] for the lifecycle and handle-reuse rules).
    ///
    /// Freeing is pure bookkeeping — it sends no messages and consumes no
    /// simulated time, so a run that frees its dead variables is
    /// bit-identical (in simulated quantities) to one that leaks them. The
    /// variable must be quiescent: free after a barrier, never while another
    /// processor may still access it or while a lock release is in flight.
    pub fn free(&mut self, var: VarHandle) {
        let resp = self.request(Request::Free {
            proc: self.proc,
            var,
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Free every variable this processor allocated with
    /// [`ProcCtx::alloc`] (and did not already free) since its previous
    /// `end_epoch` call — the bulk form of [`ProcCtx::free`] for per-phase
    /// allocations.
    pub fn end_epoch(&mut self) {
        let resp = self.request(Request::EndEpoch { proc: self.proc });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Account `us` microseconds of local computation.
    pub fn compute(&mut self, us: f64) {
        debug_assert!(us >= 0.0);
        self.pending_compute_ns += us_to_ns(us);
    }

    /// Account the modelled time of `n` integer operations.
    pub fn compute_int_ops(&mut self, n: u64) {
        self.pending_compute_ns += self.machine.int_ops_ns(n);
    }

    /// Account the modelled time of `n` floating-point operations.
    pub fn compute_flops(&mut self, n: u64) {
        self.pending_compute_ns += self.machine.flops_ns(n);
    }

    /// Send an explicit message of `bytes` bytes carrying `value` to
    /// processor `to` (non-blocking; used by the hand-optimized baselines).
    pub fn send_msg<T: Any + Send + Sync>(&mut self, to: usize, bytes: u32, tag: u64, value: T) {
        self.send_msg_value(to, bytes, tag, Arc::new(value));
    }

    /// Send an explicit, dynamically typed message.
    pub fn send_msg_value(&mut self, to: usize, bytes: u32, tag: u64, value: Value) {
        assert!(to < self.nprocs, "send to non-existent processor {to}");
        let resp = self.request(Request::Send {
            proc: self.proc,
            to,
            bytes,
            tag,
            value,
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Receive the next explicit message with tag `tag` from processor `from`
    /// (blocking).
    pub fn recv_msg<T: Any + Send + Sync>(&mut self, from: usize, tag: u64) -> Arc<T> {
        self.recv_msg_value(from, tag)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("message from {from} (tag {tag}) has an unexpected type"))
    }

    /// Receive the next explicit message as a dynamically typed value.
    pub fn recv_msg_value(&mut self, from: usize, tag: u64) -> Value {
        assert!(
            from < self.nprocs,
            "receive from non-existent processor {from}"
        );
        let resp = self.request(Request::Recv {
            proc: self.proc,
            from,
            tag,
        });
        match resp {
            Response::Value(v) => v,
            other => panic!("unexpected response to recv: {other:?}"),
        }
    }

    /// Enter the named measurement region; subsequent traffic and time of this
    /// processor is attributed to it (until the next `region` call).
    pub fn region(&mut self, name: &str) {
        let resp = self.request(Request::Region {
            proc: self.proc,
            name: name.to_string(),
        });
        debug_assert!(matches!(resp, Response::Done));
    }

    /// Send a blocking request to the coordinator and wait for its response.
    fn request(&mut self, req: Request) -> Response {
        let timed = TimedRequest {
            req,
            compute_ns: std::mem::take(&mut self.pending_compute_ns),
            overhead_ns: std::mem::take(&mut self.pending_overhead_ns),
            hits: std::mem::take(&mut self.pending_hits),
        };
        if self.req_tx.send(timed).is_err() {
            self.coordinator_gone();
        }
        match self.resp_rx.recv() {
            Ok(resp) => resp,
            Err(_) => self.coordinator_gone(),
        }
    }

    /// Unwind this worker because the coordinator dropped its channels — it
    /// either partitioned the network mid-run (the expected case, handled by
    /// [`crate::Diva::run_prototype`]) or crashed. `resume_unwind` skips the
    /// panic hook, so the expected case stays silent; the runtime rethrows
    /// the payload if the run did *not* end in a partition.
    fn coordinator_gone(&self) -> ! {
        std::panic::resume_unwind(Box::new(format!(
            "coordinator terminated before processor {} finished",
            self.proc
        )))
    }

    /// Notify the coordinator that this processor's program has finished.
    /// Called automatically by the runtime; idempotent.
    pub(crate) fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let timed = TimedRequest {
            req: Request::Finish { proc: self.proc },
            compute_ns: std::mem::take(&mut self.pending_compute_ns),
            overhead_ns: std::mem::take(&mut self.pending_overhead_ns),
            hits: std::mem::take(&mut self.pending_hits),
        };
        // The coordinator may already be gone if another worker panicked; the
        // error is ignored so the original panic propagates cleanly.
        let _ = self.req_tx.send(timed);
    }
}
