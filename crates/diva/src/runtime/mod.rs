//! The DIVA runtime: configuration, variable pre-allocation and program
//! execution.

mod coordinator;
mod frontend;
mod parallel;
mod proc_ctx;
mod program;
mod shared;

pub use proc_ctx::ProcCtx;
pub use program::{Op, ProcProgram, StepCtx};

use crate::barrier::TreeBarrier;
use crate::embedding::EmbeddingMode;
use crate::fault::FaultPlan;
use crate::policy::access_tree::AccessTreePolicy;
use crate::policy::fixed_home::FixedHomePolicy;
use crate::policy::Policy;
use crate::report::RunReport;
use crate::var::{Value, VarHandle, VarRegistry};
use coordinator::Coordinator;
use dm_engine::{MachineConfig, SimTime};
use dm_mesh::{AnyTopology, Mesh, NodeId, TreeShape};
use frontend::{DrivenFrontend, Frontend, ThreadedFrontend};
use parallel::ParallelFrontend;
use shared::SharedState;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

/// Which data-management strategy a [`Diva`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// The access-tree strategy with trees of the given shape (2-ary, 4-ary,
    /// 16-ary, ℓ-k-ary).
    AccessTree(TreeShape),
    /// The fixed-home / ownership baseline.
    FixedHome,
}

impl StrategyKind {
    /// Short human-readable name of the strategy.
    pub fn name(&self) -> String {
        match self {
            StrategyKind::AccessTree(shape) => format!("{} access tree", shape.name()),
            StrategyKind::FixedHome => "fixed home".to_string(),
        }
    }
}

/// Configuration of a DIVA instance.
#[derive(Debug, Clone)]
pub struct DivaConfig {
    /// The network of processors (mesh, torus, hypercube or fat tree).
    pub topology: AnyTopology,
    /// Hardware parameters of the simulated machine.
    pub machine: MachineConfig,
    /// The data-management strategy.
    pub strategy: StrategyKind,
    /// How access trees are embedded into the network.
    pub embedding: EmbeddingMode,
    /// Seed for all randomized placement decisions (homes, tree roots).
    pub seed: u64,
    /// Whether reads that hit a local copy bypass the coordinator (fast path).
    /// Disable for exact bookkeeping experiments.
    pub fast_path: bool,
    /// Shape of the combining tree used for barrier synchronisation.
    pub barrier_shape: TreeShape,
    /// Record the coordinator's event-queue push/pop trace into
    /// [`RunDone::queue_trace`]. Off by default (the trace costs memory
    /// proportional to the event count); used by the offline `event_queue`
    /// bench of `dm-bench` to compare priority-queue implementations on real
    /// workloads. Recording does not perturb any simulated quantity.
    pub trace_queue: bool,
    /// Optional deterministic failure schedule (see [`crate::fault`]). `None`
    /// (the default) is guaranteed bit-identical to a build without the fault
    /// subsystem — the fault-free goldens gate this.
    pub fault_plan: Option<FaultPlan>,
    /// Number of worker threads the driven backend uses to step programs
    /// within a request round (see `runtime::parallel`). `1` (the default)
    /// takes the serial [`Diva::run_driven`] code path unchanged; any value
    /// produces bit-identical [`RunReport`]s — the `parallel_parity` tests
    /// in `dm-apps` gate this. Parallelism never changes a simulated
    /// quantity, only host wall-clock.
    pub workers: usize,
    /// Apply per-topology calibrated link-cost presets (longer torus wrap
    /// links, faster upper fat-tree stages, dimension-scaled hypercube
    /// wires) on top of the uniform machine constants — see
    /// [`dm_engine::LinkNetwork::apply_calibrated_costs`]. Off by default;
    /// the default is bit-identical to builds without the feature.
    pub calibrated_delays: bool,
}

impl DivaConfig {
    /// A configuration with the defaults used throughout the paper's
    /// experiments: GCel machine parameters, the modified embedding, a 4-ary
    /// barrier tree and the fast path enabled.
    pub fn new(mesh: Mesh, strategy: StrategyKind) -> Self {
        Self::on(AnyTopology::Mesh(mesh), strategy)
    }

    /// The same defaults over an arbitrary topology (torus, hypercube, fat
    /// tree — or a mesh, in which case this equals [`DivaConfig::new`]).
    pub fn on(topology: impl Into<AnyTopology>, strategy: StrategyKind) -> Self {
        DivaConfig {
            topology: topology.into(),
            machine: MachineConfig::parsytec_gcel(),
            strategy,
            embedding: EmbeddingMode::Modified,
            seed: 0x19990604, // SPAA'99
            fast_path: true,
            barrier_shape: TreeShape::quad(),
            trace_queue: false,
            fault_plan: None,
            workers: 1,
            calibrated_delays: false,
        }
    }

    /// The dimensions programs see through
    /// [`ProcCtx::mesh_dims`] / [`StepCtx::mesh_dims`]: the grid dimensions
    /// for grid topologies, `(1, nprocs)` otherwise.
    fn program_dims(&self) -> (usize, usize) {
        self.topology
            .grid_dims()
            .unwrap_or((1, self.topology.nodes()))
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable event-queue trace recording (see
    /// [`DivaConfig::trace_queue`]).
    pub fn with_queue_trace(mut self, on: bool) -> Self {
        self.trace_queue = on;
        self
    }

    /// Replace the machine parameters.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Attach a deterministic failure schedule (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the number of driven-backend worker threads (see
    /// [`DivaConfig::workers`]). `0` is normalised to `1`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable per-topology calibrated link delays (see
    /// [`DivaConfig::calibrated_delays`]).
    pub fn with_calibrated_delays(mut self, on: bool) -> Self {
        self.calibrated_delays = on;
        self
    }
}

/// The payload of a run that completed normally.
pub struct RunDone<R> {
    /// Timing, congestion and protocol statistics of the run.
    pub report: RunReport,
    /// Per-processor results, indexed by processor id: the closure return
    /// values under [`Diva::run_prototype`], the final program states under
    /// [`Diva::run_driven`].
    pub results: Vec<R>,
    /// Push/pop trace of the coordinator's event queue — empty unless
    /// [`DivaConfig::trace_queue`] was set (see the `event_queue` bench in
    /// `dm-bench`).
    pub queue_trace: Vec<dm_engine::QueueOp>,
}

/// The payload of a run that a [`FaultPlan`] cut short by disconnecting the
/// network. No per-processor results exist — the machine could no longer
/// deliver the traffic the programs were blocked on.
pub struct Partitioned {
    /// Virtual time at which the fatal link-failure batch was applied.
    pub at: SimTime,
    /// A node the connectivity check found unreachable from node 0.
    pub unreachable: NodeId,
    /// Statistics accumulated up to the partition.
    pub report: RunReport,
}

/// The payload of a run that lost one or more application processors to
/// node failures but still ran to completion. Node failure is fail-stop of
/// the *whole* node: with its data-management role, the resident program
/// dies too. The runtime drains the victim's in-flight work — held locks
/// are force-released, barrier membership is removed, posted receives are
/// cancelled — so the survivors finish instead of hanging.
pub struct Degraded<R> {
    /// Virtual time of the first application-processor loss.
    pub at: SimTime,
    /// The lost processors, in loss order (includes processors transitively
    /// starved by a loss, e.g. blocked on a receive whose sender died).
    pub lost_procs: Vec<NodeId>,
    /// FNV-1a digest over `(processor id, final clock)` of every surviving
    /// processor — a compact cross-backend parity witness for degraded runs
    /// (bit-identical across the threaded, driven and parallel backends).
    pub survivor_checksum: u64,
    /// Statistics of the whole (degraded) run.
    pub report: RunReport,
    /// Per-processor results, `None` for lost processors.
    pub results: Vec<Option<R>>,
}

/// The result of running a program on a [`Diva`] instance.
///
/// Without a [`DivaConfig::fault_plan`] (or with one that neither
/// disconnects the machine nor fails a node) the outcome is always
/// [`RunOutcome::Completed`]; [`RunOutcome::expect_completed`] unwraps it.
pub enum RunOutcome<R> {
    /// The run finished normally.
    Completed(RunDone<R>),
    /// Link failures disconnected the machine; the run ended early.
    Partitioned(Partitioned),
    /// Node failures lost application processors; the survivors completed.
    Degraded(Degraded<R>),
}

impl<R> RunOutcome<R> {
    /// The run report, whether the run completed or was cut short.
    pub fn report(&self) -> &RunReport {
        match self {
            RunOutcome::Completed(done) => &done.report,
            RunOutcome::Partitioned(p) => &p.report,
            RunOutcome::Degraded(d) => &d.report,
        }
    }

    /// Whether a fault plan disconnected the machine.
    pub fn is_partitioned(&self) -> bool {
        matches!(self, RunOutcome::Partitioned(_))
    }

    /// The partition details, if the run was cut short.
    pub fn partitioned(&self) -> Option<&Partitioned> {
        match self {
            RunOutcome::Partitioned(p) => Some(p),
            _ => None,
        }
    }

    /// Whether node failures lost application processors.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunOutcome::Degraded(_))
    }

    /// The loss details, if the run was degraded.
    pub fn degraded(&self) -> Option<&Degraded<R>> {
        match self {
            RunOutcome::Degraded(d) => Some(d),
            _ => None,
        }
    }

    /// Unwrap a completed run; panics (with the fault details) if the
    /// network was disconnected or application processors were lost.
    pub fn expect_completed(self) -> RunDone<R> {
        match self {
            RunOutcome::Completed(done) => done,
            RunOutcome::Partitioned(p) => panic!(
                "run partitioned at {} ns (node {} unreachable) — handle RunOutcome::Partitioned",
                p.at, p.unreachable
            ),
            RunOutcome::Degraded(d) => panic!(
                "run degraded at {} ns ({} processor(s) lost) — handle RunOutcome::Degraded",
                d.at,
                d.lost_procs.len()
            ),
        }
    }
}

/// A DIVA instance: a simulated mesh machine with a data-management strategy,
/// ready to allocate global variables and run a program on every processor.
///
/// ```
/// use dm_diva::{Diva, DivaConfig, StrategyKind};
/// use dm_mesh::{Mesh, TreeShape};
///
/// let mut diva = Diva::new(DivaConfig::new(
///     Mesh::square(4),
///     StrategyKind::AccessTree(TreeShape::quad()),
/// ));
/// let counter = diva.alloc(0, 8, 0u64);
/// let outcome = diva
///     .run_prototype(|ctx| {
///         // every processor reads the shared counter once
///         let v = ctx.read::<u64>(counter);
///         ctx.barrier();
///         *v
///     })
///     .expect_completed();
/// assert!(outcome.results.iter().all(|&v| v == 0));
/// assert!(outcome.report.total_time > 0);
/// ```
pub struct Diva {
    cfg: DivaConfig,
    registry: VarRegistry,
    values: Vec<Value>,
    policy: Box<dyn Policy>,
}

impl Diva {
    /// Create a DIVA instance from a configuration.
    pub fn new(cfg: DivaConfig) -> Self {
        let policy: Box<dyn Policy> = match cfg.strategy {
            StrategyKind::AccessTree(shape) => Box::new(AccessTreePolicy::new_on(
                &cfg.topology,
                shape,
                cfg.embedding,
                cfg.seed,
            )),
            StrategyKind::FixedHome => Box::new(FixedHomePolicy::new_on(&cfg.topology, cfg.seed)),
        };
        Diva {
            cfg,
            registry: VarRegistry::new(),
            values: Vec::new(),
            policy,
        }
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &DivaConfig {
        &self.cfg
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.cfg.topology.nodes()
    }

    /// Allocate a global variable of `bytes` bytes before the run. Its only
    /// copy initially resides at processor `owner` (as in the paper's matrix
    /// experiments, where block `A[i][j]` starts out cached at processor
    /// `p_{i,j}`).
    ///
    /// Pre-run variables are *not* epoch-scoped: an
    /// [`ProcCtx::end_epoch`] / [`Op::EndEpoch`] never retires them. They
    /// can still be freed explicitly with [`ProcCtx::free`] / [`Op::Free`]
    /// once dead (the matmul and bitonic applications do exactly that after
    /// their final barrier).
    pub fn alloc<T: Any + Send + Sync>(&mut self, owner: usize, bytes: u32, value: T) -> VarHandle {
        self.alloc_value(owner, bytes, Arc::new(value))
    }

    /// Allocate a global variable holding a dynamically typed value.
    pub fn alloc_value(&mut self, owner: usize, bytes: u32, value: Value) -> VarHandle {
        assert!(
            owner < self.num_procs(),
            "owner processor {owner} does not exist"
        );
        let var = self.registry.register(bytes, NodeId(owner as u32));
        self.values.push(value);
        self.policy.register_var(var, NodeId(owner as u32), bytes);
        var
    }

    /// Initialise the state shared between the processors and the
    /// coordinator: the value store plus the initial presence bits.
    fn setup_shared(
        cfg: &DivaConfig,
        registry: &VarRegistry,
        values: Vec<Value>,
    ) -> Arc<SharedState> {
        let nprocs = cfg.topology.nodes();
        let shared = Arc::new(SharedState::new(
            nprocs,
            cfg.fast_path,
            cfg.machine.local_access_ns(),
        ));
        {
            let mut store = shared.values.write().expect("values lock poisoned");
            *store = values;
        }
        for idx in 0..registry.len() {
            let var = VarHandle(idx as u32);
            let owner = registry.info(var).owner;
            shared.set_copy(owner.index(), var, true);
        }
        shared
    }

    /// Run `program` on every simulated processor and return the per-processor
    /// results together with the run report.
    ///
    /// This is the *threaded* execution mode, kept as an explicit
    /// **prototyping API**: the closure is invoked once per processor (with a
    /// [`ProcCtx`] whose `proc_id()` identifies the processor) on its own OS
    /// thread; the coordinator thread serialises their blocking operations
    /// deterministically and advances virtual time. Maximum ergonomics —
    /// ordinary Rust control flow — at the cost of one OS thread plus two
    /// channel hops per blocking operation.
    ///
    /// All experiments run under [`Diva::run_driven`], the only execution
    /// mode that is *provably* deterministic (the coordinator steps every
    /// program inline, so there is no OS scheduler in the loop at all) and
    /// the only one that reaches large meshes. Use this entry point to
    /// prototype a new application with ordinary control flow, port it to a
    /// [`ProcProgram`] state machine, and pin the port with a parity test
    /// asserting bit-identical [`RunReport`]s — the workflow every `dm-apps`
    /// application followed.
    pub fn run_prototype<F, R>(self, program: F) -> RunOutcome<R>
    where
        F: Fn(&mut ProcCtx) -> R + Send + Sync,
        R: Send,
    {
        let Diva {
            cfg,
            registry,
            values,
            policy,
        } = self;
        let nprocs = cfg.topology.nodes();
        let shared = Self::setup_shared(&cfg, &registry, values);

        let (req_tx, req_rx) = mpsc::channel();
        let mut resp_senders = Vec::with_capacity(nprocs);
        let mut ctxs = Vec::with_capacity(nprocs);
        for proc in 0..nprocs {
            let (tx, rx) = mpsc::channel();
            resp_senders.push(tx);
            ctxs.push(ProcCtx {
                proc,
                nprocs,
                mesh_dims: cfg.program_dims(),
                shared: Arc::clone(&shared),
                req_tx: req_tx.clone(),
                resp_rx: rx,
                machine: cfg.machine,
                pending_compute_ns: 0,
                pending_overhead_ns: 0,
                pending_hits: 0,
                finished: false,
            });
        }
        drop(req_tx);

        let barrier = TreeBarrier::new_on(&cfg.topology, cfg.barrier_shape);
        let faults = cfg
            .fault_plan
            .as_ref()
            .map(|p| p.resolve(&cfg.topology))
            .unwrap_or_default();
        let mut coordinator = Coordinator::new(
            cfg.topology.clone(),
            cfg.machine,
            barrier,
            policy,
            registry,
            Arc::clone(&shared),
            ThreadedFrontend::new(req_rx, resp_senders, nprocs),
            faults,
        );
        if cfg.trace_queue {
            coordinator.env.events.record_trace();
        }
        if cfg.calibrated_delays {
            coordinator.env.network.apply_calibrated_costs();
        }

        let program = &program;
        std::thread::scope(move |scope| {
            let handles: Vec<_> = ctxs
                .into_iter()
                .map(|mut ctx| {
                    scope.spawn(move || {
                        let result = catch_unwind(AssertUnwindSafe(|| program(&mut ctx)));
                        // Always tell the coordinator we are done, even when the
                        // program panicked, so the simulation can unwind cleanly.
                        ctx.finish();
                        result
                    })
                })
                .collect();
            let (report, frontend, queue_trace, partitioned, loss) = coordinator.run();
            if let Some((at, unreachable)) = partitioned {
                // The run ended early: workers are still blocked in their
                // response channels. Dropping the frontend severs those
                // channels, which unwinds each worker (silently — the severed
                // channel raises via `resume_unwind`, not the panic hook);
                // their unwind payloads are expected and dropped.
                drop(frontend);
                for h in handles {
                    let _ = h.join();
                }
                return RunOutcome::Partitioned(Partitioned {
                    at,
                    unreachable,
                    report,
                });
            }
            if let Some(loss) = loss {
                // Degraded run: the killed workers' channels were severed at
                // fault time and their threads already unwound; their unwind
                // payloads are expected and dropped. Survivor panics still
                // propagate.
                let results = handles
                    .into_iter()
                    .enumerate()
                    .map(|(p, h)| match h.join() {
                        Ok(Ok(r)) => Some(r),
                        Ok(Err(e)) | Err(e) => {
                            if loss.lost.iter().any(|n| n.index() == p) {
                                None
                            } else {
                                resume_unwind(e)
                            }
                        }
                    })
                    .collect();
                return RunOutcome::Degraded(Degraded {
                    at: loss.at,
                    lost_procs: loss.lost,
                    survivor_checksum: loss.survivor_checksum,
                    report,
                    results,
                });
            }
            let results = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(r)) => r,
                    Ok(Err(e)) | Err(e) => resume_unwind(e),
                })
                .collect();
            RunOutcome::Completed(RunDone {
                report,
                results,
                queue_trace,
            })
        })
    }

    /// Run one [`ProcProgram`] state machine per simulated processor and
    /// return the final program states together with the run report.
    ///
    /// This is the *event-driven* execution mode: no OS threads and no
    /// channels — the coordinator steps every program inline off its event
    /// queue, which makes simulations of large meshes (64×64 and beyond)
    /// practical. For the same configuration and an operation-equivalent
    /// program, the produced [`RunReport`] is bit-identical to the threaded
    /// mode's (see the parity tests in `dm-apps`).
    ///
    /// `programs[p]` is the state machine of processor `p`; the vector must
    /// contain exactly one program per processor.
    pub fn run_driven<P: ProcProgram>(self, programs: Vec<P>) -> RunOutcome<P> {
        let Diva {
            cfg,
            registry,
            values,
            policy,
        } = self;
        let nprocs = cfg.topology.nodes();
        assert_eq!(
            programs.len(),
            nprocs,
            "run_driven needs exactly one program per processor"
        );
        let shared = Self::setup_shared(&cfg, &registry, values);
        let mesh_dims = cfg.program_dims();
        if cfg.workers > 1 {
            // Worker count is capped at the processor count: partitions are
            // non-empty by construction, so extra workers would only idle.
            let regions = dm_mesh::partition_regions(&cfg.topology, cfg.workers.min(nprocs));
            let frontend = ParallelFrontend::new(
                programs,
                Arc::clone(&shared),
                cfg.machine,
                mesh_dims,
                &regions,
            );
            Self::drive(
                cfg,
                registry,
                policy,
                shared,
                frontend,
                ParallelFrontend::into_programs,
            )
        } else {
            let frontend =
                DrivenFrontend::new(programs, Arc::clone(&shared), cfg.machine, mesh_dims);
            Self::drive(
                cfg,
                registry,
                policy,
                shared,
                frontend,
                DrivenFrontend::into_programs,
            )
        }
    }

    /// Build the coordinator around a driven frontend, run it to completion
    /// and package the outcome. `extract` recovers the final program states
    /// from the frontend.
    fn drive<P: ProcProgram, F: Frontend>(
        cfg: DivaConfig,
        registry: VarRegistry,
        policy: Box<dyn Policy>,
        shared: Arc<SharedState>,
        frontend: F,
        extract: fn(F) -> Vec<P>,
    ) -> RunOutcome<P> {
        let barrier = TreeBarrier::new_on(&cfg.topology, cfg.barrier_shape);
        let faults = cfg
            .fault_plan
            .as_ref()
            .map(|p| p.resolve(&cfg.topology))
            .unwrap_or_default();
        let mut coordinator = Coordinator::new(
            cfg.topology.clone(),
            cfg.machine,
            barrier,
            policy,
            registry,
            shared,
            frontend,
            faults,
        );
        if cfg.trace_queue {
            coordinator.env.events.record_trace();
        }
        if cfg.calibrated_delays {
            coordinator.env.network.apply_calibrated_costs();
        }
        let (report, frontend, queue_trace, partitioned, loss) = coordinator.run();
        if let Some((at, unreachable)) = partitioned {
            return RunOutcome::Partitioned(Partitioned {
                at,
                unreachable,
                report,
            });
        }
        if let Some(loss) = loss {
            // Lost programs are frozen mid-operation; their final states are
            // meaningless and withheld as `None`.
            let results = extract(frontend)
                .into_iter()
                .enumerate()
                .map(|(p, r)| {
                    if loss.lost.iter().any(|n| n.index() == p) {
                        None
                    } else {
                        Some(r)
                    }
                })
                .collect();
            return RunOutcome::Degraded(Degraded {
                at: loss.at,
                lost_procs: loss.lost,
                survivor_checksum: loss.survivor_checksum,
                report,
                results,
            });
        }
        RunOutcome::Completed(RunDone {
            report,
            results: extract(frontend),
            queue_trace,
        })
    }
}

// ---------------------------------------------------------------------------
// Send audit (compile-time).
//
// The parallel sweep executor in `dm-bench` moves *whole simulations* —
// a [`Diva`] instance (configuration, registry, pre-allocated values and the
// boxed policy), the per-processor programs and the produced [`RunReport`] —
// across worker threads. `Send` is guaranteed structurally: `Policy` and
// `ProcProgram` have `Send` supertraits, values are `Arc<dyn Any + Send +
// Sync>`, and the only interior mutability in the tree (the `RefCell`
// position cache of [`crate::Embedder`]) is `Send`-compatible because each
// simulation is owned by exactly one thread at a time (the cache is per
// instance, never shared). These assertions turn any future regression —
// an `Rc`, a raw pointer, a non-`Send` trait object — into a compile error
// instead of a failure at the executor's spawn site.
// ---------------------------------------------------------------------------
fn _assert_send<T: Send>() {}
const _: fn() = _assert_send::<Diva>;
const _: fn() = _assert_send::<DivaConfig>;
const _: fn() = _assert_send::<RunReport>;
const _: fn() = _assert_send::<RunOutcome<()>>;
const _: fn() = _assert_send::<Box<dyn Policy>>;
const _: fn() = _assert_send::<Box<dyn ProcProgram>>;
const _: fn() = _assert_send::<crate::Embedder>;
const _: fn() = _assert_send::<VarRegistry>;
const _: fn() = _assert_send::<AccessTreePolicy>;
const _: fn() = _assert_send::<FixedHomePolicy>;
