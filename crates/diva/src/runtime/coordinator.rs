//! The coordinator: a deterministic discrete-event loop that drives the
//! simulated processors (through a [`Frontend`] — worker threads or inline
//! state machines), the data-management policy, the barrier and the explicit
//! message-passing layer over the simulated network.

use super::frontend::Frontend;
use super::shared::{Request, Response, SharedState, TimedRequest};
use crate::barrier::{BarrierAction, BarrierMsg, TreeBarrier};
use crate::fasthash::FastMap;
use crate::fault::{FaultAction, TimedFault};
use crate::policy::{AccessKind, Counter, Policy, PolicyEnv, PolicyMsg, TxId, COUNTER_COUNT};
use crate::report::{FaultTally, RegionReport, RunReport, ServingReport};
use crate::var::{Value, VarHandle, VarRegistry};
use dm_engine::{EventQueue, LinkNetwork, MachineConfig, RegionId, SimTime};
use dm_mesh::{AnyTopology, NodeId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// What a blocked processor is waiting for (determines the response payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxKind {
    Read,
    Write,
    Lock,
    Unlock,
}

/// Bookkeeping for one in-flight transaction.
#[derive(Debug)]
pub(crate) struct TxRec {
    pub proc: usize,
    pub var: Option<VarHandle>,
    pub kind: TxKind,
    /// Virtual time at which the processor issued the request; the
    /// completion time minus this is the per-request response time of the
    /// serving histogram.
    pub issued: SimTime,
}

/// Events of the coordinator's discrete-event loop.
pub(crate) enum Event {
    /// A protocol message arrives at mesh node `at`.
    PolicyDeliver { at: NodeId, msg: PolicyMsg },
    /// A barrier message arrives at its tree node.
    BarrierDeliver { msg: BarrierMsg },
    /// An explicit message-passing payload arrives at processor `to`.
    MpDeliver {
        to: usize,
        from: usize,
        tag: u64,
        value: Value,
    },
    /// A scheduled fault fires. Fault events are enqueued at construction,
    /// before any protocol traffic, so the FIFO tie-break of the event queue
    /// applies them ahead of same-time arrivals — identically in both
    /// backends.
    Fault(FaultAction),
}

/// The part of the coordinator state the policy is allowed to see
/// (implements [`PolicyEnv`]).
pub(crate) struct EnvState {
    pub now: SimTime,
    pub machine: MachineConfig,
    pub topo: AnyTopology,
    pub network: LinkNetwork,
    pub events: EventQueue<Event>,
    pub registry: VarRegistry,
    pub shared: Arc<SharedState>,
    pub counters: [u64; COUNTER_COUNT],
    pub tx_table: FastMap<TxId, TxRec>,
    pub completions: Vec<(TxId, SimTime)>,
    pub proc_region: Vec<RegionId>,
    /// Fault accounting for the report (all zero without a fault plan).
    pub faults: FaultTally,
    /// Which application processors were fail-stopped by a node failure
    /// (all false without a fault plan). Lives in the env so policy code
    /// can drop straggling traffic from dead processors (see
    /// [`PolicyEnv::app_lost`]).
    pub app_lost: Vec<bool>,
    /// Latest arrival of any re-homing migration message: folded into the
    /// total time so recovery traffic extends the run like protocol traffic.
    pub rehome_quiesce: SimTime,
    /// Serving-side metrics (requests, hits, bytes moved, response
    /// histogram, replication high-water), tallied here — and only here — so
    /// every policy and every frontend reports identically.
    pub serving: ServingReport,
    /// Per-variable live-copy counts (indexed by slot), maintained through
    /// [`EnvState::note_copy`] for the replication-degree high-water mark.
    copy_counts: Vec<u32>,
    next_tx: u64,
}

impl EnvState {
    fn new_tx(&mut self, proc: usize, var: Option<VarHandle>, kind: TxKind) -> TxId {
        self.next_tx += 1;
        let tx = TxId(self.next_tx);
        self.tx_table.insert(
            tx,
            TxRec {
                proc,
                var,
                kind,
                issued: self.now,
            },
        );
        tx
    }

    /// Track a presence-bit transition for the replication-degree
    /// high-water mark. Must be called *before* the bit is mutated in the
    /// shared state (it reads the old value to recognise real transitions;
    /// redundant `set_presence` calls must not distort the count).
    pub(crate) fn note_copy(&mut self, proc: usize, var: VarHandle, present: bool) {
        let idx = var.index();
        if self.copy_counts.len() <= idx {
            self.copy_counts.resize(idx + 1, 0);
        }
        if present {
            if !self.shared.has_copy(proc, var) {
                self.copy_counts[idx] += 1;
                let count = self.copy_counts[idx] as u64;
                if count > self.serving.replication_high_water {
                    self.serving.replication_high_water = count;
                }
            }
        } else if self.shared.has_copy(proc, var) {
            self.copy_counts[idx] -= 1;
        }
    }
}

impl PolicyEnv for EnvState {
    fn now(&self) -> SimTime {
        self.now
    }

    fn config(&self) -> &MachineConfig {
        &self.machine
    }

    fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    fn var_bytes(&self, var: VarHandle) -> u32 {
        self.registry.bytes(var)
    }

    fn send(&mut self, from: NodeId, to: NodeId, bytes: u32, msg: PolicyMsg) -> SimTime {
        self.serving.bytes_moved += bytes as u64;
        let region = self.proc_region[from.index()];
        let d = self.network.transmit(self.now, from, to, bytes, region);
        self.events
            .push(d.arrival, Event::PolicyDeliver { at: to, msg });
        d.sender_free
    }

    fn complete(&mut self, tx: TxId) {
        let at = self.now;
        self.completions.push((tx, at));
    }

    fn complete_at(&mut self, tx: TxId, at: SimTime) {
        self.completions.push((tx, at.max(self.now)));
    }

    fn set_presence(&mut self, proc: NodeId, var: VarHandle, present: bool) {
        self.note_copy(proc.index(), var, present);
        self.shared.set_copy(proc.index(), var, present);
    }

    fn bump(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }

    fn app_lost(&self, node: NodeId) -> bool {
        self.app_lost[node.index()]
    }

    fn note_force_release(&mut self) {
        self.faults.locks_force_released += 1;
    }

    fn charge_rehome(&mut self, from: NodeId, to: NodeId, bytes: u32) {
        // Routed, timed and counted like any message (the congestion cost of
        // recovery is the point), but delivered to no handler: re-homing
        // mutates directory state in place at fault time.
        let region = self.proc_region[from.index()];
        let d = self.network.transmit(self.now, from, to, bytes, region);
        self.faults.rehome_msgs += 1;
        self.faults.rehome_bytes += bytes as u64;
        self.rehome_quiesce = self.rehome_quiesce.max(d.arrival);
    }
}

/// Summary of application-processor losses in a run: produced when node
/// failures fail-stopped one or more resident programs but the survivors
/// still ran to completion (the degraded outcome).
pub(crate) struct AppLoss {
    /// Virtual time of the first loss.
    pub at: SimTime,
    /// The lost processors, in loss order.
    pub lost: Vec<NodeId>,
    /// FNV-1a digest over `(processor id, final clock)` of every surviving
    /// processor — a cheap cross-backend parity witness for degraded runs.
    pub survivor_checksum: u64,
}

/// What [`Coordinator::run`] returns: the report, the frontend (it owns the
/// final program states), the recorded queue trace, the partition that ended
/// the run early (if any), and the app losses node failures inflicted (if
/// any).
pub(crate) type RunArtifacts<F> = (
    RunReport,
    F,
    Vec<dm_engine::QueueOp>,
    Option<(SimTime, NodeId)>,
    Option<AppLoss>,
);

/// The coordinator of a [`Diva::run`](crate::Diva::run) /
/// [`Diva::run_driven`](crate::Diva::run_driven) execution.
pub(crate) struct Coordinator<F: Frontend> {
    pub env: EnvState,
    policy: Box<dyn Policy>,
    barrier: TreeBarrier,
    frontend: F,
    nprocs: usize,
    finished: usize,
    strategy_name: String,

    proc_clock: Vec<SimTime>,
    proc_compute: Vec<SimTime>,
    barrier_arrivals: u64,

    // Measurement regions: index 0 is the implicit whole-run region, named
    // regions start at 1.
    region_ids: HashMap<String, RegionId>,
    region_names: Vec<String>,
    region_enter: Vec<SimTime>,
    region_wall: Vec<Vec<SimTime>>,
    region_compute: Vec<Vec<SimTime>>,

    // Explicit message passing.
    mailbox: FastMap<(usize, usize, u64), VecDeque<(SimTime, Value)>>,
    pending_recv: FastMap<(usize, usize, u64), VecDeque<SimTime>>,

    /// Per-processor epoch lists: variables allocated during the run (with
    /// the slot generation at registration time) and not yet retired by an
    /// `EndEpoch`. A generation mismatch at sweep time means the variable was
    /// already freed explicitly (and its slot possibly recycled), so the
    /// sweep skips it.
    epoch_vars: Vec<Vec<(VarHandle, u32)>>,
    /// Per-processor length threshold at which the epoch list is compacted
    /// (dead entries dropped); doubled after each compaction so the cost
    /// stays amortised O(1) per allocation.
    epoch_compact_at: Vec<usize>,

    /// Double buffer for [`Coordinator::flush_completions`] so the drain
    /// loop reuses one allocation.
    completion_scratch: Vec<(TxId, SimTime)>,

    /// Which nodes currently carry their data-management role (all true
    /// without a fault plan; a [`FaultAction::RestoreNode`] flips the bit
    /// back and the node rejoins as a fresh successor candidate).
    node_alive: Vec<bool>,
    /// Per-processor "no further requests owed" flag: set on a normal
    /// `Finish` and when a node failure fail-stops the resident program.
    proc_done: Vec<bool>,
    /// Per-processor "arrived at the barrier, awaiting its wake" flag —
    /// barrier-membership removal of a lost processor must be deferred
    /// while this is set (its arrival was already counted; see
    /// [`TreeBarrier::remove`]).
    in_barrier: Vec<bool>,
    /// Application processors lost to node failures, in loss order.
    lost_procs: Vec<NodeId>,
    /// Virtual time of the first application-processor loss.
    first_loss: Option<SimTime>,
    /// Set when link failures disconnect the surviving network: `(time,
    /// first unreachable node)`. Ends the run cleanly.
    partitioned: Option<(SimTime, NodeId)>,

    last_event_time: SimTime,
}

impl<F: Frontend> Coordinator<F> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topo: AnyTopology,
        machine: MachineConfig,
        barrier: TreeBarrier,
        policy: Box<dyn Policy>,
        registry: VarRegistry,
        shared: Arc<SharedState>,
        frontend: F,
        faults: Vec<TimedFault>,
    ) -> Self {
        let nprocs = topo.nodes();
        let strategy_name = policy.name();
        let network = LinkNetwork::new(topo.clone(), machine);
        let mut coord = Coordinator {
            env: EnvState {
                now: 0,
                machine,
                topo,
                network,
                // Pre-size from the processor count: the opening barrier /
                // first request round schedules O(nprocs) arrivals at once,
                // and regrowing the heap there costs more than the whole
                // queue is worth. 4 slots per processor covers the steady
                // state of every figure workload.
                events: EventQueue::with_capacity(4 * nprocs),
                registry,
                shared,
                counters: [0; COUNTER_COUNT],
                tx_table: FastMap::default(),
                completions: Vec::new(),
                proc_region: vec![dm_engine::GLOBAL_REGION; nprocs],
                faults: FaultTally::default(),
                app_lost: vec![false; nprocs],
                rehome_quiesce: 0,
                serving: ServingReport::default(),
                copy_counts: Vec::new(),
                next_tx: 0,
            },
            policy,
            barrier,
            frontend,
            nprocs,
            finished: 0,
            strategy_name,
            proc_clock: vec![0; nprocs],
            proc_compute: vec![0; nprocs],
            barrier_arrivals: 0,
            region_ids: HashMap::new(),
            region_names: Vec::new(),
            region_enter: vec![0; nprocs],
            region_wall: vec![vec![0; nprocs]],
            region_compute: vec![vec![0; nprocs]],
            mailbox: FastMap::default(),
            pending_recv: FastMap::default(),
            epoch_vars: vec![Vec::new(); nprocs],
            epoch_compact_at: vec![64; nprocs],
            completion_scratch: Vec::new(),
            node_alive: vec![true; nprocs],
            proc_done: vec![false; nprocs],
            in_barrier: vec![false; nprocs],
            lost_procs: Vec::new(),
            first_loss: None,
            partitioned: None,
            last_event_time: 0,
        };
        // Pre-run allocations hold their only copy at the owner without ever
        // passing through `set_presence`; seed the replication counts so the
        // high-water mark reflects them.
        let prereg = coord.env.registry.len();
        coord.env.copy_counts = vec![0; prereg];
        for idx in 0..prereg {
            if coord.env.registry.is_live(VarHandle(idx as u32)) {
                coord.env.copy_counts[idx] = 1;
                coord.env.serving.replication_high_water = 1;
            }
        }
        // Enqueue the fault schedule before any protocol traffic: the
        // event queue's FIFO tie-break then applies a fault ahead of every
        // same-time message arrival, identically in both backends.
        for f in faults {
            coord.env.events.push(f.at, Event::Fault(f.action));
        }
        coord
    }

    /// Retire a variable: policy teardown, payload drop, slot recycling.
    /// Pure bookkeeping — no messages, no simulated time.
    fn free_variable(&mut self, var: VarHandle) {
        self.policy.free_var(&mut self.env, var);
        debug_assert!(
            !self.env.shared.any_copy(var),
            "policy teardown left a presence bit set for {var}"
        );
        self.env.shared.clear_value(var);
        self.env.registry.free(var);
    }

    /// Run the event loop to completion; produce the report, the recorded
    /// queue trace (empty unless [`crate::DivaConfig::trace_queue`] enabled
    /// it), the frontend (the driven frontend owns the final program states),
    /// and — if link failures disconnected the machine — the partition that
    /// ended the run early.
    pub(crate) fn run(mut self) -> RunArtifacts<F> {
        let mut batch = Vec::new();
        loop {
            // 1. Gather one round of requests: one blocking operation per
            //    runnable processor.
            self.frontend.gather(&mut batch);
            if !batch.is_empty() {
                // Deterministic handling order: by issue time, then processor
                // id — a total order (each processor contributes at most one
                // request per round), so any gather order produces the same
                // handling sequence. Steady-state rounds are singletons;
                // skip the sort machinery for those.
                if batch.len() > 1 {
                    batch.sort_by_key(|r| (self.issue_time(r), r.req.proc()));
                }
                for r in batch.drain(..) {
                    self.handle_request(r);
                }
                self.flush_completions();
                continue;
            }
            // 2. All processors blocked: advance the simulation.
            if self.finished == self.nprocs && self.env.events.is_empty() {
                break;
            }
            match self.env.events.pop() {
                Some((t, ev)) => {
                    self.env.now = t;
                    self.last_event_time = self.last_event_time.max(t);
                    self.handle_event(ev);
                    self.flush_completions();
                    // A partition means some pending traffic can never be
                    // delivered: stop cleanly (before the next gather would
                    // block on it) instead of hanging or panicking deep in
                    // the network.
                    if self.partitioned.is_some() {
                        break;
                    }
                }
                None => {
                    // No runnable processor and no pending event. Without
                    // losses this is an application bug (missing send/recv,
                    // barrier or unlock). With lost application processors
                    // it is starvation, not a bug: a survivor blocked on a
                    // dead peer (say, a receive whose sender was lost) can
                    // never be woken — it is transitively lost, and the run
                    // ends degraded instead of hanging.
                    if self.lost_procs.is_empty() {
                        self.report_deadlock();
                    }
                    self.starvation_kill();
                }
            }
        }
        let loss = self.app_loss_summary();
        let report = self.build_report();
        let trace = self.env.events.take_trace();
        (report, self.frontend, trace, self.partitioned, loss)
    }

    /// Package the loss bookkeeping for the degraded outcome (`None` when no
    /// application processor was lost).
    fn app_loss_summary(&self) -> Option<AppLoss> {
        if self.lost_procs.is_empty() {
            return None;
        }
        // FNV-1a over (processor id, final clock) of the survivors: both
        // quantities are bit-identical across backends, so the digest is a
        // compact parity witness for degraded runs.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for p in 0..self.nprocs {
            if self.env.app_lost[p] {
                continue;
            }
            for byte in (p as u64)
                .to_le_bytes()
                .into_iter()
                .chain(self.proc_clock[p].to_le_bytes())
            {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        Some(AppLoss {
            at: self
                .first_loss
                .expect("lost processors without a loss time"),
            lost: self.lost_procs.clone(),
            survivor_checksum: hash,
        })
    }

    /// Issue time of a request: the processor's clock plus the locally
    /// accumulated compute/overhead time it carries.
    fn issue_time(&self, r: &TimedRequest) -> SimTime {
        self.proc_clock[r.req.proc()] + r.compute_ns + r.overhead_ns
    }

    fn respond(&mut self, proc: usize, resp: Response) {
        // Whatever would have woken a lost processor evaporates: its program
        // is fail-stopped and must never become runnable again.
        if self.env.app_lost[proc] {
            return;
        }
        self.frontend.respond(proc, resp);
    }

    fn handle_request(&mut self, timed: TimedRequest) {
        let TimedRequest {
            req,
            compute_ns,
            overhead_ns,
            hits,
        } = timed;
        let proc = req.proc();
        let region = self.env.proc_region[proc];
        self.region_compute[region.0 as usize][proc] += compute_ns;
        self.proc_compute[proc] += compute_ns;
        self.proc_clock[proc] += compute_ns + overhead_ns;
        self.env.counters[Counter::ReadHit.index()] += hits;
        if hits > 0 {
            // Fast-path local reads: each was served in one local access
            // without a protocol transaction. They are requests too, and
            // their (constant) latency belongs in the response histogram.
            self.env.serving.requests += hits;
            self.env.serving.local_hits += hits;
            let bucket = ServingReport::bucket(self.env.machine.local_access_ns());
            self.env.serving.response_hist[bucket] += hits;
        }
        let now = self.proc_clock[proc];
        self.env.now = now;

        match req {
            Request::Access {
                var, kind, value, ..
            } => {
                self.env.serving.requests += 1;
                if let Some(v) = value {
                    self.env.shared.set_value(var, v);
                }
                let tx_kind = match kind {
                    AccessKind::Read => TxKind::Read,
                    AccessKind::Write => TxKind::Write,
                };
                let tx = self.env.new_tx(proc, Some(var), tx_kind);
                self.policy
                    .on_access(&mut self.env, tx, NodeId(proc as u32), var, kind);
            }
            Request::Alloc { bytes, value, .. } => {
                let owner = NodeId(proc as u32);
                let var = self.env.registry.register(bytes, owner);
                self.env.shared.store_value(var, value);
                self.policy.register_var(var, owner, bytes);
                self.env.note_copy(proc, var, true);
                self.env.shared.set_copy(proc, var, true);
                // In-run allocations are epoch-scoped: an `EndEpoch` by this
                // processor retires them in bulk. The generation recognises
                // slots already recycled by an explicit free.
                let gen = self.env.registry.generation(var);
                self.epoch_vars[proc].push((var, gen));
                self.proc_clock[proc] += self.env.machine.local_access_ns();
                self.respond(proc, Response::Handle(var));
            }
            Request::Free { var, .. } => {
                self.free_variable(var);
                // Lazily compact the epoch list once it crosses the
                // per-processor threshold, dropping entries whose slot
                // generation moved on: a program that reclaims through
                // explicit frees alone must not grow its list with the
                // total allocation count. Doubling the threshold after each
                // compaction keeps the cost amortised O(1) per allocation.
                let list = &mut self.epoch_vars[proc];
                if list.len() >= self.epoch_compact_at[proc] {
                    let registry = &self.env.registry;
                    list.retain(|&(v, g)| registry.is_live(v) && registry.generation(v) == g);
                    self.epoch_compact_at[proc] = (list.len() * 2).max(64);
                }
                self.respond(proc, Response::Done);
            }
            Request::EndEpoch { .. } => {
                let list = std::mem::take(&mut self.epoch_vars[proc]);
                for (var, gen) in &list {
                    // Skip variables freed explicitly since their allocation
                    // (their slot generation moved on).
                    if self.env.registry.is_live(*var) && self.env.registry.generation(*var) == *gen
                    {
                        self.free_variable(*var);
                    }
                }
                // Hand the (now empty) list back so its allocation is reused
                // by the next epoch.
                let mut list = list;
                list.clear();
                self.epoch_vars[proc] = list;
                self.epoch_compact_at[proc] = 64;
                self.policy.end_epoch(&mut self.env);
                self.respond(proc, Response::Done);
            }
            Request::Barrier { .. } => {
                self.barrier_arrivals += 1;
                self.in_barrier[proc] = true;
                let actions = self.barrier.arrive(NodeId(proc as u32));
                self.apply_barrier_actions(actions, now);
            }
            Request::Lock { var, .. } => {
                let tx = self.env.new_tx(proc, Some(var), TxKind::Lock);
                self.policy
                    .on_lock(&mut self.env, tx, NodeId(proc as u32), var);
            }
            Request::Unlock { var, .. } => {
                let tx = self.env.new_tx(proc, Some(var), TxKind::Unlock);
                self.policy
                    .on_unlock(&mut self.env, tx, NodeId(proc as u32), var);
            }
            Request::Send {
                to,
                bytes,
                tag,
                value,
                ..
            } => {
                let d = self.env.network.transmit(
                    now,
                    NodeId(proc as u32),
                    NodeId(to as u32),
                    bytes,
                    region,
                );
                self.env.events.push(
                    d.arrival,
                    Event::MpDeliver {
                        to,
                        from: proc,
                        tag,
                        value,
                    },
                );
                // Non-blocking send: the sender continues once its send-side
                // startup is done.
                self.proc_clock[proc] = d.sender_free;
                self.respond(proc, Response::Done);
            }
            Request::Recv { from, tag, .. } => {
                let key = (proc, from, tag);
                if let Some((arrival, value)) =
                    self.mailbox.get_mut(&key).and_then(|q| q.pop_front())
                {
                    self.proc_clock[proc] = now.max(arrival);
                    self.respond(proc, Response::Value(value));
                } else {
                    self.pending_recv.entry(key).or_default().push_back(now);
                }
            }
            Request::Region { name, .. } => {
                self.switch_region(proc, &name, now);
                self.respond(proc, Response::Done);
            }
            Request::Finish { .. } => {
                self.flush_region_time(proc, now);
                self.proc_done[proc] = true;
                self.finished += 1;
            }
        }
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::PolicyDeliver { at, msg } => {
                self.policy.on_message(&mut self.env, at, msg);
            }
            Event::BarrierDeliver { msg } => {
                let actions = self.barrier.on_message(msg);
                let now = self.env.now;
                self.apply_barrier_actions(actions, now);
            }
            Event::MpDeliver {
                to,
                from,
                tag,
                value,
            } => {
                // A payload that was in flight when its destination
                // processor was lost evaporates (and must not advance the
                // dead processor's frozen clock).
                if self.env.app_lost[to] {
                    return;
                }
                let key = (to, from, tag);
                let now = self.env.now;
                if let Some(issue) = self.pending_recv.get_mut(&key).and_then(|q| q.pop_front()) {
                    self.proc_clock[to] = issue.max(now);
                    self.respond(to, Response::Value(value));
                } else {
                    self.mailbox.entry(key).or_default().push_back((now, value));
                }
            }
            Event::Fault(action) => self.apply_fault(action),
        }
    }

    /// Apply one scheduled fault to the network and the protocol state.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::DegradeLinks(victims) => {
                for (link, factor) in victims {
                    self.env.network.degrade_link(link, factor);
                    self.env.faults.links_degraded += 1;
                }
            }
            FaultAction::FailLinks(victims) => {
                for link in victims {
                    if self.env.network.fail_link(link) {
                        self.env.faults.links_failed += 1;
                    }
                }
                // One connectivity check per batch: if the survivors no
                // longer connect the machine, record the partition — the run
                // loop ends cleanly at the next iteration.
                if let Err(unreachable) = self.env.network.check_connected() {
                    self.partitioned = Some((self.env.now, unreachable));
                }
            }
            FaultAction::FailNode(victim) => {
                if !self.node_alive[victim.index()] {
                    return;
                }
                // Liveness backstop for hand-written or randomized plans:
                // the last alive node never fails (there would be no
                // successor for its data-management role).
                if self.node_alive.iter().filter(|&&a| a).count() == 1 {
                    return;
                }
                self.node_alive[victim.index()] = false;
                self.env.faults.nodes_failed += 1;
                let successor = self.successor_of(victim);
                self.policy.on_node_fail(&mut self.env, victim, successor);
                // Node failure is fail-stop of the *whole* node: the
                // resident application processor dies with its
                // data-management role.
                self.kill_app(victim);
            }
            FaultAction::HealLinks(links) => {
                for link in links {
                    if self.env.network.heal_link(link) {
                        self.env.faults.links_healed += 1;
                    }
                }
            }
            FaultAction::RestoreNode(victim) => {
                if self.node_alive[victim.index()] {
                    return;
                }
                self.node_alive[victim.index()] = true;
                self.env.faults.nodes_restored += 1;
                // The node rejoins as a *fresh* successor candidate: it is
                // again eligible to inherit roles from future failures, but
                // directory state re-homed away from it stays where it is
                // and its lost application processor does not come back
                // (fail-stop) — see docs/architecture.md for the rationale.
                self.policy.on_node_restore(victim);
            }
        }
    }

    /// Fail-stop the application processor resident on a failed node: drain
    /// its in-flight work so the run completes (degraded) instead of
    /// hanging. A program that already finished keeps its result — only the
    /// node's data-management role was lost.
    fn kill_app(&mut self, victim: NodeId) {
        let p = victim.index();
        if self.proc_done[p] {
            return;
        }
        let now = self.env.now;
        self.env.app_lost[p] = true;
        self.lost_procs.push(victim);
        self.env.faults.procs_lost += 1;
        self.first_loss.get_or_insert(now);
        // The victim counts as finished for the termination condition; its
        // region wall time closes at its last known local clock (the clock
        // of a dead processor never advances again).
        let clock = self.proc_clock[p];
        self.flush_region_time(p, clock);
        self.proc_done[p] = true;
        self.finished += 1;
        // Never step (or wait for) the victim's program again.
        self.frontend.kill(p);
        // Receives the victim posted can never complete; payloads already
        // in flight towards it evaporate in `MpDeliver`.
        self.pending_recv.retain(|&(to, _, _), _| to != p);
        // Locks: purge the victim's queued requests and force-release any
        // lock it holds so a dead holder never wedges its waiters (the next
        // waiter is granted; straggling lock traffic from the victim is
        // dropped by the `LockTable`).
        self.policy.on_app_loss(&mut self.env, victim);
        // Barrier membership: if the victim is waiting inside the barrier
        // its arrival was already counted, so removal is deferred until the
        // round completes and its wake is dropped (see
        // `apply_barrier_actions`); otherwise rounds stop expecting it now.
        if !self.in_barrier[p] {
            let actions = self.barrier.remove(victim);
            self.apply_barrier_actions(actions, now);
        }
    }

    /// Kill every still-blocked unfinished processor: they are transitively
    /// lost (blocked on a dead peer), the simulation has no event left that
    /// could wake them. Only called when at least one processor was already
    /// lost to a node failure.
    fn starvation_kill(&mut self) {
        let stalled: Vec<NodeId> = (0..self.nprocs)
            .filter(|&p| !self.proc_done[p])
            .map(|p| NodeId(p as u32))
            .collect();
        debug_assert!(
            !stalled.is_empty(),
            "starvation kill with every processor finished"
        );
        for victim in stalled {
            self.kill_app(victim);
        }
    }

    /// Deterministic successor for a failed node's data-management role: the
    /// next alive node id, wrapping. The fault plan guarantees at least one
    /// survivor.
    fn successor_of(&self, victim: NodeId) -> NodeId {
        let n = self.nprocs;
        let mut i = (victim.index() + 1) % n;
        while !self.node_alive[i] {
            i = (i + 1) % n;
            debug_assert_ne!(i, victim.index(), "no alive successor");
        }
        NodeId(i as u32)
    }

    fn apply_barrier_actions(&mut self, actions: Vec<BarrierAction>, now: SimTime) {
        for action in actions {
            match action {
                BarrierAction::Send { from, to, msg } => {
                    let region = self.env.proc_region[from.index()];
                    let bytes = self.env.machine.control_msg_bytes;
                    let d = self.env.network.transmit(now, from, to, bytes, region);
                    self.env
                        .events
                        .push(d.arrival, Event::BarrierDeliver { msg });
                }
                BarrierAction::Wake { proc } => {
                    let p = proc.index();
                    self.in_barrier[p] = false;
                    if self.env.app_lost[p] {
                        // The processor died while waiting inside the
                        // barrier: its arrival was counted and the round
                        // completed normally. Its wake is dropped, and only
                        // now — with no in-flight arrival left — is its
                        // membership removed for future rounds.
                        let removal = self.barrier.remove(proc);
                        self.apply_barrier_actions(removal, now);
                        continue;
                    }
                    self.proc_clock[p] = self.proc_clock[p].max(now);
                    self.respond(p, Response::Done);
                }
            }
        }
    }

    /// Deliver all pending transaction completions to their processors.
    fn flush_completions(&mut self) {
        while !self.env.completions.is_empty() {
            let mut batch = std::mem::take(&mut self.completion_scratch);
            std::mem::swap(&mut self.env.completions, &mut batch);
            for (tx, at) in batch.drain(..) {
                let rec = self
                    .env
                    .tx_table
                    .remove(&tx)
                    .expect("completion of an unknown transaction");
                let proc = rec.proc;
                if self.env.app_lost[proc] {
                    // The transaction outlived its processor; the result
                    // evaporates and the dead clock stays frozen.
                    continue;
                }
                if matches!(rec.kind, TxKind::Read | TxKind::Write) {
                    let bucket = ServingReport::bucket(at.saturating_sub(rec.issued));
                    self.env.serving.response_hist[bucket] += 1;
                }
                self.proc_clock[proc] = self.proc_clock[proc].max(at);
                let resp = match rec.kind {
                    TxKind::Read => {
                        let var = rec.var.expect("read transaction without a variable");
                        Response::Value(self.env.shared.value(var))
                    }
                    TxKind::Write | TxKind::Lock | TxKind::Unlock => Response::Done,
                };
                self.respond(proc, resp);
            }
            self.completion_scratch = batch;
        }
    }

    fn switch_region(&mut self, proc: usize, name: &str, now: SimTime) {
        self.flush_region_time(proc, now);
        let next_id = self.region_names.len() as u16 + 1;
        let id = *self.region_ids.entry(name.to_string()).or_insert_with(|| {
            self.region_names.push(name.to_string());
            RegionId(next_id)
        });
        if self.region_wall.len() <= id.0 as usize {
            self.region_wall
                .resize(id.0 as usize + 1, vec![0; self.nprocs]);
            self.region_compute
                .resize(id.0 as usize + 1, vec![0; self.nprocs]);
        }
        self.env.proc_region[proc] = id;
        self.region_enter[proc] = now;
    }

    /// Add the time since the processor entered its current region to that
    /// region's wall-time accumulator.
    fn flush_region_time(&mut self, proc: usize, now: SimTime) {
        let region = self.env.proc_region[proc];
        let elapsed = now.saturating_sub(self.region_enter[proc]);
        self.region_wall[region.0 as usize][proc] += elapsed;
        self.region_enter[proc] = now;
    }

    fn report_deadlock(&self) -> ! {
        let waiting_recvs: usize = self.pending_recv.values().map(|q| q.len()).sum();
        let open_txs = self.env.tx_table.len();
        panic!(
            "simulation deadlock: {} of {} processors finished, {} open transactions, \
             {} processors waiting in recv(), no pending events — the application is \
             most likely missing a matching send/recv, barrier or unlock",
            self.finished, self.nprocs, open_txs, waiting_recvs
        );
    }

    fn build_report(&mut self) -> RunReport {
        let proc_max = self.proc_clock.iter().copied().max().unwrap_or(0);
        let total_time = proc_max
            .max(self.last_event_time)
            .max(self.env.rehome_quiesce);
        let compute_time = self.proc_compute.iter().copied().max().unwrap_or(0);
        // Close the current region of every processor at its final clock so
        // per-region wall times are complete even without explicit region
        // switches before finishing.
        let mut regions = BTreeMap::new();
        for (i, name) in self.region_names.iter().enumerate() {
            let id = RegionId(i as u16 + 1);
            let stats = self.env.network.region_stats(id);
            let wall = self.region_wall[id.0 as usize]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let compute = self.region_compute[id.0 as usize]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            regions.insert(
                name.clone(),
                RegionReport {
                    wall_time: wall,
                    compute_time: compute,
                    congestion_msgs: stats.congestion_msgs(),
                    congestion_bytes: stats.congestion_bytes(),
                    total_msgs: stats.total_msgs(),
                    total_bytes: stats.total_bytes(),
                },
            );
        }
        let barriers = if self.nprocs > 0 {
            self.barrier_arrivals / self.nprocs as u64
        } else {
            0
        };
        RunReport::new(
            std::mem::take(&mut self.strategy_name),
            total_time,
            self.env.network.stats().clone(),
            self.env.counters,
            regions,
            self.env.network.messages_sent(),
            self.env.network.bytes_sent(),
            compute_time,
            barriers,
            self.env.registry.registered_count(),
            self.env.registry.freed_count(),
            self.env.registry.high_water() as u64,
            self.env.faults,
            self.env.serving,
        )
    }
}
