//! The parallel driven frontend: round-level parallelism inside one
//! simulation, bit-identical to [`DrivenFrontend`](super::frontend::DrivenFrontend).
//!
//! ## Design: the round *is* the safe window
//!
//! The driven backend's schedule is round-based: a round collects exactly one
//! blocking operation from every runnable processor, and the coordinator
//! handles them sorted by `(issue time, processor id)`. While a round is
//! gathered the coordinator is quiescent — no policy code runs, no network
//! state moves, no shared value changes. Producing a round's requests is
//! therefore embarrassingly parallel: each program steps against its own
//! state plus a *frozen* snapshot of the shared store, so the requests are
//! identical whatever order (or thread) produces them, and the coordinator's
//! sort — a total order, since a processor contributes at most one request
//! per round — re-serialises handling deterministically. This is the
//! conservative safe-window synchronisation of the Chandy–Misra–Bryant
//! family with the window boundaries placed where this simulator already has
//! barriers: between gather and handling. Within the window the lookahead is
//! effectively infinite (requests in a round are causally independent by
//! construction); across windows nothing is parallelised, so no null
//! messages are needed and bit-identity to the serial backend is structural
//! rather than re-derived.
//!
//! Event-level sharding (per-partition event queues synchronised by
//! link-latency lookahead, the textbook null-message design) was evaluated
//! and rejected: the network's contention model (`LinkNetwork`'s
//! `link_free`/`port_free` occupancy vectors) and the event queue's global
//! FIFO tie-break make delivery times depend on the *call order* of
//! `transmit`, so any out-of-order handling produces different — not just
//! reordered — timings, breaking the repo's #1 invariant. See
//! `docs/architecture.md` ("Parallel driven backend") for the measured
//! round-size distribution that bounds what parallel gathering can win.
//!
//! ## Partitioning
//!
//! Processors are assigned to workers by [`dm_mesh::partition_regions`] —
//! the same recursive bisection that builds the decomposition tree, so a
//! worker owns a geometrically compact region of the topology. Each
//! partition owns its members' programs and slots outright; a scoped worker
//! thread borrows one partition mutably, steps its runnable members, and
//! writes into a per-partition output buffer. Buffers are concatenated in
//! partition order (deterministic, but irrelevant: the coordinator's sort
//! normalises any merge order). Rounds smaller than
//! [`ParallelFrontend::threshold`] are stepped inline — the steady state of
//! most workloads is a singleton round, where spawning would only add
//! overhead.

use super::frontend::{step_to_request, Frontend, Slot};
use super::program::ProcProgram;
use super::shared::{Response, SharedState, TimedRequest};
use dm_engine::MachineConfig;
use dm_mesh::NodeId;
use std::sync::Arc;

/// Smallest round (runnable-processor count) worth fanning out across
/// threads: below this, scoped-spawn overhead (~tens of µs) exceeds the
/// stepping work of typical programs.
const PARALLEL_ROUND_MIN: usize = 24;

/// One worker's share of the processors.
struct Partition<P> {
    /// Global processor ids of the members, in partition-local order.
    procs: Vec<usize>,
    /// Program state machines of the members (same local order).
    programs: Vec<P>,
    /// Per-member frontend slots (same local order).
    slots: Vec<Slot>,
    /// Partition-local indices of members whose previous operation
    /// completed; drained by the next gather.
    runnable: Vec<u32>,
    /// Per-partition request buffer, reused across rounds.
    out: Vec<TimedRequest>,
}

/// The parallel driven frontend. Produces the exact request stream of
/// [`DrivenFrontend`](super::frontend::DrivenFrontend); only the host-side
/// scheduling of program stepping differs.
pub(crate) struct ParallelFrontend<P: ProcProgram> {
    parts: Vec<Partition<P>>,
    /// `proc` → `(partition index, partition-local index)`.
    locate: Vec<(u32, u32)>,
    shared: Arc<SharedState>,
    machine: MachineConfig,
    mesh_dims: (usize, usize),
    nprocs: usize,
    /// Number of runnable processors across all partitions (the size of the
    /// round the next gather will produce).
    runnable_total: usize,
    /// Rounds at least this large are stepped on worker threads.
    threshold: usize,
}

impl<P: ProcProgram> ParallelFrontend<P> {
    /// `regions` is the worker partition of the processor set (disjoint
    /// cover of `0..programs.len()`, one entry per worker) — see
    /// [`dm_mesh::partition_regions`].
    pub(crate) fn new(
        programs: Vec<P>,
        shared: Arc<SharedState>,
        machine: MachineConfig,
        mesh_dims: (usize, usize),
        regions: &[Vec<NodeId>],
    ) -> Self {
        let nprocs = programs.len();
        let mut pool: Vec<Option<P>> = programs.into_iter().map(Some).collect();
        let mut locate = vec![(u32::MAX, u32::MAX); nprocs];
        let mut parts = Vec::with_capacity(regions.len());
        for (pi, region) in regions.iter().enumerate() {
            let mut part = Partition {
                procs: Vec::with_capacity(region.len()),
                programs: Vec::with_capacity(region.len()),
                slots: Vec::with_capacity(region.len()),
                runnable: (0..region.len() as u32).collect(),
                out: Vec::new(),
            };
            for (li, node) in region.iter().enumerate() {
                let proc = node.index();
                let program = pool[proc]
                    .take()
                    .expect("worker partition assigns a processor twice");
                locate[proc] = (pi as u32, li as u32);
                part.procs.push(proc);
                part.programs.push(program);
                part.slots.push(Slot::new());
            }
            parts.push(part);
        }
        assert!(
            locate.iter().all(|&(p, _)| p != u32::MAX),
            "worker partition does not cover every processor"
        );
        let threshold = PARALLEL_ROUND_MIN.max(2 * parts.len());
        ParallelFrontend {
            parts,
            locate,
            shared,
            machine,
            mesh_dims,
            nprocs,
            runnable_total: nprocs,
            threshold,
        }
    }

    /// The final program states in processor order, consumed after the run.
    pub(crate) fn into_programs(self) -> Vec<P> {
        let mut out: Vec<Option<P>> = (0..self.nprocs).map(|_| None).collect();
        for part in self.parts {
            for (li, program) in part.programs.into_iter().enumerate() {
                out[part.procs[li]] = Some(program);
            }
        }
        out.into_iter()
            .map(|p| p.expect("partition lost a program"))
            .collect()
    }
}

impl<P: ProcProgram> Frontend for ParallelFrontend<P> {
    fn gather(&mut self, batch: &mut Vec<TimedRequest>) {
        if self.runnable_total == 0 {
            return;
        }
        let nprocs = self.nprocs;
        let mesh_dims = self.mesh_dims;
        if self.runnable_total >= self.threshold && self.parts.len() > 1 {
            let shared = &self.shared;
            let machine = &self.machine;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(self.parts.len());
                for part in self.parts.iter_mut().filter(|p| !p.runnable.is_empty()) {
                    handles.push(scope.spawn(move || {
                        while let Some(li) = part.runnable.pop() {
                            let li = li as usize;
                            let req = step_to_request(
                                &mut part.programs[li],
                                &mut part.slots[li],
                                part.procs[li],
                                nprocs,
                                mesh_dims,
                                machine,
                                shared,
                            );
                            part.out.push(req);
                        }
                    }));
                }
                for h in handles {
                    if let Err(payload) = h.join() {
                        // Propagate program panics exactly like the inline
                        // path would.
                        std::panic::resume_unwind(payload);
                    }
                }
            });
            for part in &mut self.parts {
                batch.append(&mut part.out);
            }
        } else {
            for part in &mut self.parts {
                while let Some(li) = part.runnable.pop() {
                    let li = li as usize;
                    let req = step_to_request(
                        &mut part.programs[li],
                        &mut part.slots[li],
                        part.procs[li],
                        nprocs,
                        mesh_dims,
                        &self.machine,
                        &self.shared,
                    );
                    batch.push(req);
                }
            }
        }
        self.runnable_total = 0;
    }

    fn respond(&mut self, proc: usize, resp: Response) {
        let (pi, li) = self.locate[proc];
        let part = &mut self.parts[pi as usize];
        part.slots[li as usize].absorb(resp);
        part.runnable.push(li);
        self.runnable_total += 1;
    }

    fn kill(&mut self, proc: usize) {
        // Faults fire only while every processor is blocked, so the victim
        // cannot be runnable; the sweep is a cheap safety net (removal
        // order is irrelevant — the coordinator sorts every round).
        let (pi, li) = self.locate[proc];
        let part = &mut self.parts[pi as usize];
        if let Some(pos) = part.runnable.iter().position(|&x| x == li) {
            part.runnable.swap_remove(pos);
            self.runnable_total -= 1;
        }
    }
}
