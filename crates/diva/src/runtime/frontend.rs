//! Execution-mode frontends of the coordinator.
//!
//! The [`Coordinator`](super::coordinator::Coordinator) drives the
//! simulation; *how* the per-processor programs are executed is abstracted
//! behind the [`Frontend`] trait:
//!
//! * [`ThreadedFrontend`] — the classic mode: one OS thread per simulated
//!   processor running an ordinary Rust closure, blocking operations
//!   exchanged over mpsc channels. Maximum ergonomics, poor scalability.
//! * [`DrivenFrontend`] — the event-driven mode: programs are
//!   [`ProcProgram`] state machines stepped inline by the coordinator. Zero
//!   threads, zero channel hops; this is what makes 64×64+ meshes practical.
//!
//! Both frontends produce the same round-based request schedule: a *round*
//! collects exactly one blocking operation from every runnable processor,
//! the coordinator handles them sorted by (issue time, processor id), and
//! every processor unblocked during the round issues its next operation in
//! the following round. Identical scheduling is what makes run reports of
//! the two modes bit-identical (see the parity tests in `dm-apps`).

use super::program::{Op, ProcProgram, StepCtx};
use super::shared::{Request, Response, SharedState, TimedRequest};
use crate::policy::AccessKind;
use crate::var::{Value, VarHandle};
use dm_engine::MachineConfig;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// How the coordinator obtains blocking operations from the simulated
/// processors and delivers their results.
pub(crate) trait Frontend {
    /// Collect the next round of requests — exactly one per runnable
    /// processor — into `batch`. Leaves `batch` empty when every processor
    /// is blocked (waiting for a completion or finished).
    fn gather(&mut self, batch: &mut Vec<TimedRequest>);

    /// Deliver the result of a blocking operation, unblocking `proc` so its
    /// next request appears in a subsequent round.
    fn respond(&mut self, proc: usize, resp: Response);

    /// Permanently remove `proc` from the schedule: its program is never
    /// stepped (or waited for) again and it owes no further requests.
    /// Called when a node failure fail-stops the resident application
    /// processor; the coordinator guarantees `respond` is never called for
    /// a killed processor afterwards.
    fn kill(&mut self, proc: usize);
}

/// The thread-per-processor frontend (the classic DIVA execution mode).
pub(crate) struct ThreadedFrontend {
    req_rx: Receiver<TimedRequest>,
    /// Per-processor response channels; `None` once the processor was
    /// killed (dropping the sender is what unwinds its blocked thread).
    resp_tx: Vec<Option<Sender<Response>>>,
    /// Number of worker threads currently running (i.e. that will send one
    /// more request).
    active: usize,
    /// Processors killed by a node failure: their parting requests (the
    /// unwinding thread's `finish` notification) are discarded by `gather`.
    killed: Vec<bool>,
}

impl ThreadedFrontend {
    pub(crate) fn new(
        req_rx: Receiver<TimedRequest>,
        resp_tx: Vec<Sender<Response>>,
        nprocs: usize,
    ) -> Self {
        ThreadedFrontend {
            req_rx,
            resp_tx: resp_tx.into_iter().map(Some).collect(),
            active: nprocs,
            killed: vec![false; nprocs],
        }
    }
}

impl Frontend for ThreadedFrontend {
    fn gather(&mut self, batch: &mut Vec<TimedRequest>) {
        while self.active > 0 {
            let req = self
                .req_rx
                .recv()
                .expect("a worker thread terminated without notifying the coordinator");
            if self.killed[req.req.proc()] {
                // The parting `Finish` a killed worker sends while
                // unwinding. The victim was blocked (outside the active
                // count) when it was killed, so this owes the round
                // nothing and is dropped without touching `active`.
                continue;
            }
            self.active -= 1;
            batch.push(req);
        }
    }

    fn respond(&mut self, proc: usize, resp: Response) {
        self.resp_tx[proc]
            .as_ref()
            .expect("response to a killed processor")
            .send(resp)
            .expect("worker thread terminated while waiting for a response");
        self.active += 1;
    }

    fn kill(&mut self, proc: usize) {
        self.killed[proc] = true;
        // Sever the response channel: the victim's thread — blocked in its
        // response receive, since faults only fire while every live worker
        // is blocked — unwinds on the disconnect (silently, via
        // `resume_unwind`, not the panic hook).
        self.resp_tx[proc] = None;
    }
}

/// Per-processor state of the driven frontends (serial and parallel).
pub(super) struct Slot {
    /// Result of the last completed `Read` / `Recv`, until the program takes it.
    value: Option<Value>,
    /// Result of the last completed `Alloc`.
    handle: Option<VarHandle>,
    /// Modelled computation time accumulated since the last blocking op.
    pending_compute_ns: u64,
    /// Library overhead of fast-path hits since the last blocking op.
    pending_overhead_ns: u64,
    /// Fast-path read hits since the last blocking op.
    pending_hits: u64,
}

impl Slot {
    pub(super) fn new() -> Self {
        Slot {
            value: None,
            handle: None,
            pending_compute_ns: 0,
            pending_overhead_ns: 0,
            pending_hits: 0,
        }
    }

    /// Absorb a coordinator response into the slot (the processor becomes
    /// runnable; its next step sees the stored payload).
    pub(super) fn absorb(&mut self, resp: Response) {
        match resp {
            Response::Value(v) => self.value = Some(v),
            Response::Handle(h) => self.handle = Some(h),
            Response::Done => {}
        }
    }
}

/// Step one program until it yields a blocking operation (fast-path reads
/// and `Compute` are absorbed inline) and convert it into a request.
///
/// This is the single stepping routine of both driven frontends. It touches
/// only the processor's own program and slot plus *read-only* shared state
/// (the coordinator is quiescent while a round is gathered), which is what
/// makes a round's requests safe to produce on worker threads in any order:
/// the resulting `TimedRequest`s are identical however the round is
/// scheduled, and the coordinator's `(issue time, processor id)` sort fixes
/// the handling order afterwards.
pub(super) fn step_to_request<P: ProcProgram>(
    program: &mut P,
    slot: &mut Slot,
    proc: usize,
    nprocs: usize,
    mesh_dims: (usize, usize),
    machine: &MachineConfig,
    shared: &SharedState,
) -> TimedRequest {
    let req = loop {
        let mut ctx = StepCtx {
            proc,
            nprocs,
            mesh_dims,
            machine,
            value: &mut slot.value,
            handle: &mut slot.handle,
            pending_compute_ns: &mut slot.pending_compute_ns,
        };
        match program.step(&mut ctx) {
            Op::Compute { ns } => slot.pending_compute_ns += ns,
            Op::Read(var) => {
                if shared.fast_path && shared.has_copy(proc, var) {
                    // Same fast path as ProcCtx::read_value: a local hit
                    // costs only library overhead, charged to the next
                    // blocking operation.
                    slot.pending_overhead_ns += shared.local_access_ns;
                    slot.pending_hits += 1;
                    slot.value = Some(shared.value(var));
                    continue;
                }
                break Request::Access {
                    proc,
                    var,
                    kind: AccessKind::Read,
                    value: None,
                };
            }
            Op::Write(var, value) => {
                break Request::Access {
                    proc,
                    var,
                    kind: AccessKind::Write,
                    value: Some(value),
                }
            }
            Op::Alloc { bytes, value } => break Request::Alloc { proc, bytes, value },
            Op::Lock(var) => break Request::Lock { proc, var },
            Op::Unlock(var) => break Request::Unlock { proc, var },
            Op::Free(var) => break Request::Free { proc, var },
            Op::EndEpoch => break Request::EndEpoch { proc },
            Op::Barrier => break Request::Barrier { proc },
            Op::Region(name) => break Request::Region { proc, name },
            Op::Send {
                to,
                bytes,
                tag,
                value,
            } => {
                assert!(to < nprocs, "send to non-existent processor {to}");
                break Request::Send {
                    proc,
                    to,
                    bytes,
                    tag,
                    value,
                };
            }
            Op::Recv { from, tag } => {
                assert!(from < nprocs, "receive from non-existent processor {from}");
                break Request::Recv { proc, from, tag };
            }
            Op::Done => break Request::Finish { proc },
        }
    };
    TimedRequest {
        req,
        compute_ns: std::mem::take(&mut slot.pending_compute_ns),
        overhead_ns: std::mem::take(&mut slot.pending_overhead_ns),
        hits: std::mem::take(&mut slot.pending_hits),
    }
}

/// The event-driven frontend: [`ProcProgram`] state machines stepped inline.
pub(crate) struct DrivenFrontend<P: ProcProgram> {
    programs: Vec<P>,
    slots: Vec<Slot>,
    /// Processors whose previous operation completed; stepped at the next
    /// [`Frontend::gather`].
    runnable: Vec<usize>,
    shared: Arc<SharedState>,
    machine: MachineConfig,
    mesh_dims: (usize, usize),
}

impl<P: ProcProgram> DrivenFrontend<P> {
    pub(crate) fn new(
        programs: Vec<P>,
        shared: Arc<SharedState>,
        machine: MachineConfig,
        mesh_dims: (usize, usize),
    ) -> Self {
        let nprocs = programs.len();
        DrivenFrontend {
            programs,
            slots: (0..nprocs).map(|_| Slot::new()).collect(),
            runnable: (0..nprocs).collect(),
            shared,
            machine,
            mesh_dims,
        }
    }

    /// The final program states, consumed after the run completes.
    pub(crate) fn into_programs(self) -> Vec<P> {
        self.programs
    }
}

impl<P: ProcProgram> Frontend for DrivenFrontend<P> {
    fn gather(&mut self, batch: &mut Vec<TimedRequest>) {
        let nprocs = self.programs.len();
        while let Some(proc) = self.runnable.pop() {
            let req = step_to_request(
                &mut self.programs[proc],
                &mut self.slots[proc],
                proc,
                nprocs,
                self.mesh_dims,
                &self.machine,
                &self.shared,
            );
            batch.push(req);
        }
    }

    fn respond(&mut self, proc: usize, resp: Response) {
        self.slots[proc].absorb(resp);
        self.runnable.push(proc);
    }

    fn kill(&mut self, proc: usize) {
        // Faults fire only while every processor is blocked, so the victim
        // cannot be runnable; the retain is a cheap safety net. Its program
        // stays owned (frozen mid-operation) until `into_programs`.
        self.runnable.retain(|&p| p != proc);
    }
}
