//! State shared between the worker threads and the coordinator, and the
//! request/response protocol between them.

use crate::policy::AccessKind;
use crate::var::{Value, VarHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// State shared (read-mostly) between all simulated processors and the
/// coordinator.
///
/// The coordinator only mutates this state while every worker thread is
/// blocked waiting for a response, so workers never observe torn updates; the
/// locks exist to satisfy the compiler and are effectively uncontended (in
/// the event-driven mode everything runs on one thread anyway).
pub(crate) struct SharedState {
    /// Current value of every global variable, indexed by `VarHandle`.
    pub values: RwLock<Vec<Value>>,
    /// Per-processor presence bitset: bit `v` of word `v / 64` says whether
    /// the processor holds a valid local copy of variable `v` (the read fast
    /// path). A dense bitset instead of a hash set: `has_copy` is on the hot
    /// path of every read the simulator executes, and invalidations flip
    /// many bits per write. Bits are atomic so the common operations need no
    /// exclusive lock; the `RwLock` only guards growth of the word vector.
    presence: Vec<RwLock<Vec<AtomicU64>>>,
    /// Whether the read fast path is enabled.
    pub fast_path: bool,
    /// Cost of a local cache hit, in nanoseconds.
    pub local_access_ns: u64,
}

impl SharedState {
    pub(crate) fn new(nprocs: usize, fast_path: bool, local_access_ns: u64) -> Self {
        SharedState {
            values: RwLock::new(Vec::new()),
            presence: (0..nprocs).map(|_| RwLock::new(Vec::new())).collect(),
            fast_path,
            local_access_ns,
        }
    }

    /// Whether processor `proc` holds a valid copy of `var`.
    pub(crate) fn has_copy(&self, proc: usize, var: VarHandle) -> bool {
        let words = self.presence[proc].read().expect("presence lock poisoned");
        words
            .get(var.index() / 64)
            .is_some_and(|w| w.load(Ordering::Relaxed) >> (var.0 % 64) & 1 == 1)
    }

    /// Update the presence bit of (`proc`, `var`).
    pub(crate) fn set_copy(&self, proc: usize, var: VarHandle, present: bool) {
        let idx = var.index() / 64;
        let bit = 1u64 << (var.0 % 64);
        let words = self.presence[proc].read().expect("presence lock poisoned");
        if present {
            if let Some(w) = words.get(idx) {
                w.fetch_or(bit, Ordering::Relaxed);
            } else {
                drop(words);
                let mut words = self.presence[proc].write().expect("presence lock poisoned");
                while words.len() <= idx {
                    words.push(AtomicU64::new(0));
                }
                words[idx].fetch_or(bit, Ordering::Relaxed);
            }
        } else if let Some(w) = words.get(idx) {
            w.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// Current value of `var`.
    pub(crate) fn value(&self, var: VarHandle) -> Value {
        self.values.read().expect("values lock poisoned")[var.index()].clone()
    }

    /// Overwrite the value of `var`.
    pub(crate) fn set_value(&self, var: VarHandle, value: Value) {
        self.values.write().expect("values lock poisoned")[var.index()] = value;
    }

    /// Store the value of a newly registered variable. The slot index is
    /// either the current length (a fresh slot) or inside the store (a
    /// recycled slot whose previous payload was dropped by
    /// [`SharedState::clear_value`]).
    pub(crate) fn store_value(&self, var: VarHandle, value: Value) {
        let mut values = self.values.write().expect("values lock poisoned");
        let idx = var.index();
        if idx == values.len() {
            values.push(value);
        } else {
            // Only a recycled slot may be overwritten — it must still hold
            // the unit tombstone `clear_value` installed at free time.
            debug_assert!(
                values[idx].downcast_ref::<()>().is_some(),
                "value store out of sync with registry: slot {idx} is not a freed tombstone"
            );
            values[idx] = value;
        }
    }

    /// Drop the payload of a freed variable. The slot keeps a unit tombstone:
    /// a read through a stale handle then fails its typed downcast loudly
    /// instead of returning the retired payload.
    pub(crate) fn clear_value(&self, var: VarHandle) {
        self.set_value(var, Arc::new(()));
    }

    /// Whether any processor still holds a presence bit for `var` (used by a
    /// debug assertion after policy teardown).
    pub(crate) fn any_copy(&self, var: VarHandle) -> bool {
        (0..self.presence.len()).any(|p| self.has_copy(p, var))
    }
}

/// A blocking operation issued by a worker thread.
#[derive(Debug)]
pub(crate) enum Request {
    /// Read or write a global variable (the read fast path was not taken).
    Access {
        proc: usize,
        var: VarHandle,
        kind: AccessKind,
        /// New value for writes.
        value: Option<Value>,
    },
    /// Allocate a new global variable owned by `proc`.
    Alloc {
        proc: usize,
        bytes: u32,
        value: Value,
    },
    /// Barrier synchronisation.
    Barrier { proc: usize },
    /// Acquire the lock attached to `var`.
    Lock { proc: usize, var: VarHandle },
    /// Release the lock attached to `var`.
    Unlock { proc: usize, var: VarHandle },
    /// Explicit message-passing send (non-blocking).
    Send {
        proc: usize,
        to: usize,
        bytes: u32,
        tag: u64,
        value: Value,
    },
    /// Explicit message-passing receive (blocks until a matching send arrives).
    Recv { proc: usize, from: usize, tag: u64 },
    /// Free a global variable: tear down its protocol state and recycle its
    /// slot. Pure bookkeeping — costs no simulated time.
    Free { proc: usize, var: VarHandle },
    /// End the issuing processor's allocation epoch: free every variable it
    /// allocated (and did not already free) since its previous epoch end.
    EndEpoch { proc: usize },
    /// Enter a named measurement region.
    Region { proc: usize, name: String },
    /// The worker's program returned.
    Finish { proc: usize },
}

impl Request {
    /// The processor that issued the request.
    pub(crate) fn proc(&self) -> usize {
        match self {
            Request::Access { proc, .. }
            | Request::Alloc { proc, .. }
            | Request::Barrier { proc }
            | Request::Lock { proc, .. }
            | Request::Unlock { proc, .. }
            | Request::Send { proc, .. }
            | Request::Recv { proc, .. }
            | Request::Free { proc, .. }
            | Request::EndEpoch { proc }
            | Request::Region { proc, .. }
            | Request::Finish { proc } => *proc,
        }
    }
}

/// A request together with the locally accumulated time since the worker's
/// previous blocking operation.
#[derive(Debug)]
pub(crate) struct TimedRequest {
    pub req: Request,
    /// Modelled computation time accumulated via `compute()`, in ns.
    pub compute_ns: u64,
    /// Library overhead accumulated by fast-path hits, in ns.
    pub overhead_ns: u64,
    /// Number of fast-path read hits since the previous blocking operation.
    pub hits: u64,
}

/// The coordinator's answer to a blocking operation.
#[derive(Debug)]
pub(crate) enum Response {
    /// The value of a read or receive.
    Value(Value),
    /// The handle of a newly allocated variable.
    Handle(VarHandle),
    /// Completion of an operation without a payload.
    Done,
}
