//! Coroutine-style processor programs for the event-driven execution mode.
//!
//! The classic [`Diva::run_prototype`](crate::Diva::run_prototype) API executes the program
//! closure of every simulated processor on its own OS thread and serialises
//! their blocking operations through channels. That is ergonomic but costs
//! one thread plus two channel hops per simulated operation — prohibitive for
//! large meshes (a 64×64 mesh would need 4096 threads).
//!
//! The event-driven mode inverts control: a program is an explicit state
//! machine implementing [`ProcProgram`]. The coordinator *pulls* the next
//! operation of a processor by calling [`ProcProgram::step`] and delivers the
//! operation's result through the [`StepCtx`] before the next call. No
//! threads, no channels — every simulated processor is just a struct owned by
//! the coordinator.
//!
//! The contract between the driver and a program:
//!
//! * `step` is called exactly once per *blocking* operation; the returned
//!   [`Op`] describes the operation to perform.
//! * Before the next `step` call, the result of the previous operation is
//!   available in the context: [`StepCtx::take_value`] after [`Op::Read`] /
//!   [`Op::Recv`], [`StepCtx::take_handle`] after [`Op::Alloc`]. Other
//!   operations complete without a payload.
//! * Reads that hit a valid local copy are satisfied inline by the driver
//!   (when the fast path is enabled) without a simulated protocol round trip,
//!   exactly like the threaded mode; `step` is simply called again.
//! * Local computation is accounted either by returning [`Op::Compute`] or by
//!   calling the `compute*` methods on the context; both charge the time to
//!   the next blocking operation, matching the threaded accounting.
//! * After [`Op::Done`] the program is never stepped again.

use crate::var::{Value, VarHandle};
use dm_engine::{us_to_ns, MachineConfig};
use std::any::Any;
use std::sync::Arc;

/// One blocking operation of a simulated processor, returned by
/// [`ProcProgram::step`].
#[derive(Debug)]
pub enum Op {
    /// Read a global variable; the value is delivered through
    /// [`StepCtx::take_value`] before the next step.
    Read(VarHandle),
    /// Write a new value into a global variable.
    Write(VarHandle, Value),
    /// Allocate a new global variable whose only copy starts at this
    /// processor; the handle is delivered through [`StepCtx::take_handle`].
    Alloc {
        /// Size of the variable in bytes (determines message sizes).
        bytes: u32,
        /// Initial value.
        value: Value,
    },
    /// Acquire the FIFO lock attached to a variable.
    Lock(VarHandle),
    /// Release the lock attached to a variable.
    Unlock(VarHandle),
    /// Wait until every processor has reached the barrier.
    Barrier,
    /// Enter a named measurement region.
    Region(String),
    /// Explicit message-passing send (non-blocking at the receiver side; the
    /// processor continues once its send-side startup is done).
    Send {
        /// Destination processor.
        to: usize,
        /// Message size in bytes.
        bytes: u32,
        /// Message tag (matched by `Recv`).
        tag: u64,
        /// Payload.
        value: Value,
    },
    /// Explicit message-passing receive (blocks until a matching send
    /// arrives); the payload is delivered through [`StepCtx::take_value`].
    Recv {
        /// Source processor.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Free a global variable: its protocol state (copy set, presence bits,
    /// lock entry) is torn down and its slot recycled for later allocations.
    /// Pure bookkeeping — no messages, no simulated time; the variable must
    /// be quiescent and the handle must not be used afterwards (see
    /// [`crate::var`] for the lifecycle rules).
    Free(VarHandle),
    /// Free every variable this processor allocated (and did not already
    /// free) since its previous `EndEpoch` — the bulk form of [`Op::Free`]
    /// for per-phase data such as the Barnes-Hut tree cells retired at each
    /// step barrier.
    EndEpoch,
    /// Account `ns` nanoseconds of local computation and step again
    /// immediately (no blocking operation is issued).
    Compute {
        /// Modelled local computation time in nanoseconds.
        ns: u64,
    },
    /// The program has finished; it will not be stepped again.
    Done,
}

/// A simulated processor program in the event-driven execution mode: an
/// explicit state machine the coordinator drives directly off its event
/// queue.
///
/// Implementations typically keep a small state enum plus whatever data the
/// algorithm carries between operations; see the driven variants of the
/// `dm-apps` applications for full examples.
pub trait ProcProgram: Send {
    /// Produce the next blocking operation. The result of the previous
    /// operation (if it carries one) is available on `ctx`.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op;
}

/// The per-step context handed to [`ProcProgram::step`]: identification of
/// the simulated processor, the machine parameters, the result of the
/// previous operation, and local-computation accounting.
pub struct StepCtx<'a> {
    pub(crate) proc: usize,
    pub(crate) nprocs: usize,
    pub(crate) mesh_dims: (usize, usize),
    pub(crate) machine: &'a MachineConfig,
    pub(crate) value: &'a mut Option<Value>,
    pub(crate) handle: &'a mut Option<VarHandle>,
    pub(crate) pending_compute_ns: &'a mut u64,
}

impl StepCtx<'_> {
    /// The id of this simulated processor (row-major mesh numbering).
    pub fn proc_id(&self) -> usize {
        self.proc
    }

    /// Total number of simulated processors.
    pub fn num_procs(&self) -> usize {
        self.nprocs
    }

    /// Grid dimensions `(rows, cols)` for grid topologies (mesh, torus);
    /// `(1, nprocs)` for topologies without a 2-D layout.
    pub fn mesh_dims(&self) -> (usize, usize) {
        self.mesh_dims
    }

    /// The machine parameters of the simulated platform.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Take the dynamically typed result of the previous `Read` / `Recv`.
    ///
    /// # Panics
    /// Panics if the previous operation did not deliver a value.
    pub fn take_value(&mut self) -> Value {
        self.value
            .take()
            .expect("no value pending — the previous op was not a read or recv")
    }

    /// Take the result of the previous `Read` / `Recv` downcast to `T`.
    ///
    /// # Panics
    /// Panics if no value is pending or it is not of type `T`.
    pub fn take<T: Any + Send + Sync>(&mut self) -> Arc<T> {
        self.take_value()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("pending value does not have the requested type"))
    }

    /// Take the handle of the variable created by the previous `Alloc`.
    ///
    /// # Panics
    /// Panics if the previous operation was not an `Alloc`.
    pub fn take_handle(&mut self) -> VarHandle {
        self.handle
            .take()
            .expect("no handle pending — the previous op was not an alloc")
    }

    /// Account `us` microseconds of local computation (charged to the next
    /// blocking operation, like [`ProcCtx::compute`](crate::ProcCtx::compute)).
    pub fn compute(&mut self, us: f64) {
        debug_assert!(us >= 0.0);
        *self.pending_compute_ns += us_to_ns(us);
    }

    /// Account the modelled time of `n` integer operations.
    pub fn compute_int_ops(&mut self, n: u64) {
        *self.pending_compute_ns += self.machine.int_ops_ns(n);
    }

    /// Account the modelled time of `n` floating-point operations.
    pub fn compute_flops(&mut self, n: u64) {
        *self.pending_compute_ns += self.machine.flops_ns(n);
    }
}
