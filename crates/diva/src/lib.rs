//! # dm-diva — the DIVA (Distributed Variables) library
//!
//! A from-scratch Rust reproduction of the DIVA library of Krick, Meyer auf
//! der Heide, Räcke, Vöcking and Westermann ("Data Management in Networks:
//! Experimental Evaluation of a Provably Good Strategy", SPAA 1999): fully
//! transparent access to *global variables* (shared data objects) for
//! mesh-connected parallel machines, together with the two data-management
//! strategies the paper compares and the synchronisation primitives the
//! applications need.
//!
//! ## What it provides
//!
//! * [`Diva`] / [`DivaConfig`] — a simulated mesh machine with a configurable
//!   data-management strategy, runnable in either of two execution modes
//!   (see below).
//! * The **event-driven mode** ([`Diva::run_driven`]): programs are explicit
//!   [`ProcProgram`] state machines that yield [`Op`]s, driven inline by the
//!   coordinator — zero OS threads, zero channel hops. This is the execution
//!   mode of every experiment.
//! * The **threaded prototyping mode** ([`Diva::run_prototype`]): programs
//!   are ordinary Rust closures, executed once per simulated processor on
//!   its own OS thread, that access shared data through [`ProcCtx`]: typed
//!   [`ProcCtx::read`] / [`ProcCtx::write`] on [`VarHandle`]s,
//!   [`ProcCtx::barrier`], per-variable [`ProcCtx::lock`] /
//!   [`ProcCtx::unlock`], modelled local computation via
//!   [`ProcCtx::compute`], and explicit [`ProcCtx::send_msg`] /
//!   [`ProcCtx::recv_msg`] message passing for hand-optimized baselines.
//!
//! ## Choosing an execution mode
//!
//! Both modes simulate the same machine and, for operation-equivalent
//! programs, produce **bit-identical** [`RunReport`]s (enforced by parity
//! tests). The difference is how fast — and how predictably — the simulation
//! itself runs:
//!
//! * Use the **driven** mode for every experiment and for large meshes — the
//!   coordinator steps each program state machine directly off its event
//!   queue on a single thread, so the execution is deterministic by
//!   construction. The protocol microbench runs ≥5× faster at 16×16; meshes
//!   of 64×64 and beyond (impossible to even spawn under the threaded mode)
//!   complete in minutes, including Barnes-Hut sweeps at ≥100 000 bodies.
//!   All `dm-bench` experiments and examples use this mode; the paper
//!   applications in `dm-apps` provide `run_*_driven` variants.
//! * Use the **threaded** mode only to prototype — ordinary control flow
//!   (loops, recursion, early returns) makes a first version easy to write,
//!   but every simulated processor costs an OS thread and every blocking
//!   operation two channel hops (a 32×32 mesh already needs 1024 threads).
//!   Once the algorithm settles, port it to a [`ProcProgram`] and keep the
//!   prototype around as the reference side of a parity test.
//! * The **access-tree strategy**
//!   ([`policy::access_tree::AccessTreePolicy`]): per-variable access trees
//!   derived from the hierarchical mesh decomposition, embedded randomly but
//!   locality-preservingly into the mesh, with the caching protocol of the
//!   paper (copies form a connected tree component; reads extend it towards
//!   the reader; writes invalidate everything outside the path from the
//!   update point to the writer). All tree shapes of the paper are supported:
//!   2-ary, 4-ary, 16-ary and ℓ-k-ary.
//! * The **fixed-home strategy**
//!   ([`policy::fixed_home::FixedHomePolicy`]): the classical ownership
//!   scheme run at a random home processor per variable — the CC-NUMA-like
//!   baseline of the paper.
//! * A combining-tree [`barrier`](crate::barrier::TreeBarrier) and
//!   FIFO distributed locks, both generating real simulated traffic.
//! * A full **variable lifecycle** (see [`var`]): register → access → free,
//!   with per-variable frees ([`ProcCtx::free`] / [`Op::Free`]) and bulk
//!   epoch reclamation ([`ProcCtx::end_epoch`] / [`Op::EndEpoch`]). Freed
//!   slots are recycled, so per-variable protocol state is bounded by the
//!   *live* working set — the Barnes-Hut application retires each time
//!   step's tree cells at the step barrier, capping state at O(cells per
//!   step) instead of O(steps × cells). Frees are pure bookkeeping: a
//!   reclaiming run is bit-identical (in simulated quantities) to a leaking
//!   one.
//! * A [`RunReport`] with execution time, congestion (in messages and bytes),
//!   protocol counters, per-region (per-phase) statistics,
//!   variable-lifecycle statistics (registrations, frees, live high-water)
//!   and fault accounting ([`FaultTally`]).
//! * **Fault injection** (see [`fault`]): a seeded, declarative [`FaultPlan`]
//!   degrades or fails links and fail-stops nodes' data-management roles at
//!   scheduled times. Directory state re-homes to deterministic successors
//!   (migration traffic is charged to the run), dead links are detoured
//!   around, and a disconnected machine ends the run cleanly as
//!   [`RunOutcome::Partitioned`]. Both execution modes stay bit-identical
//!   under any plan.
//!
//! ## Example
//!
//! ```
//! use dm_diva::{Diva, DivaConfig, StrategyKind};
//! use dm_mesh::{Mesh, TreeShape};
//!
//! // An 8x8 mesh managed by the 4-ary access-tree strategy.
//! let mut diva = Diva::new(DivaConfig::new(
//!     Mesh::square(8),
//!     StrategyKind::AccessTree(TreeShape::quad()),
//! ));
//! // One shared object, initially cached at processor 0.
//! let shared = diva.alloc(0, 1024, vec![0u32; 256]);
//! let outcome = diva
//!     .run_prototype(|ctx| {
//!         // Every processor reads the object; the access tree distributes
//!         // copies along its branches.
//!         let data = ctx.read::<Vec<u32>>(shared);
//!         ctx.barrier();
//!         data.len()
//!     })
//!     .expect_completed();
//! assert!(outcome.results.iter().all(|&n| n == 256));
//! println!("{}", outcome.report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod embedding;
mod fasthash;
pub mod fault;
pub mod policy;
pub mod report;
mod runtime;
pub mod var;

pub use dm_engine::QueueOp;
pub use embedding::{Embedder, EmbeddingMode, VarPlacement};
pub use fault::{FaultPlan, FaultSpec};
pub use policy::{AccessKind, Counter, Policy, PolicyEnv, PolicyMsg, TxId};
pub use report::{FaultTally, RegionReport, RunReport, ServingReport, RESPONSE_BUCKETS};
pub use runtime::{
    Degraded, Diva, DivaConfig, Op, Partitioned, ProcCtx, ProcProgram, RunDone, RunOutcome,
    StepCtx, StrategyKind,
};
pub use var::{Value, VarHandle, VarRegistry};

/// Convenience re-exports of the substrate crates most callers need.
pub mod prelude {
    pub use crate::{
        Diva, DivaConfig, Op, ProcCtx, ProcProgram, RunOutcome, StepCtx, StrategyKind, VarHandle,
    };
    pub use dm_engine::MachineConfig;
    pub use dm_mesh::{Mesh, TreeShape};
}
