//! Tests of the event-driven execution mode: a hand-written mini program,
//! and bit-identical parity against the threaded mode on a randomized
//! read/write protocol workload (the microbench workload of the issue).

use dm_diva::{Diva, DivaConfig, Op, ProcProgram, RunReport, StepCtx, StrategyKind, VarHandle};
use dm_mesh::{Mesh, TreeShape};
use std::sync::Arc;

fn config(side: usize, strategy: StrategyKind) -> DivaConfig {
    DivaConfig::new(Mesh::square(side), strategy)
}

/// A program that reads one shared variable, synchronises, and finishes —
/// the driven twin of the doc example of `Diva::run_prototype`.
struct ReadOnce {
    var: VarHandle,
    state: u8,
    seen: Option<usize>,
}

impl ProcProgram for ReadOnce {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            0 => {
                self.state = 1;
                Op::Read(self.var)
            }
            1 => {
                self.seen = Some(ctx.take::<Vec<u32>>().len());
                self.state = 2;
                Op::Barrier
            }
            _ => Op::Done,
        }
    }
}

#[test]
fn driven_mode_runs_a_simple_program() {
    let mut diva = Diva::new(config(4, StrategyKind::AccessTree(TreeShape::quad())));
    let shared = diva.alloc(0, 1024, vec![0u32; 256]);
    let programs: Vec<ReadOnce> = (0..diva.num_procs())
        .map(|_| ReadOnce {
            var: shared,
            state: 0,
            seen: None,
        })
        .collect();
    let outcome = diva.run_driven(programs).expect_completed();
    assert!(outcome.results.iter().all(|p| p.seen == Some(256)));
    assert!(outcome.report.total_time > 0);
    assert!(outcome.report.congestion_bytes() > 0);
}

/// The protocol microbench workload: every processor performs `rounds`
/// uniformly random reads/writes over a pool of shared variables, with
/// modelled think time, synchronising twice.
///
/// A deterministic per-processor LCG drives the choices so the threaded
/// closure and the driven state machine perform exactly the same accesses.
#[derive(Clone, Copy)]
struct UniformAccess {
    rounds: usize,
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

struct UniformProgram {
    cfg: UniformAccess,
    vars: Arc<Vec<VarHandle>>,
    rng: u64,
    round: usize,
    state: u8,
}

impl ProcProgram for UniformProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        // Read results are left untaken — the closure twin drops them too.
        match self.state {
            0 => {
                if self.round == self.cfg.rounds {
                    self.state = 1;
                    return Op::Barrier;
                }
                self.round += 1;
                ctx.compute_int_ops(5);
                let r = lcg_next(&mut self.rng);
                let var = self.vars[(r % self.vars.len() as u64) as usize];
                if r & 1 == 0 {
                    Op::Read(var)
                } else {
                    Op::Write(var, Arc::new(self.round as u64))
                }
            }
            _ => Op::Done,
        }
    }
}

fn uniform_threaded(
    strategy: StrategyKind,
    side: usize,
    cfg: UniformAccess,
    seed: u64,
) -> RunReport {
    let mut diva = Diva::new(config(side, strategy).with_seed(seed));
    let nprocs = diva.num_procs();
    let vars: Vec<VarHandle> = (0..nprocs).map(|p| diva.alloc(p, 512, 0u64)).collect();
    let vars = Arc::new(vars);
    let outcome = diva
        .run_prototype(move |ctx| {
            let mut rng = 0x9E3779B97F4A7C15u64 ^ (ctx.proc_id() as u64) << 17;
            for round in 1..=cfg.rounds {
                ctx.compute_int_ops(5);
                let r = lcg_next(&mut rng);
                let var = vars[(r % vars.len() as u64) as usize];
                if r & 1 == 0 {
                    let _ = ctx.read::<u64>(var);
                } else {
                    ctx.write(var, round as u64);
                }
            }
            ctx.barrier();
        })
        .expect_completed();
    outcome.report
}

fn uniform_driven(strategy: StrategyKind, side: usize, cfg: UniformAccess, seed: u64) -> RunReport {
    let mut diva = Diva::new(config(side, strategy).with_seed(seed));
    let nprocs = diva.num_procs();
    let vars: Vec<VarHandle> = (0..nprocs).map(|p| diva.alloc(p, 512, 0u64)).collect();
    let vars = Arc::new(vars);
    let programs: Vec<UniformProgram> = (0..nprocs)
        .map(|p| UniformProgram {
            cfg,
            vars: Arc::clone(&vars),
            rng: 0x9E3779B97F4A7C15u64 ^ (p as u64) << 17,
            round: 0,
            state: 0,
        })
        .collect();
    diva.run_driven(programs).expect_completed().report
}

#[test]
fn uniform_random_access_parity_threaded_vs_driven() {
    let cfg = UniformAccess { rounds: 24 };
    for strategy in [
        StrategyKind::AccessTree(TreeShape::quad()),
        StrategyKind::FixedHome,
    ] {
        let threaded = uniform_threaded(strategy, 4, cfg, 11);
        let driven = uniform_driven(strategy, 4, cfg, 11);
        assert_eq!(threaded, driven, "{strategy:?}");
    }
}

/// The lifecycle workload: every processor allocates a scratch variable per
/// round, publishes it through a pre-allocated pointer, reads its right
/// neighbour's scratch, and retires the round's allocations with an epoch
/// end at the barrier. Exercises `Op::Free` (odd processors free explicitly)
/// and `Op::EndEpoch` (even processors) across recycled slots.
struct LifecycleProgram {
    ptrs: Arc<Vec<VarHandle>>,
    rounds: usize,
    round: usize,
    scratch: VarHandle,
    state: u8,
    sum: u64,
}

impl ProcProgram for LifecycleProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        let me = ctx.proc_id();
        let n = ctx.num_procs();
        match self.state {
            0 => {
                if self.round == self.rounds {
                    self.state = 6;
                    return Op::Barrier;
                }
                self.state = 1;
                Op::Alloc {
                    bytes: 128,
                    value: Arc::new((self.round * 100 + me) as u64),
                }
            }
            1 => {
                self.scratch = ctx.take_handle();
                self.state = 2;
                Op::Write(self.ptrs[me], Arc::new(self.scratch))
            }
            2 => {
                self.state = 3;
                Op::Barrier
            }
            3 => {
                self.state = 4;
                Op::Read(self.ptrs[(me + 1) % n])
            }
            4 => {
                let handle = *ctx.take::<VarHandle>();
                self.state = 5;
                Op::Read(handle)
            }
            5 => {
                self.sum += *ctx.take::<u64>();
                // Quiesce before the frees: a neighbour may still have a
                // read of this processor's scratch in flight.
                self.state = 7;
                Op::Barrier
            }
            7 => {
                self.state = 0;
                self.round += 1;
                if me % 2 == 1 {
                    // Explicit free of the own scratch; the epoch list entry
                    // is skipped at the next EndEpoch via its generation.
                    Op::Free(self.scratch)
                } else {
                    Op::EndEpoch
                }
            }
            _ => Op::Done,
        }
    }
}

#[test]
fn lifecycle_ops_parity_threaded_vs_driven() {
    let rounds = 4;
    for strategy in [
        StrategyKind::AccessTree(TreeShape::quad()),
        StrategyKind::FixedHome,
    ] {
        let threaded = {
            let mut diva = Diva::new(config(4, strategy).with_seed(5));
            let n = diva.num_procs();
            let ptrs: Vec<VarHandle> = (0..n).map(|p| diva.alloc(p, 8, VarHandle(0))).collect();
            let ptrs = Arc::new(ptrs);
            let outcome = diva
                .run_prototype(move |ctx| {
                    let me = ctx.proc_id();
                    let n = ctx.num_procs();
                    let mut sum = 0u64;
                    for round in 0..rounds {
                        let scratch = ctx.alloc(128, (round * 100 + me) as u64);
                        ctx.write(ptrs[me], scratch);
                        ctx.barrier();
                        let handle = *ctx.read::<VarHandle>(ptrs[(me + 1) % n]);
                        sum += *ctx.read::<u64>(handle);
                        ctx.barrier();
                        if me % 2 == 1 {
                            ctx.free(scratch);
                        } else {
                            ctx.end_epoch();
                        }
                    }
                    ctx.barrier();
                    sum
                })
                .expect_completed();
            (outcome.results, outcome.report)
        };
        let driven = {
            let mut diva = Diva::new(config(4, strategy).with_seed(5));
            let n = diva.num_procs();
            let ptrs: Vec<VarHandle> = (0..n).map(|p| diva.alloc(p, 8, VarHandle(0))).collect();
            let ptrs = Arc::new(ptrs);
            let programs: Vec<LifecycleProgram> = (0..n)
                .map(|_| LifecycleProgram {
                    ptrs: Arc::clone(&ptrs),
                    rounds,
                    round: 0,
                    scratch: VarHandle(0),
                    state: 0,
                    sum: 0,
                })
                .collect();
            let outcome = diva.run_driven(programs).expect_completed();
            (
                outcome
                    .results
                    .into_iter()
                    .map(|p| p.sum)
                    .collect::<Vec<_>>(),
                outcome.report,
            )
        };
        assert_eq!(threaded.0, driven.0, "{strategy:?}");
        assert_eq!(threaded.1, driven.1, "{strategy:?}");
        assert_eq!(threaded.1.vars_freed, 4 * 16, "{strategy:?}");
        assert!(threaded.1.live_vars_high_water <= 32 + 1, "{strategy:?}");
    }
}

#[test]
fn driven_mode_is_deterministic_across_runs() {
    let cfg = UniformAccess { rounds: 16 };
    let a = uniform_driven(StrategyKind::AccessTree(TreeShape::quad()), 4, cfg, 3);
    let b = uniform_driven(StrategyKind::AccessTree(TreeShape::quad()), 4, cfg, 3);
    assert_eq!(a, b);
}
