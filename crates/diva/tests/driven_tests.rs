//! Tests of the event-driven execution mode: a hand-written mini program,
//! and bit-identical parity against the threaded mode on a randomized
//! read/write protocol workload (the microbench workload of the issue).

use dm_diva::{Diva, DivaConfig, Op, ProcProgram, RunReport, StepCtx, StrategyKind, VarHandle};
use dm_mesh::{Mesh, TreeShape};
use std::sync::Arc;

fn config(side: usize, strategy: StrategyKind) -> DivaConfig {
    DivaConfig::new(Mesh::square(side), strategy)
}

/// A program that reads one shared variable, synchronises, and finishes —
/// the driven twin of the doc example of `Diva::run_prototype`.
struct ReadOnce {
    var: VarHandle,
    state: u8,
    seen: Option<usize>,
}

impl ProcProgram for ReadOnce {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            0 => {
                self.state = 1;
                Op::Read(self.var)
            }
            1 => {
                self.seen = Some(ctx.take::<Vec<u32>>().len());
                self.state = 2;
                Op::Barrier
            }
            _ => Op::Done,
        }
    }
}

#[test]
fn driven_mode_runs_a_simple_program() {
    let mut diva = Diva::new(config(4, StrategyKind::AccessTree(TreeShape::quad())));
    let shared = diva.alloc(0, 1024, vec![0u32; 256]);
    let programs: Vec<ReadOnce> = (0..diva.num_procs())
        .map(|_| ReadOnce {
            var: shared,
            state: 0,
            seen: None,
        })
        .collect();
    let outcome = diva.run_driven(programs);
    assert!(outcome.results.iter().all(|p| p.seen == Some(256)));
    assert!(outcome.report.total_time > 0);
    assert!(outcome.report.congestion_bytes() > 0);
}

/// The protocol microbench workload: every processor performs `rounds`
/// uniformly random reads/writes over a pool of shared variables, with
/// modelled think time, synchronising twice.
///
/// A deterministic per-processor LCG drives the choices so the threaded
/// closure and the driven state machine perform exactly the same accesses.
#[derive(Clone, Copy)]
struct UniformAccess {
    rounds: usize,
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

struct UniformProgram {
    cfg: UniformAccess,
    vars: Arc<Vec<VarHandle>>,
    rng: u64,
    round: usize,
    state: u8,
}

impl ProcProgram for UniformProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        // Read results are left untaken — the closure twin drops them too.
        match self.state {
            0 => {
                if self.round == self.cfg.rounds {
                    self.state = 1;
                    return Op::Barrier;
                }
                self.round += 1;
                ctx.compute_int_ops(5);
                let r = lcg_next(&mut self.rng);
                let var = self.vars[(r % self.vars.len() as u64) as usize];
                if r & 1 == 0 {
                    Op::Read(var)
                } else {
                    Op::Write(var, Arc::new(self.round as u64))
                }
            }
            _ => Op::Done,
        }
    }
}

fn uniform_threaded(
    strategy: StrategyKind,
    side: usize,
    cfg: UniformAccess,
    seed: u64,
) -> RunReport {
    let mut diva = Diva::new(config(side, strategy).with_seed(seed));
    let nprocs = diva.num_procs();
    let vars: Vec<VarHandle> = (0..nprocs).map(|p| diva.alloc(p, 512, 0u64)).collect();
    let vars = Arc::new(vars);
    let outcome = diva.run_prototype(move |ctx| {
        let mut rng = 0x9E3779B97F4A7C15u64 ^ (ctx.proc_id() as u64) << 17;
        for round in 1..=cfg.rounds {
            ctx.compute_int_ops(5);
            let r = lcg_next(&mut rng);
            let var = vars[(r % vars.len() as u64) as usize];
            if r & 1 == 0 {
                let _ = ctx.read::<u64>(var);
            } else {
                ctx.write(var, round as u64);
            }
        }
        ctx.barrier();
    });
    outcome.report
}

fn uniform_driven(strategy: StrategyKind, side: usize, cfg: UniformAccess, seed: u64) -> RunReport {
    let mut diva = Diva::new(config(side, strategy).with_seed(seed));
    let nprocs = diva.num_procs();
    let vars: Vec<VarHandle> = (0..nprocs).map(|p| diva.alloc(p, 512, 0u64)).collect();
    let vars = Arc::new(vars);
    let programs: Vec<UniformProgram> = (0..nprocs)
        .map(|p| UniformProgram {
            cfg,
            vars: Arc::clone(&vars),
            rng: 0x9E3779B97F4A7C15u64 ^ (p as u64) << 17,
            round: 0,
            state: 0,
        })
        .collect();
    diva.run_driven(programs).report
}

#[test]
fn uniform_random_access_parity_threaded_vs_driven() {
    let cfg = UniformAccess { rounds: 24 };
    for strategy in [
        StrategyKind::AccessTree(TreeShape::quad()),
        StrategyKind::FixedHome,
    ] {
        let threaded = uniform_threaded(strategy, 4, cfg, 11);
        let driven = uniform_driven(strategy, 4, cfg, 11);
        assert_eq!(threaded, driven, "{strategy:?}");
    }
}

#[test]
fn driven_mode_is_deterministic_across_runs() {
    let cfg = UniformAccess { rounds: 16 };
    let a = uniform_driven(StrategyKind::AccessTree(TreeShape::quad()), 4, cfg, 3);
    let b = uniform_driven(StrategyKind::AccessTree(TreeShape::quad()), 4, cfg, 3);
    assert_eq!(a, b);
}
