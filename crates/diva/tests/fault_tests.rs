//! End-to-end tests of the fault-injection subsystem: empty plans are
//! non-perturbing, degradations slow the clock, node failures re-home
//! directory state, and disconnecting plans yield a clean partitioned
//! outcome in both backends.

use dm_diva::{
    Diva, DivaConfig, FaultPlan, FaultTally, Op, ProcProgram, RunOutcome, StepCtx, StrategyKind,
    VarHandle,
};
use dm_mesh::{Hypercube, Mesh, NodeId, Torus, TreeShape};
use std::sync::Arc;

fn configs(side: usize) -> Vec<DivaConfig> {
    vec![
        DivaConfig::new(
            Mesh::square(side),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        DivaConfig::new(Mesh::square(side), StrategyKind::FixedHome),
    ]
}

/// Every processor reads each shared variable once, synchronises, done.
struct ReadAll {
    vars: Arc<Vec<VarHandle>>,
    next: usize,
    state: u8,
}

impl ProcProgram for ReadAll {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            0 => {
                if self.next == self.vars.len() {
                    self.state = 1;
                    return Op::Barrier;
                }
                let var = self.vars[self.next];
                self.next += 1;
                Op::Read(var)
            }
            _ => Op::Done,
        }
    }
}

fn run_read_all(cfg: DivaConfig) -> RunOutcome<ReadAll> {
    let mut diva = Diva::new(cfg);
    let vars: Vec<VarHandle> = (0..8)
        .map(|i| diva.alloc(i % diva.num_procs(), 256, vec![i as u32; 64]))
        .collect();
    let vars = Arc::new(vars);
    let programs: Vec<ReadAll> = (0..diva.num_procs())
        .map(|_| ReadAll {
            vars: Arc::clone(&vars),
            next: 0,
            state: 0,
        })
        .collect();
    diva.run_driven(programs)
}

#[test]
fn an_empty_plan_is_bit_identical_to_no_plan() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let base = run_read_all(cfg.clone()).expect_completed();
        let with_plan = run_read_all(cfg.with_fault_plan(FaultPlan::new(42))).expect_completed();
        assert_eq!(base.report, with_plan.report, "strategy {name}");
        assert_eq!(with_plan.report.faults, FaultTally::default());
    }
}

#[test]
fn degrading_every_link_slows_the_run_and_is_tallied() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let base = run_read_all(cfg.clone()).expect_completed();
        let plan = FaultPlan::new(7).degrade_links(1.0, 0.25, 0);
        let degraded = run_read_all(cfg.with_fault_plan(plan)).expect_completed();
        assert!(
            degraded.report.total_time > base.report.total_time,
            "strategy {name}: {} !> {}",
            degraded.report.total_time,
            base.report.total_time
        );
        assert!(degraded.report.faults.links_degraded > 0, "strategy {name}");
        assert_eq!(degraded.report.faults.links_failed, 0);
        assert_eq!(degraded.report.faults.nodes_failed, 0);
        // Degradation slows links but never reroutes or migrates state.
        assert_eq!(degraded.report.faults.rehome_msgs, 0, "strategy {name}");
    }
}

#[test]
fn a_node_failure_rehomes_directory_state() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let plan = FaultPlan::new(7).fail_node(NodeId(3), 0);
        let out = run_read_all(cfg.with_fault_plan(plan)).expect_completed();
        assert_eq!(out.report.faults.nodes_failed, 1, "strategy {name}");
        assert!(out.report.faults.rehome_msgs > 0, "strategy {name}");
        assert!(out.report.faults.rehome_bytes > 0, "strategy {name}");
        assert!(out.report.total_time > 0, "strategy {name}");
    }
}

#[test]
fn node_failures_never_partition_and_runs_stay_deterministic() {
    // Links survive a node failure (only the DM role stops), so even many
    // failed nodes leave the network connected — and repeated runs of the
    // same plan are bit-identical.
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let plan = FaultPlan::new(11)
            .fail_random_nodes(4, 0)
            .fail_node(NodeId(9), 500_000);
        let a = run_read_all(cfg.clone().with_fault_plan(plan.clone())).expect_completed();
        let b = run_read_all(cfg.with_fault_plan(plan)).expect_completed();
        assert_eq!(a.report, b.report, "strategy {name}");
        assert_eq!(a.report.faults.nodes_failed, 5, "strategy {name}");
    }
}

#[test]
fn failing_every_link_partitions_both_backends_identically() {
    let plan = FaultPlan::new(3).fail_links(1.0, 0);
    let cfg =
        DivaConfig::new(Mesh::square(4), StrategyKind::FixedHome).with_fault_plan(plan.clone());

    let driven = run_read_all(cfg);
    let p_driven = driven
        .partitioned()
        .expect("failing every link must partition the driven run");

    let mut diva =
        Diva::new(DivaConfig::new(Mesh::square(4), StrategyKind::FixedHome).with_fault_plan(plan));
    let v = diva.alloc(0, 256, vec![1u32; 64]);
    let proto = diva.run_prototype(move |ctx| ctx.read::<Vec<u32>>(v).len());
    let p_proto = proto
        .partitioned()
        .expect("failing every link must partition the prototype run");

    assert_eq!(p_driven.at, p_proto.at);
    assert_eq!(p_driven.unreachable, p_proto.unreachable);
    assert!(p_driven.report.faults.links_failed > 0);
    assert_eq!(
        p_driven.report.faults.links_failed,
        p_proto.report.faults.links_failed
    );
}

#[test]
fn partial_link_failure_reroutes_instead_of_partitioning() {
    // A torus or hypercube has enough path diversity that losing a modest
    // fraction of links leaves it connected: traffic takes detours and the
    // run completes. (A fat tree is excluded — its leaf uplinks are single
    // points of failure, so random link loss can legitimately partition it.)
    for topo in [
        dm_mesh::AnyTopology::from(Torus::square(4)),
        Hypercube::new(4).into(),
    ] {
        let name = topo.name();
        let plan = FaultPlan::new(5).fail_links(0.1, 0);
        let cfg = DivaConfig::on(topo, StrategyKind::FixedHome).with_fault_plan(plan);
        let out = run_read_all(cfg);
        let done = match out {
            RunOutcome::Completed(done) => done,
            RunOutcome::Partitioned(p) => panic!(
                "{name}: 10% link loss should reroute, but partitioned at {} (node {})",
                p.at, p.unreachable.0
            ),
        };
        assert!(done.report.faults.links_failed > 0, "{name}");
        assert!(done.report.total_time > 0, "{name}");
    }
}
