//! End-to-end tests of the fault-injection subsystem: empty plans are
//! non-perturbing, degradations slow the clock, node failures re-home
//! directory state and fail-stop the resident program (degraded outcome),
//! healed links revert routes exactly, and disconnecting plans yield a
//! clean partitioned outcome in both backends.

use dm_diva::{
    Diva, DivaConfig, FaultPlan, FaultTally, Op, ProcProgram, RunOutcome, StepCtx, StrategyKind,
    VarHandle,
};
use dm_mesh::{Hypercube, Mesh, NodeId, Torus, TreeShape};
use std::sync::Arc;

fn configs(side: usize) -> Vec<DivaConfig> {
    vec![
        DivaConfig::new(
            Mesh::square(side),
            StrategyKind::AccessTree(TreeShape::quad()),
        ),
        DivaConfig::new(Mesh::square(side), StrategyKind::FixedHome),
    ]
}

/// Every processor reads each shared variable once, synchronises, done.
struct ReadAll {
    vars: Arc<Vec<VarHandle>>,
    next: usize,
    state: u8,
}

impl ProcProgram for ReadAll {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            0 => {
                if self.next == self.vars.len() {
                    self.state = 1;
                    return Op::Barrier;
                }
                let var = self.vars[self.next];
                self.next += 1;
                Op::Read(var)
            }
            _ => Op::Done,
        }
    }
}

/// Build the instance and its 8 shared variables (one per owner, round
/// robin), shared by the driven and prototype harnesses.
fn setup(cfg: DivaConfig) -> (Diva, Arc<Vec<VarHandle>>) {
    let mut diva = Diva::new(cfg);
    let vars: Vec<VarHandle> = (0..8)
        .map(|i| diva.alloc(i % diva.num_procs(), 256, vec![i as u32; 64]))
        .collect();
    (diva, Arc::new(vars))
}

fn run_read_all(cfg: DivaConfig) -> RunOutcome<ReadAll> {
    let (diva, vars) = setup(cfg);
    let programs: Vec<ReadAll> = (0..diva.num_procs())
        .map(|_| ReadAll {
            vars: Arc::clone(&vars),
            next: 0,
            state: 0,
        })
        .collect();
    diva.run_driven(programs)
}

/// The closure twin of [`ReadAll`] for cross-backend parity checks.
fn run_read_all_prototype(cfg: DivaConfig) -> RunOutcome<()> {
    let (diva, vars) = setup(cfg);
    diva.run_prototype(move |ctx| {
        for &v in vars.iter() {
            ctx.read::<Vec<u32>>(v);
        }
        ctx.barrier();
    })
}

#[test]
fn an_empty_plan_is_bit_identical_to_no_plan() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let base = run_read_all(cfg.clone()).expect_completed();
        let with_plan = run_read_all(cfg.with_fault_plan(FaultPlan::new(42))).expect_completed();
        assert_eq!(base.report, with_plan.report, "strategy {name}");
        assert_eq!(with_plan.report.faults, FaultTally::default());
    }
}

#[test]
fn degrading_every_link_slows_the_run_and_is_tallied() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let base = run_read_all(cfg.clone()).expect_completed();
        let plan = FaultPlan::new(7).degrade_links(1.0, 0.25, 0);
        let degraded = run_read_all(cfg.with_fault_plan(plan)).expect_completed();
        assert!(
            degraded.report.total_time > base.report.total_time,
            "strategy {name}: {} !> {}",
            degraded.report.total_time,
            base.report.total_time
        );
        assert!(degraded.report.faults.links_degraded > 0, "strategy {name}");
        assert_eq!(degraded.report.faults.links_failed, 0);
        assert_eq!(degraded.report.faults.nodes_failed, 0);
        // Degradation slows links but never reroutes or migrates state.
        assert_eq!(degraded.report.faults.rehome_msgs, 0, "strategy {name}");
    }
}

#[test]
fn a_node_failure_rehomes_directory_state_and_degrades_the_run() {
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let plan = FaultPlan::new(7).fail_node(NodeId(3), 0);
        let out = run_read_all(cfg.with_fault_plan(plan));
        let d = out
            .degraded()
            .expect("failing a node fail-stops its program: the run degrades");
        assert_eq!(d.report.faults.nodes_failed, 1, "strategy {name}");
        assert!(d.report.faults.rehome_msgs > 0, "strategy {name}");
        assert!(d.report.faults.rehome_bytes > 0, "strategy {name}");
        assert!(d.report.total_time > 0, "strategy {name}");
        // Only the resident program is lost; the survivors complete and
        // keep their results.
        assert_eq!(d.lost_procs, vec![NodeId(3)], "strategy {name}");
        assert_eq!(d.report.faults.procs_lost, 1, "strategy {name}");
        assert!(d.results[3].is_none(), "strategy {name}");
        assert_eq!(
            d.results.iter().filter(|r| r.is_some()).count(),
            15,
            "strategy {name}"
        );
    }
}

#[test]
fn node_failures_never_partition_and_runs_stay_deterministic() {
    // Links survive a node failure (only the node's roles stop), so even
    // many failed nodes leave the network connected — and repeated runs of
    // the same plan are bit-identical, down to the loss bookkeeping.
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let plan = FaultPlan::new(11)
            .fail_random_nodes(4, 0)
            .fail_node(NodeId(9), 500_000);
        let a = run_read_all(cfg.clone().with_fault_plan(plan.clone()));
        let b = run_read_all(cfg.with_fault_plan(plan));
        let (da, db) = (
            a.degraded().expect("node failures degrade the run"),
            b.degraded().expect("node failures degrade the run"),
        );
        assert_eq!(da.report, db.report, "strategy {name}");
        assert_eq!(da.at, db.at, "strategy {name}");
        assert_eq!(da.lost_procs, db.lost_procs, "strategy {name}");
        assert_eq!(
            da.survivor_checksum, db.survivor_checksum,
            "strategy {name}"
        );
        assert_eq!(da.report.faults.nodes_failed, 5, "strategy {name}");
        assert!(da.report.faults.procs_lost >= 4, "strategy {name}");
    }
}

#[test]
fn healing_failed_links_reverts_routes_exactly() {
    // Fail a batch of links at t=0 and heal them 1 ns later: the window is
    // too short for any message to be routed over the broken network (link
    // latencies are orders of magnitude larger), so after the heal every
    // simulated quantity must revert exactly — post-heal routes are
    // byte-equal to pre-fault routes — leaving only the fault tally as a
    // witness that the window existed.
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let base = run_read_all(cfg.clone()).expect_completed();
        let plan = FaultPlan::new(13).fail_links_for(0.1, 0, 1);
        let healed = run_read_all(cfg.with_fault_plan(plan)).expect_completed();
        assert!(healed.report.faults.links_failed > 0, "strategy {name}");
        assert_eq!(
            healed.report.faults.links_failed, healed.report.faults.links_healed,
            "strategy {name}"
        );
        let mut scrubbed = healed.report.clone();
        scrubbed.faults = base.report.faults;
        assert_eq!(scrubbed, base.report, "strategy {name}");
    }
}

#[test]
fn degraded_runs_with_heals_are_bit_identical_across_backends_and_workers() {
    // An active plan — node loss at t=0, a transient link-failure window
    // mid-run, and a later restore of the failed node — must produce
    // bit-identical degraded outcomes under the serial driven backend,
    // worker counts 2–4, and the threaded prototype backend.
    let plan = FaultPlan::new(21)
        .fail_node(NodeId(5), 0)
        .fail_links_for(0.1, 200_000, 300_000)
        .restore_node(NodeId(5), 600_000);
    for cfg in configs(4) {
        let name = cfg.strategy.name();
        let outcomes: Vec<_> = (1..=4)
            .map(|w| run_read_all(cfg.clone().with_fault_plan(plan.clone()).with_workers(w)))
            .collect();
        let d1 = outcomes[0]
            .degraded()
            .expect("losing node 5's program degrades the run");
        assert_eq!(d1.lost_procs, vec![NodeId(5)], "strategy {name}");
        assert_eq!(d1.report.faults.nodes_restored, 1, "strategy {name}");
        assert_eq!(
            d1.report.faults.links_failed, d1.report.faults.links_healed,
            "strategy {name}"
        );
        for (i, out) in outcomes.iter().enumerate().skip(1) {
            let d = out.degraded().expect("parallel run must degrade too");
            assert_eq!(d1.report, d.report, "strategy {name} workers {}", i + 1);
            assert_eq!(d1.at, d.at, "strategy {name} workers {}", i + 1);
            assert_eq!(
                d1.lost_procs,
                d.lost_procs,
                "strategy {name} workers {}",
                i + 1
            );
            assert_eq!(
                d1.survivor_checksum,
                d.survivor_checksum,
                "strategy {name} workers {}",
                i + 1
            );
        }
        let proto = run_read_all_prototype(cfg.with_fault_plan(plan.clone()));
        let dp = proto
            .degraded()
            .expect("the prototype backend must degrade identically");
        assert_eq!(d1.report, dp.report, "strategy {name} prototype");
        assert_eq!(d1.at, dp.at, "strategy {name} prototype");
        assert_eq!(d1.lost_procs, dp.lost_procs, "strategy {name} prototype");
        assert_eq!(
            d1.survivor_checksum, dp.survivor_checksum,
            "strategy {name} prototype"
        );
        assert!(dp.results[5].is_none(), "strategy {name} prototype");
    }
}

#[test]
fn failing_every_link_partitions_both_backends_identically() {
    let plan = FaultPlan::new(3).fail_links(1.0, 0);
    let cfg =
        DivaConfig::new(Mesh::square(4), StrategyKind::FixedHome).with_fault_plan(plan.clone());

    let driven = run_read_all(cfg);
    let p_driven = driven
        .partitioned()
        .expect("failing every link must partition the driven run");

    let mut diva =
        Diva::new(DivaConfig::new(Mesh::square(4), StrategyKind::FixedHome).with_fault_plan(plan));
    let v = diva.alloc(0, 256, vec![1u32; 64]);
    let proto = diva.run_prototype(move |ctx| ctx.read::<Vec<u32>>(v).len());
    let p_proto = proto
        .partitioned()
        .expect("failing every link must partition the prototype run");

    assert_eq!(p_driven.at, p_proto.at);
    assert_eq!(p_driven.unreachable, p_proto.unreachable);
    assert!(p_driven.report.faults.links_failed > 0);
    assert_eq!(
        p_driven.report.faults.links_failed,
        p_proto.report.faults.links_failed
    );
}

#[test]
fn partial_link_failure_reroutes_instead_of_partitioning() {
    // A torus or hypercube has enough path diversity that losing a modest
    // fraction of links leaves it connected: traffic takes detours and the
    // run completes. (A fat tree is excluded — its leaf uplinks are single
    // points of failure, so random link loss can legitimately partition it.)
    for topo in [
        dm_mesh::AnyTopology::from(Torus::square(4)),
        Hypercube::new(4).into(),
    ] {
        let name = topo.name();
        let plan = FaultPlan::new(5).fail_links(0.1, 0);
        let cfg = DivaConfig::on(topo, StrategyKind::FixedHome).with_fault_plan(plan);
        let out = run_read_all(cfg);
        let done = match out {
            RunOutcome::Completed(done) => done,
            RunOutcome::Partitioned(p) => panic!(
                "{name}: 10% link loss should reroute, but partitioned at {} (node {})",
                p.at, p.unreachable.0
            ),
            RunOutcome::Degraded(d) => panic!(
                "{name}: link loss fails no node, yet {} processor(s) were lost",
                d.lost_procs.len()
            ),
        };
        assert!(done.report.faults.links_failed > 0, "{name}");
        assert!(done.report.total_time > 0, "{name}");
    }
}
