//! End-to-end tests of the DIVA runtime: programs running on every simulated
//! processor, both data-management strategies, barriers, locks, explicit
//! message passing, measurement regions and determinism.

use dm_diva::{Counter, Diva, DivaConfig, EmbeddingMode, StrategyKind, VarHandle};
use dm_mesh::{Mesh, TreeShape};
use std::sync::Arc;

fn at_config(side: usize, shape: TreeShape) -> DivaConfig {
    DivaConfig::new(Mesh::square(side), StrategyKind::AccessTree(shape))
}

fn fh_config(side: usize) -> DivaConfig {
    DivaConfig::new(Mesh::square(side), StrategyKind::FixedHome)
}

fn all_strategies(side: usize) -> Vec<DivaConfig> {
    vec![
        at_config(side, TreeShape::binary()),
        at_config(side, TreeShape::quad()),
        at_config(side, TreeShape::hex16()),
        at_config(side, TreeShape::lk(2, 4)),
        fh_config(side),
    ]
}

#[test]
fn every_processor_reads_the_initial_value() {
    for cfg in all_strategies(4) {
        let mut diva = Diva::new(cfg);
        let v = diva.alloc(3, 400, vec![7u32; 100]);
        let outcome = diva
            .run_prototype(|ctx| ctx.read::<Vec<u32>>(v)[0])
            .expect_completed();
        assert_eq!(outcome.results, vec![7u32; 16]);
        assert!(outcome.report.total_time > 0);
        // 15 processors missed, one (the owner) may hit via the fast path.
        assert!(outcome.report.counter(Counter::ReadMiss) >= 15);
    }
}

#[test]
fn writes_are_visible_after_a_barrier() {
    for cfg in all_strategies(4) {
        let name = cfg.strategy.name();
        let mut diva = Diva::new(cfg);
        let v = diva.alloc(0, 64, 0u64);
        let outcome = diva
            .run_prototype(|ctx| {
                if ctx.proc_id() == 5 {
                    ctx.write(v, 42u64);
                }
                ctx.barrier();
                *ctx.read::<u64>(v)
            })
            .expect_completed();
        assert_eq!(outcome.results, vec![42u64; 16], "strategy {name}");
    }
}

#[test]
fn successive_write_read_phases_stay_consistent() {
    // Ping-pong between two writers with barriers in between; every processor
    // must observe every phase's value.
    for cfg in [at_config(4, TreeShape::quad()), fh_config(4)] {
        let mut diva = Diva::new(cfg);
        let v = diva.alloc(0, 64, 0u64);
        let outcome = diva
            .run_prototype(|ctx| {
                let mut seen = Vec::new();
                for round in 1..=4u64 {
                    let writer = (round as usize * 3) % ctx.num_procs();
                    if ctx.proc_id() == writer {
                        ctx.write(v, round * 100);
                    }
                    ctx.barrier();
                    seen.push(*ctx.read::<u64>(v));
                    ctx.barrier();
                }
                seen
            })
            .expect_completed();
        for seen in outcome.results {
            assert_eq!(seen, vec![100, 200, 300, 400]);
        }
    }
}

#[test]
fn barrier_separates_virtual_time() {
    // A processor that computes for a long time before the barrier must delay
    // everyone: after the barrier all processors' clocks are at least the slow
    // processor's pre-barrier time.
    let mut diva = Diva::new(at_config(4, TreeShape::quad()));
    let v = diva.alloc(0, 8, 0u8);
    let outcome = diva
        .run_prototype(|ctx| {
            if ctx.proc_id() == 7 {
                ctx.compute(1_000_000.0); // one virtual second
            }
            ctx.barrier();
            // Touch the variable so every processor does something measurable after
            // the barrier.
            let _ = ctx.read::<u8>(v);
        })
        .expect_completed();
    assert!(outcome.report.total_time >= 1_000_000_000);
}

#[test]
fn locks_provide_mutual_exclusion_on_read_modify_write() {
    // Without the lock this increment sequence would lose updates; with it the
    // final counter value must equal the number of processors times the number
    // of increments.
    for cfg in [at_config(4, TreeShape::quad()), fh_config(4)] {
        let name = cfg.strategy.name();
        let mut diva = Diva::new(cfg);
        let counter = diva.alloc(0, 8, 0u64);
        let increments = 3u64;
        let outcome = diva
            .run_prototype(|ctx| {
                for _ in 0..increments {
                    ctx.lock(counter);
                    let v = *ctx.read::<u64>(counter);
                    ctx.write(counter, v + 1);
                    ctx.unlock(counter);
                }
                ctx.barrier();
                *ctx.read::<u64>(counter)
            })
            .expect_completed();
        let expected = increments * 16;
        for v in outcome.results {
            assert_eq!(v, expected, "strategy {name}");
        }
        assert_eq!(outcome.report.counter(Counter::Locks), expected);
    }
}

#[test]
fn explicit_message_passing_round_trip() {
    // Ring communication: each processor sends its id to the next and receives
    // from the previous.
    let diva = Diva::new(at_config(4, TreeShape::quad()));
    let outcome = diva
        .run_prototype(|ctx| {
            let p = ctx.proc_id();
            let n = ctx.num_procs();
            let next = (p + 1) % n;
            let prev = (p + n - 1) % n;
            ctx.send_msg(next, 64, 1, p as u64);

            *ctx.recv_msg::<u64>(prev, 1)
        })
        .expect_completed();
    for (p, got) in outcome.results.iter().enumerate() {
        assert_eq!(*got as usize, (p + 16 - 1) % 16);
    }
    assert!(outcome.report.messages_sent >= 16);
}

#[test]
fn message_passing_preserves_fifo_order_per_sender() {
    let diva = Diva::new(at_config(2, TreeShape::quad()));
    let outcome = diva
        .run_prototype(|ctx| {
            if ctx.proc_id() == 0 {
                for i in 0..10u64 {
                    ctx.send_msg(3, 32, 7, i);
                }
                Vec::new()
            } else if ctx.proc_id() == 3 {
                (0..10).map(|_| *ctx.recv_msg::<u64>(0, 7)).collect()
            } else {
                Vec::new()
            }
        })
        .expect_completed();
    assert_eq!(outcome.results[3], (0..10).collect::<Vec<u64>>());
}

#[test]
fn variables_can_be_allocated_during_the_run() {
    // Processor 0 allocates a variable, publishes its handle through a
    // pre-allocated "pointer" variable, and everyone else reads through it —
    // the same pattern the Barnes-Hut tree uses.
    for cfg in [at_config(4, TreeShape::quad()), fh_config(4)] {
        let mut diva = Diva::new(cfg);
        let pointer = diva.alloc(0, 8, VarHandle(u32::MAX));
        let outcome = diva
            .run_prototype(|ctx| {
                if ctx.proc_id() == 0 {
                    let data = ctx.alloc(256, vec![13u64; 32]);
                    ctx.write(pointer, data);
                }
                ctx.barrier();
                let handle = *ctx.read::<VarHandle>(pointer);
                ctx.read::<Vec<u64>>(handle)[31]
            })
            .expect_completed();
        assert_eq!(outcome.results, vec![13u64; 16]);
    }
}

#[test]
fn freed_variables_are_recycled_and_the_report_shows_it() {
    // Every processor repeatedly allocates a scratch variable, publishes work
    // through it, and retires it with end_epoch at the round barrier — the
    // Barnes-Hut lifecycle in miniature. The live-variable high-water must
    // stay at one round's worth of variables regardless of the round count.
    for cfg in [at_config(4, TreeShape::quad()), fh_config(4)] {
        let name = cfg.strategy.name();
        let run = |rounds: usize, cfg: DivaConfig| {
            let mut diva = Diva::new(cfg);
            let ptrs: Vec<VarHandle> = (0..16)
                .map(|p| diva.alloc(p, 8, VarHandle(u32::MAX)))
                .collect();
            let ptrs = Arc::new(ptrs);
            diva.run_prototype(move |ctx| {
                let me = ctx.proc_id();
                let mut sum = 0u64;
                for round in 0..rounds {
                    let scratch = ctx.alloc(128, (round * 100 + me) as u64);
                    ctx.write(ptrs[me], scratch);
                    ctx.barrier();
                    // Read the left neighbour's scratch variable.
                    let left = (me + 15) % 16;
                    let handle = *ctx.read::<VarHandle>(ptrs[left]);
                    sum += *ctx.read::<u64>(handle);
                    ctx.barrier();
                    ctx.end_epoch();
                }
                sum
            })
            .expect_completed()
        };
        let two = run(2, cfg.clone());
        let six = run(6, cfg);
        // Correctness across recycled handles.
        for (p, &sum) in two.results.iter().enumerate() {
            let left = (p + 15) % 16;
            assert_eq!(sum, left as u64 + (100 + left as u64), "{name}");
        }
        // Each round allocates 16 scratch vars; all are freed.
        assert_eq!(two.report.vars_freed, 32, "{name}");
        assert_eq!(six.report.vars_freed, 96, "{name}");
        // High-water is flat in the round count: 16 pointers + one round of
        // scratch variables (recycling keeps later rounds in the same slots).
        assert_eq!(
            two.report.live_vars_high_water, six.report.live_vars_high_water,
            "{name}"
        );
        assert!(six.report.live_vars_high_water <= 32, "{name}");
    }
}

#[test]
fn explicit_free_revokes_copies_everywhere() {
    // A variable read by every processor is freed by its owner; the freed
    // slot is recycled by a later allocation and must behave like a fresh
    // variable (no stale fast-path hits from the previous incarnation).
    for cfg in [at_config(4, TreeShape::quad()), fh_config(4)] {
        let name = cfg.strategy.name();
        let mut diva = Diva::new(cfg);
        let ptr = diva.alloc(0, 8, VarHandle(u32::MAX));
        let outcome = diva
            .run_prototype(move |ctx| {
                let first = if ctx.proc_id() == 0 {
                    let v = ctx.alloc(512, 7u64);
                    ctx.write(ptr, v);
                    v
                } else {
                    VarHandle(u32::MAX)
                };
                ctx.barrier();
                let v = *ctx.read::<VarHandle>(ptr);
                let got = *ctx.read::<u64>(v);
                ctx.barrier();
                if ctx.proc_id() == 0 {
                    ctx.free(first);
                    // The freed slot is recycled immediately: same handle, new
                    // incarnation with a different value and a clean copy set.
                    let again = ctx.alloc(512, 9u64);
                    assert_eq!(again, first, "slot must be recycled LIFO");
                    ctx.write(ptr, again);
                }
                ctx.barrier();
                let v2 = *ctx.read::<VarHandle>(ptr);
                got + *ctx.read::<u64>(v2)
            })
            .expect_completed();
        assert_eq!(outcome.results, vec![16u64; 16], "{name}");
        assert_eq!(outcome.report.vars_freed, 1, "{name}");
    }
}

#[test]
fn fast_path_hits_do_not_touch_the_network() {
    let mut diva = Diva::new(at_config(4, TreeShape::quad()));
    let v = diva.alloc(0, 1024, vec![1u8; 1024]);
    let outcome = diva
        .run_prototype(|ctx| {
            // First read misses (except on the owner), the remaining 99 hit.
            let mut sum = 0u64;
            for _ in 0..100 {
                sum += ctx.read::<Vec<u8>>(v)[0] as u64;
            }
            sum
        })
        .expect_completed();
    assert_eq!(outcome.results, vec![100u64; 16]);
    let hits = outcome.report.counter(Counter::ReadHit);
    let misses = outcome.report.counter(Counter::ReadMiss);
    assert!(hits >= 99 * 16, "hits = {hits}");
    assert!(misses <= 16, "misses = {misses}");
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut diva = Diva::new(at_config(4, TreeShape::binary()).with_seed(99));
        let vars: Vec<VarHandle> = (0..8)
            .map(|i| diva.alloc(i, 512, vec![i as u32; 128]))
            .collect();
        let vars = Arc::new(vars);
        let vars2 = Arc::clone(&vars);
        let outcome = diva
            .run_prototype(move |ctx| {
                let mut acc = 0u64;
                for (k, &v) in vars2.iter().enumerate() {
                    if (ctx.proc_id() + k) % 3 == 0 {
                        acc += ctx.read::<Vec<u32>>(v)[0] as u64;
                    }
                }
                ctx.barrier();
                if ctx.proc_id() < 8 {
                    ctx.write(vars2[ctx.proc_id()], vec![99u32; 128]);
                }
                ctx.barrier();
                acc
            })
            .expect_completed();
        (
            outcome.report.total_time,
            outcome.report.congestion_bytes(),
            outcome.report.messages_sent,
            outcome.results,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical reports");
}

#[test]
fn different_seeds_change_placement_but_not_results() {
    let run = |seed: u64| {
        let mut diva = Diva::new(fh_config(4).with_seed(seed));
        let v = diva.alloc(0, 2048, vec![5u64; 256]);
        let outcome = diva
            .run_prototype(|ctx| *ctx.read::<Vec<u64>>(v).last().unwrap())
            .expect_completed();
        (outcome.results, outcome.report.congestion_bytes())
    };
    let (r1, c1) = run(1);
    let (r2, c2) = run(2);
    assert_eq!(r1, r2);
    // Placement differs, so congestion will generally differ (not guaranteed
    // for every seed pair, but these two differ).
    assert!(c1 > 0 && c2 > 0);
}

#[test]
fn regions_attribute_time_and_traffic_to_phases() {
    let mut diva = Diva::new(at_config(4, TreeShape::quad()));
    let v = diva.alloc(0, 4096, vec![0u8; 4096]);
    let outcome = diva
        .run_prototype(|ctx| {
            ctx.region("warmup");
            ctx.compute(100.0);
            ctx.barrier();
            ctx.region("reads");
            let _ = ctx.read::<Vec<u8>>(v);
            ctx.barrier();
            ctx.region("idle");
            ctx.barrier();
        })
        .expect_completed();
    let report = outcome.report;
    let reads = report.region("reads").expect("reads region missing");
    let warmup = report.region("warmup").expect("warmup region missing");
    let idle = report.region("idle").expect("idle region missing");
    // The data traffic happens in the "reads" region.
    assert!(reads.total_bytes > idle.total_bytes);
    assert!(reads.total_bytes > warmup.total_bytes);
    assert!(reads.wall_time > 0);
    assert!(warmup.compute_time >= 100_000);
}

#[test]
fn access_tree_beats_fixed_home_on_a_hot_shared_object() {
    // The paper's central qualitative claim, reproduced at small scale: when
    // every processor reads hot shared objects, the access tree's multicast
    // distribution produces less congestion — and, once the data volume is
    // large enough for bandwidth rather than startup cost to dominate, less
    // time — than the fixed home serving every reader itself. At this micro
    // scale a single unlucky random placement can flip the comparison, so the
    // claim is asserted over the aggregate of several seeds.
    let run = |strategy: StrategyKind, seed: u64| {
        let mut diva = Diva::new(DivaConfig::new(Mesh::square(8), strategy).with_seed(seed));
        let vars: Vec<VarHandle> = (0..4)
            .map(|i| diva.alloc(i, 16384, vec![1u8; 16384]))
            .collect();
        let vars = Arc::new(vars);
        let outcome = diva
            .run_prototype(move |ctx| {
                for &v in vars.iter() {
                    let _ = ctx.read::<Vec<u8>>(v);
                }
                ctx.barrier();
            })
            .expect_completed();
        outcome.report
    };
    let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let mut at_congestion = 0u64;
    let mut fh_congestion = 0u64;
    let mut at_time = 0u64;
    let mut fh_time = 0u64;
    for &seed in &seeds {
        let at = run(StrategyKind::AccessTree(TreeShape::quad()), seed);
        let fh = run(StrategyKind::FixedHome, seed);
        at_congestion += at.congestion_bytes();
        fh_congestion += fh.congestion_bytes();
        at_time += at.total_time;
        fh_time += fh.total_time;
    }
    assert!(
        at_congestion < fh_congestion,
        "access tree congestion {at_congestion} should be below fixed home {fh_congestion}"
    );
    // For this micro-workload (one read per processor and variable) latency
    // rather than congestion dominates, so the access tree is only required
    // not to be meaningfully slower; its time advantage at application scale
    // is covered by the matrix-multiplication and sorting experiments.
    assert!(
        at_time as f64 <= fh_time as f64 * 1.25,
        "access tree time {at_time} should not exceed 1.25x fixed home {fh_time}"
    );
}

#[test]
fn random_embedding_mode_also_works_end_to_end() {
    let mut cfg = at_config(4, TreeShape::binary());
    cfg.embedding = EmbeddingMode::Random;
    let mut diva = Diva::new(cfg);
    let v = diva.alloc(0, 128, 3u32);
    let outcome = diva
        .run_prototype(|ctx| *ctx.read::<u32>(v))
        .expect_completed();
    assert_eq!(outcome.results, vec![3u32; 16]);
}

#[test]
fn single_processor_mesh_degenerates_gracefully() {
    let mut diva = Diva::new(at_config(1, TreeShape::quad()));
    let v = diva.alloc(0, 64, 10u32);
    let outcome = diva
        .run_prototype(|ctx| {
            ctx.write(v, 11u32);
            ctx.barrier();
            *ctx.read::<u32>(v)
        })
        .expect_completed();
    assert_eq!(outcome.results, vec![11]);
    assert_eq!(outcome.report.congestion_bytes(), 0);
}

#[test]
fn report_counters_are_consistent() {
    let mut diva = Diva::new(fh_config(4));
    let v = diva.alloc(0, 256, vec![0u32; 64]);
    let outcome = diva
        .run_prototype(|ctx| {
            let _ = ctx.read::<Vec<u32>>(v);
            ctx.barrier();
            if ctx.proc_id() == 1 {
                ctx.write(v, vec![1u32; 64]);
            }
            ctx.barrier();
        })
        .expect_completed();
    let r = outcome.report;
    assert_eq!(r.barriers, 2);
    assert!(r.counter(Counter::CopiesCreated) >= 15);
    assert!(r.counter(Counter::Invalidations) >= 14);
    assert!(r.messages_sent > 0);
    assert!(r.bytes_sent > 0);
    assert!(r.congestion_bytes() <= r.total_traffic_bytes());
    // The summary renders without panicking and mentions the strategy.
    assert!(r.summary().contains("fixed home"));
}

#[test]
#[should_panic(expected = "deadlock")]
fn missing_send_is_reported_as_deadlock() {
    let diva = Diva::new(at_config(2, TreeShape::quad()));
    let _ = diva
        .run_prototype(|ctx| {
            if ctx.proc_id() == 0 {
                // Waits forever: nobody sends with tag 9.
                let _ = ctx.recv_msg::<u64>(1, 9);
            }
        })
        .expect_completed();
}
