//! The chaos soak: seeded randomized fault plans — mixed link degradations,
//! link failures, transient windows, node losses and restores, at random
//! times — thrown at every topology under both benchmark workloads. The
//! property under test is *liveness with classification*: every run must
//! terminate (no hang, no panic) in exactly one of the three outcome
//! classes — completed, `degraded@n` (node failures fail-stopped n resident
//! programs; survivors finished) or partitioned — with a fault tally that
//! is consistent with the outcome. A sampled subset re-runs under the
//! parallel driven backend (`--workers 4`), and a crafted plan with an
//! active heal and an app loss re-runs under worker counts 1–4 *and* the
//! threaded prototype backend, all bit-identical.
//!
//! `CHAOS_SOAK_PLANS` overrides the per-cell plan count (default 26, i.e.
//! 26 × 4 topologies × 2 workloads = 208 randomized runs) so CI can bound
//! the soak explicitly.

use dm_apps::barnes_hut::{try_run_shared_driven, BhParams};
use dm_apps::uniform::{try_run_uniform_driven, UniformParams};
use dm_apps::workload::plummer_bodies;
use dm_diva::{
    Diva, DivaConfig, FaultPlan, FaultTally, Op, ProcProgram, RunReport, StepCtx, StrategyKind,
    VarHandle,
};
use dm_mesh::{AnyTopology, FatTree, Hypercube, Mesh, NodeId, Torus, TreeShape};
use dm_rng::ChaCha8Rng;
use std::sync::Arc;

const MASTER_SEED: u64 = 0xC4A0_50AC;

/// Per-(topology, workload) randomized plan count; ≥200 runs in total at
/// the default. CI's chaos-soak step can bound it via `CHAOS_SOAK_PLANS`.
fn plans_per_cell() -> usize {
    std::env::var("CHAOS_SOAK_PLANS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(26)
}

fn topologies() -> Vec<AnyTopology> {
    vec![
        Mesh::square(4).into(),
        Torus::square(4).into(),
        Hypercube::new(4).into(),
        FatTree::new(16).into(),
    ]
}

/// One randomized plan: 1–5 events of mixed kinds at random times, from
/// strike-at-t=0 through mid-run to past-the-end (events after the run's
/// natural end are simply never processed — that too must be safe).
fn random_plan(rng: &mut ChaCha8Rng, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    for _ in 0..rng.gen_range(1..6u32) {
        let at = rng.gen_range(0..1_500_000u64);
        let duration = rng.gen_range(10_000..800_000u64);
        plan = match rng.gen_range(0..7u32) {
            0 => plan.degrade_links(rng.gen_range(0.05..0.5), rng.gen_range(0.1..0.9), at),
            1 => plan.fail_links(rng.gen_range(0.02..0.15), at),
            2 => plan.degrade_links_for(
                rng.gen_range(0.05..0.5),
                rng.gen_range(0.1..0.9),
                at,
                duration,
            ),
            3 => plan.fail_links_for(rng.gen_range(0.02..0.15), at, duration),
            4 => {
                let victim = NodeId(rng.gen_range(0..nodes as u32));
                let plan = plan.fail_node(victim, at);
                if rng.gen_range(0..2u32) == 1 {
                    plan.restore_node(victim, at + rng.gen_range(1..500_000u64))
                } else {
                    plan
                }
            }
            5 => plan.fail_random_nodes(rng.gen_range(1..4u32) as usize, at),
            // A restore with no prior failure of that node is a no-op; the
            // soak deliberately generates such plans too.
            _ => plan.restore_node(NodeId(rng.gen_range(0..nodes as u32)), at),
        };
    }
    plan
}

fn mk_diva(
    topo: &AnyTopology,
    strategy: StrategyKind,
    plan: Option<FaultPlan>,
    workers: usize,
) -> Diva {
    let mut cfg = DivaConfig::on(topo.clone(), strategy).with_workers(workers);
    if let Some(plan) = plan {
        cfg = cfg.with_fault_plan(plan);
    }
    Diva::new(cfg)
}

/// The three liveness classes every run must land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Completed,
    Degraded,
    Partitioned,
}

/// Tally-vs-outcome consistency: the invariants every classified run must
/// satisfy, whichever backend produced it.
fn check_tally(ctx: &str, class: Class, lost: usize, report: &RunReport) {
    let f = &report.faults;
    assert_eq!(
        f.procs_lost, lost as u64,
        "{ctx}: lost-program tally disagrees with the outcome"
    );
    match class {
        Class::Completed => assert_eq!(f.procs_lost, 0, "{ctx}"),
        Class::Degraded => {
            assert!(f.procs_lost > 0, "{ctx}");
            // Programs are only lost to node failures (directly or
            // transitively via starvation of their peers).
            assert!(f.nodes_failed > 0, "{ctx}");
        }
        Class::Partitioned => {}
    }
    assert!(f.nodes_restored <= f.nodes_failed, "{ctx}");
    assert!(
        f.links_healed <= f.links_failed + f.links_degraded,
        "{ctx}: more links healed than were ever faulted"
    );
}

/// Run one uniform point under `plan`; classify and sanity-check it.
fn soak_uniform(
    topo: &AnyTopology,
    strategy: StrategyKind,
    plan: Option<FaultPlan>,
    workers: usize,
) -> (Class, u64, RunReport) {
    let params = UniformParams {
        ops_per_proc: 6,
        ..UniformParams::new(topo.nodes())
    };
    let diva = mk_diva(topo, strategy, plan, workers);
    match try_run_uniform_driven(diva, params) {
        Ok(out) => {
            let class = if out.procs_lost.is_empty() {
                Class::Completed
            } else {
                Class::Degraded
            };
            (class, out.checksum, out.report)
        }
        Err(p) => (Class::Partitioned, p.unreachable.0 as u64, p.report),
    }
}

/// Run one Barnes-Hut point under `plan`; classify and sanity-check it.
fn soak_bh(
    topo: &AnyTopology,
    strategy: StrategyKind,
    plan: Option<FaultPlan>,
) -> (Class, u64, RunReport) {
    let params = BhParams::small(32, 1);
    let bodies = plummer_bodies(MASTER_SEED, params.n_bodies);
    let diva = mk_diva(topo, strategy, plan, 1);
    match try_run_shared_driven(diva, params, &bodies) {
        Ok(out) => {
            let class = if out.procs_lost.is_empty() {
                Class::Completed
            } else {
                Class::Degraded
            };
            (class, out.interactions, out.report)
        }
        Err(p) => (Class::Partitioned, p.unreachable.0 as u64, p.report),
    }
}

#[test]
fn randomized_fault_plans_always_terminate_in_a_classified_outcome() {
    let per_cell = plans_per_cell();
    let mut counts = [0usize; 3];
    for (t, topo) in topologies().iter().enumerate() {
        for workload in ["uniform", "barnes-hut"] {
            let mut rng =
                ChaCha8Rng::seed_from_u64(MASTER_SEED ^ ((t as u64) << 8) ^ workload.len() as u64);
            for i in 0..per_cell {
                let plan = random_plan(&mut rng, topo.nodes());
                // Alternate the strategy so both directory protocols soak.
                let strategy = if i % 2 == 0 {
                    StrategyKind::FixedHome
                } else {
                    StrategyKind::AccessTree(TreeShape::quad())
                };
                let ctx = format!("{} {workload} plan {i} (seed {})", topo.name(), plan.seed());
                let (class, fingerprint, report) = match workload {
                    "uniform" => soak_uniform(topo, strategy, Some(plan.clone()), 1),
                    _ => soak_bh(topo, strategy, Some(plan.clone())),
                };
                if class != Class::Partitioned {
                    let lost = report.faults.procs_lost as usize;
                    check_tally(&ctx, class, lost, &report);
                    assert!(report.total_time > 0, "{ctx}");
                }
                counts[class as usize] += 1;
                // Sampled parallel-backend parity: every 13th uniform plan
                // re-runs under 4 workers and must match bit for bit.
                if workload == "uniform" && i % 13 == 0 {
                    let (c4, f4, r4) = soak_uniform(topo, strategy, Some(plan), 4);
                    assert_eq!(class, c4, "{ctx}: class diverged under --workers 4");
                    assert_eq!(
                        fingerprint, f4,
                        "{ctx}: checksum diverged under --workers 4"
                    );
                    assert_eq!(report, r4, "{ctx}: report diverged under --workers 4");
                }
            }
        }
    }
    let total: usize = counts.iter().sum();
    assert_eq!(total, plans_per_cell() * topologies().len() * 2);
    // The mix must actually exercise the interesting classes: node-failure
    // events are frequent enough that both completions and degradations are
    // guaranteed at any soak size (partitions depend on topology luck).
    assert!(counts[Class::Completed as usize] > 0, "{counts:?}");
    assert!(counts[Class::Degraded as usize] > 0, "{counts:?}");
}

#[test]
fn an_empty_plan_soak_run_is_bit_identical_to_no_plan() {
    for topo in topologies() {
        for strategy in [
            StrategyKind::FixedHome,
            StrategyKind::AccessTree(TreeShape::quad()),
        ] {
            let (cn, fn_, rn) = soak_uniform(&topo, strategy, None, 1);
            let (ce, fe, re) = soak_uniform(&topo, strategy, Some(FaultPlan::new(99)), 1);
            assert_eq!(cn, Class::Completed, "{}", topo.name());
            assert_eq!(cn, ce, "{}", topo.name());
            assert_eq!(fn_, fe, "{}", topo.name());
            assert_eq!(rn, re, "{}", topo.name());
            assert_eq!(re.faults, FaultTally::default(), "{}", topo.name());
        }
    }
}

/// Every processor reads each shared variable once, synchronises, done —
/// the driven half of the cross-backend parity anchor.
struct ReadAll {
    vars: Arc<Vec<VarHandle>>,
    next: usize,
    state: u8,
}

impl ProcProgram for ReadAll {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            0 => {
                if self.next == self.vars.len() {
                    self.state = 1;
                    return Op::Barrier;
                }
                let var = self.vars[self.next];
                self.next += 1;
                Op::Read(var)
            }
            _ => Op::Done,
        }
    }
}

fn setup(topo: &AnyTopology, plan: FaultPlan, workers: usize) -> (Diva, Arc<Vec<VarHandle>>) {
    let mut diva = mk_diva(
        topo,
        StrategyKind::AccessTree(TreeShape::quad()),
        Some(plan),
        workers,
    );
    let vars: Vec<VarHandle> = (0..8)
        .map(|i| diva.alloc(i % diva.num_procs(), 256, vec![i as u32; 64]))
        .collect();
    (diva, Arc::new(vars))
}

#[test]
fn a_chaotic_plan_with_heal_and_app_loss_is_bit_identical_across_backends() {
    // The crafted anchor the acceptance criteria call for: at least one
    // heal (a transient link-degradation window, healed back to pristine
    // cost — a window of *failed* links could legitimately partition some
    // topologies, which would mask the degraded outcome under test) and at
    // least one app loss (a failed node, later restored as a fresh
    // successor) in a single plan, identical under worker counts 1–4 and
    // the threaded prototype backend on every topology.
    for topo in topologies() {
        let name = topo.name();
        let victim = NodeId((topo.nodes() / 2) as u32);
        let plan = FaultPlan::new(77)
            .fail_node(victim, 0)
            .degrade_links_for(0.3, 0.25, 50_000, 100_000)
            .restore_node(victim, 250_000);
        let outcomes: Vec<_> = (1..=4)
            .map(|w| {
                let (diva, vars) = setup(&topo, plan.clone(), w);
                let programs: Vec<ReadAll> = (0..diva.num_procs())
                    .map(|_| ReadAll {
                        vars: Arc::clone(&vars),
                        next: 0,
                        state: 0,
                    })
                    .collect();
                diva.run_driven(programs)
            })
            .collect();
        let d1 = outcomes[0]
            .degraded()
            .expect("losing the victim's program degrades the run");
        assert_eq!(d1.lost_procs, vec![victim], "{name}");
        assert!(d1.report.faults.links_degraded > 0, "{name}");
        assert_eq!(
            d1.report.faults.links_degraded, d1.report.faults.links_healed,
            "{name}: the transient window must heal every link it degraded"
        );
        assert_eq!(d1.report.faults.nodes_restored, 1, "{name}");
        check_tally(
            name.as_str(),
            Class::Degraded,
            d1.lost_procs.len(),
            &d1.report,
        );
        for (i, out) in outcomes.iter().enumerate().skip(1) {
            let d = out.degraded().expect("parallel run must degrade too");
            assert_eq!(d1.report, d.report, "{name} workers {}", i + 1);
            assert_eq!(d1.at, d.at, "{name} workers {}", i + 1);
            assert_eq!(
                d1.survivor_checksum,
                d.survivor_checksum,
                "{name} workers {}",
                i + 1
            );
        }
        let (diva, vars) = setup(&topo, plan, 1);
        let proto = diva.run_prototype(move |ctx| {
            for &v in vars.iter() {
                ctx.read::<Vec<u32>>(v);
            }
            ctx.barrier();
        });
        let dp = proto
            .degraded()
            .expect("the prototype backend must degrade identically");
        assert_eq!(d1.report, dp.report, "{name} prototype");
        assert_eq!(d1.at, dp.at, "{name} prototype");
        assert_eq!(d1.lost_procs, dp.lost_procs, "{name} prototype");
        assert_eq!(
            d1.survivor_checksum, dp.survivor_checksum,
            "{name} prototype"
        );
    }
}
