//! Matrix multiplication (matrix square), Section 3.1 of the paper.
//!
//! The paper computes the matrix square `A := A · A` (rather than a general
//! product) because it forces the data-management strategies to invalidate
//! copies in the write phase. The `n × n` matrix is partitioned into `P`
//! blocks of `m = n²/P` integers; processor `p_{i,j}` owns block `A[i][j]`
//! (the only copy initially resides in its cache) and computes its new value
//! as `Σ_k A[i][k] · A[k][j]`.
//!
//! Three variants are provided:
//!
//! * [`run_shared_prototype`] — the DIVA version: blocks are global variables, the read
//!   phase uses the staggered schedule of the paper (`k = (k' + i + j) mod
//!   √P`, so at most two processors read the same block in the same step), a
//!   barrier separates it from the write phase.
//! * [`run_hand_optimized_prototype`] — the message-passing baseline: every processor
//!   pipelines its block along its row and column (neighbour-to-neighbour
//!   forwarding), which achieves minimal congestion `m · √P`.
//! * [`reference_square`] — a sequential implementation used to verify both.

use crate::workload::block_matrix;
use dm_diva::{Diva, Op, ProcProgram, RunReport, StepCtx, VarHandle};
use std::sync::Arc;

/// Parameters of the matrix-square experiment.
#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    /// Block size `m` in matrix entries (the paper uses 64…4096 integers).
    pub block_ints: usize,
    /// Whether to model the local block-multiplication time. The paper's
    /// Figure 3/4 measure the *communication* time (compute removed), so the
    /// harness sets this to `false`.
    pub include_compute: bool,
}

impl MatmulParams {
    /// Parameters with a given block size, without modelled computation.
    pub fn new(block_ints: usize) -> Self {
        MatmulParams {
            block_ints,
            include_compute: false,
        }
    }

    /// Side length `b` of a block (`m = b²`).
    ///
    /// # Panics
    /// Panics if `block_ints` is not a perfect square.
    pub fn block_side(&self) -> usize {
        let b = (self.block_ints as f64).sqrt().round() as usize;
        assert_eq!(
            b * b,
            self.block_ints,
            "block size must be a perfect square"
        );
        b
    }
}

/// The outcome of one matrix-square run.
pub struct MatmulOutcome {
    /// Simulation statistics.
    pub report: RunReport,
    /// Resulting blocks, indexed by processor id (row-major block order).
    pub blocks: Vec<Vec<i64>>,
}

/// Multiply two `b × b` blocks and add the result into `acc`.
pub fn block_multiply_add(acc: &mut [i64], a: &[i64], b: &[i64], side: usize) {
    debug_assert_eq!(acc.len(), side * side);
    debug_assert_eq!(a.len(), side * side);
    debug_assert_eq!(b.len(), side * side);
    for i in 0..side {
        for k in 0..side {
            let aik = a[i * side + k];
            if aik == 0 {
                continue;
            }
            for j in 0..side {
                acc[i * side + j] += aik * b[k * side + j];
            }
        }
    }
}

/// Sequentially compute the blocked matrix square of `blocks` (a `q × q` grid
/// of `b × b` blocks), returning the resulting blocks in the same layout.
pub fn reference_square(blocks: &[Vec<i64>], q: usize, side: usize) -> Vec<Vec<i64>> {
    let mut out = vec![vec![0i64; side * side]; q * q];
    for i in 0..q {
        for j in 0..q {
            for k in 0..q {
                let (a, b) = (&blocks[i * q + k], &blocks[k * q + j]);
                block_multiply_add(&mut out[i * q + j], a, b, side);
            }
        }
    }
    out
}

/// Modelled cost of one block multiply-add (`2·b³` integer operations).
fn block_multiply_ops(side: usize) -> u64 {
    2 * (side as u64).pow(3)
}

/// Allocate the initial blocks (one per processor, owned by that processor)
/// and return their handles in row-major block order.
fn allocate_blocks(diva: &mut Diva, params: &MatmulParams, q: usize) -> Vec<VarHandle> {
    let side = params.block_side();
    let bytes = (params.block_ints * diva.config().machine.word_bytes as usize) as u32;
    (0..q * q)
        .map(|p| {
            let (i, j) = (p / q, p % q);
            diva.alloc(p, bytes, block_matrix(i, j, side))
        })
        .collect()
}

/// Check that the network is a square grid and return its side length `√P`.
fn grid_side(diva: &Diva) -> usize {
    let (rows, cols) = diva
        .config()
        .topology
        .grid_dims()
        .expect("the matrix-square experiment requires a grid topology");
    assert_eq!(
        rows, cols,
        "the matrix-square experiment requires a square grid"
    );
    rows
}

/// Run the matrix square through the DIVA shared-variable interface.
pub fn run_shared_prototype(mut diva: Diva, params: MatmulParams) -> MatmulOutcome {
    let q = grid_side(&diva);
    let side = params.block_side();
    let vars = Arc::new(allocate_blocks(&mut diva, &params, q));
    let include_compute = params.include_compute;
    let outcome = diva
        .run_prototype(move |ctx| {
            let p = ctx.proc_id();
            let (i, j) = (p / q, p % q);
            let mut h = vec![0i64; side * side];
            ctx.region("read-phase");
            for kp in 0..q {
                let k = (kp + i + j) % q;
                let a = ctx.read::<Vec<i64>>(vars[i * q + k]);
                let b = ctx.read::<Vec<i64>>(vars[k * q + j]);
                if include_compute {
                    ctx.compute_int_ops(block_multiply_ops(side));
                }
                block_multiply_add(&mut h, &a, &b, side);
            }
            ctx.barrier();
            ctx.region("write-phase");
            ctx.write(vars[i * q + j], h.clone());
            ctx.barrier();
            // The blocks are dead after the final barrier: each processor frees
            // its own, exercising full copy-set teardown (readers of the block
            // hold copies all over the mesh). Pure bookkeeping — all simulated
            // quantities are bit-identical to a run that leaks the blocks; only
            // the report's variable-lifecycle statistics move.
            ctx.free(vars[i * q + j]);
            h
        })
        .expect_completed();
    MatmulOutcome {
        report: outcome.report,
        blocks: outcome.results,
    }
}

/// State of the driven matrix-square program (see [`MatmulProgram`]).
enum MmState {
    /// About to enter the read phase.
    Start,
    /// Read-phase region entered; issue the first `A`-block read.
    ReadA,
    /// Waiting for the `A` block of round `kp`.
    AwaitA,
    /// Waiting for the `B` block of round `kp`.
    AwaitB,
    /// All reads done and barrier passed; enter the write phase.
    EnterWritePhase,
    /// Write-phase region entered; write the own block.
    WriteOwn,
    /// Own block written; final barrier.
    FinalBarrier,
    /// Final barrier passed; free the own (now dead) block.
    FreeOwn,
    /// Block freed; finish.
    Finish,
}

/// The event-driven twin of the [`run_shared_prototype`] closure: one explicit state
/// machine per processor performing the staggered read schedule, the barrier
/// and the write phase. Operation-for-operation equivalent to the threaded
/// version, so both modes produce bit-identical run reports.
struct MatmulProgram {
    q: usize,
    side: usize,
    include_compute: bool,
    vars: Arc<Vec<VarHandle>>,
    i: usize,
    j: usize,
    kp: usize,
    a: Option<Arc<Vec<i64>>>,
    h: Vec<i64>,
    state: MmState,
}

impl MatmulProgram {
    fn new(
        proc: usize,
        q: usize,
        side: usize,
        include_compute: bool,
        vars: Arc<Vec<VarHandle>>,
    ) -> Self {
        MatmulProgram {
            q,
            side,
            include_compute,
            vars,
            i: proc / q,
            j: proc % q,
            kp: 0,
            a: None,
            h: vec![0i64; side * side],
            state: MmState::Start,
        }
    }

    /// The staggered `k` of round `kp`: at most two processors read the same
    /// block in the same step.
    fn k(&self) -> usize {
        (self.kp + self.i + self.j) % self.q
    }
}

impl ProcProgram for MatmulProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            MmState::Start => {
                self.state = MmState::ReadA;
                Op::Region("read-phase".to_string())
            }
            MmState::ReadA => {
                self.state = MmState::AwaitA;
                Op::Read(self.vars[self.i * self.q + self.k()])
            }
            MmState::AwaitA => {
                self.a = Some(ctx.take::<Vec<i64>>());
                self.state = MmState::AwaitB;
                Op::Read(self.vars[self.k() * self.q + self.j])
            }
            MmState::AwaitB => {
                let b = ctx.take::<Vec<i64>>();
                let a = self.a.take().expect("A block missing");
                if self.include_compute {
                    ctx.compute_int_ops(block_multiply_ops(self.side));
                }
                block_multiply_add(&mut self.h, &a, &b, self.side);
                self.kp += 1;
                if self.kp < self.q {
                    self.state = MmState::AwaitA;
                    Op::Read(self.vars[self.i * self.q + self.k()])
                } else {
                    self.state = MmState::EnterWritePhase;
                    Op::Barrier
                }
            }
            MmState::EnterWritePhase => {
                self.state = MmState::WriteOwn;
                Op::Region("write-phase".to_string())
            }
            MmState::WriteOwn => {
                self.state = MmState::FinalBarrier;
                Op::Write(
                    self.vars[self.i * self.q + self.j],
                    Arc::new(self.h.clone()),
                )
            }
            MmState::FinalBarrier => {
                self.state = MmState::FreeOwn;
                Op::Barrier
            }
            MmState::FreeOwn => {
                self.state = MmState::Finish;
                Op::Free(self.vars[self.i * self.q + self.j])
            }
            MmState::Finish => Op::Done,
        }
    }
}

/// Run the matrix square through the DIVA shared-variable interface under the
/// event-driven execution mode — the same simulated run as [`run_shared_prototype`]
/// (bit-identical report), orders of magnitude faster to simulate on large
/// meshes.
pub fn run_shared_driven(mut diva: Diva, params: MatmulParams) -> MatmulOutcome {
    let q = grid_side(&diva);
    let side = params.block_side();
    let vars = Arc::new(allocate_blocks(&mut diva, &params, q));
    let programs: Vec<MatmulProgram> = (0..q * q)
        .map(|p| MatmulProgram::new(p, q, side, params.include_compute, Arc::clone(&vars)))
        .collect();
    let outcome = diva.run_driven(programs).expect_completed();
    MatmulOutcome {
        report: outcome.report,
        blocks: outcome.results.into_iter().map(|p| p.h).collect(),
    }
}

/// Message tags of the hand-optimized variant (one per forwarding direction).
const TAG_EAST: u64 = 1;
const TAG_WEST: u64 = 2;
const TAG_SOUTH: u64 = 3;
const TAG_NORTH: u64 = 4;

/// Run the matrix square with the hand-optimized message-passing strategy:
/// every block is pipelined along its row and its column by
/// neighbour-to-neighbour messages, which achieves minimal congestion.
pub fn run_hand_optimized_prototype(diva: Diva, params: MatmulParams) -> MatmulOutcome {
    let q = grid_side(&diva);
    let side = params.block_side();
    // The baseline does not use shared variables; blocks live in local memory.
    let word = diva.config().machine.word_bytes as usize;
    let block_bytes = (params.block_ints * word) as u32;
    let include_compute = params.include_compute;
    let outcome = diva
        .run_prototype(move |ctx| {
            let p = ctx.proc_id();
            let (i, j) = (p / q, p % q);
            let own: Vec<i64> = block_matrix(i, j, side);
            // Blocks of my row (indexed by column) and my column (indexed by row).
            let mut row_blocks: Vec<Option<Vec<i64>>> = vec![None; q];
            let mut col_blocks: Vec<Option<Vec<i64>>> = vec![None; q];
            row_blocks[j] = Some(own.clone());
            col_blocks[i] = Some(own.clone());

            let proc_of = |r: usize, c: usize| r * q + c;
            // Kick off the four pipelines with the processor's own block.
            if j + 1 < q {
                ctx.send_msg(proc_of(i, j + 1), block_bytes, TAG_EAST, (j, own.clone()));
            }
            if j > 0 {
                ctx.send_msg(proc_of(i, j - 1), block_bytes, TAG_WEST, (j, own.clone()));
            }
            if i + 1 < q {
                ctx.send_msg(proc_of(i + 1, j), block_bytes, TAG_SOUTH, (i, own.clone()));
            }
            if i > 0 {
                ctx.send_msg(proc_of(i - 1, j), block_bytes, TAG_NORTH, (i, own.clone()));
            }
            // Expected number of blocks from each direction.
            let mut remaining = [j, q - 1 - j, i, q - 1 - i]; // east←west, west←east, south←north, north←south
            loop {
                let mut progressed = false;
                // Round-robin over the four directions to keep all pipelines moving.
                for dir in 0..4 {
                    if remaining[dir] == 0 {
                        continue;
                    }
                    progressed = true;
                    remaining[dir] -= 1;
                    match dir {
                        0 => {
                            // Block travelling east, received from the west neighbour.
                            let msg =
                                ctx.recv_msg::<(usize, Vec<i64>)>(proc_of(i, j - 1), TAG_EAST);
                            let (col, block) = (*msg).clone();
                            if j + 1 < q {
                                ctx.send_msg(
                                    proc_of(i, j + 1),
                                    block_bytes,
                                    TAG_EAST,
                                    (col, block.clone()),
                                );
                            }
                            row_blocks[col] = Some(block);
                        }
                        1 => {
                            let msg =
                                ctx.recv_msg::<(usize, Vec<i64>)>(proc_of(i, j + 1), TAG_WEST);
                            let (col, block) = (*msg).clone();
                            if j > 0 {
                                ctx.send_msg(
                                    proc_of(i, j - 1),
                                    block_bytes,
                                    TAG_WEST,
                                    (col, block.clone()),
                                );
                            }
                            row_blocks[col] = Some(block);
                        }
                        2 => {
                            let msg =
                                ctx.recv_msg::<(usize, Vec<i64>)>(proc_of(i - 1, j), TAG_SOUTH);
                            let (row, block) = (*msg).clone();
                            if i + 1 < q {
                                ctx.send_msg(
                                    proc_of(i + 1, j),
                                    block_bytes,
                                    TAG_SOUTH,
                                    (row, block.clone()),
                                );
                            }
                            col_blocks[row] = Some(block);
                        }
                        3 => {
                            let msg =
                                ctx.recv_msg::<(usize, Vec<i64>)>(proc_of(i + 1, j), TAG_NORTH);
                            let (row, block) = (*msg).clone();
                            if i > 0 {
                                ctx.send_msg(
                                    proc_of(i - 1, j),
                                    block_bytes,
                                    TAG_NORTH,
                                    (row, block.clone()),
                                );
                            }
                            col_blocks[row] = Some(block);
                        }
                        _ => unreachable!(),
                    }
                }
                if !progressed {
                    break;
                }
            }
            // All blocks of row i and column j are local: compute the new block.
            let mut h = vec![0i64; side * side];
            for k in 0..q {
                let a = row_blocks[k].as_ref().expect("missing row block");
                let b = col_blocks[k].as_ref().expect("missing column block");
                if include_compute {
                    ctx.compute_int_ops(block_multiply_ops(side));
                }
                block_multiply_add(&mut h, a, b, side);
            }
            ctx.barrier();
            h
        })
        .expect_completed();
    MatmulOutcome {
        report: outcome.report,
        blocks: outcome.results,
    }
}

/// State of the driven hand-optimized program.
enum HoState {
    /// Issuing the kick-off sends of the four pipelines.
    Kickoff,
    /// Waiting for the block travelling in `cur_dir`.
    AwaitRecv,
    /// Forward send issued; the received block still has to be stored.
    AfterForward,
    /// Final barrier issued.
    Finish,
}

/// The event-driven twin of the [`run_hand_optimized_prototype`] closure: pipelined
/// neighbour-to-neighbour forwarding as an explicit state machine.
struct MatmulHandOptProgram {
    q: usize,
    side: usize,
    include_compute: bool,
    block_bytes: u32,
    i: usize,
    j: usize,
    row_blocks: Vec<Option<Vec<i64>>>,
    col_blocks: Vec<Option<Vec<i64>>>,
    /// Kick-off sends still to issue: `(to, tag, payload)`.
    kickoff: Vec<(usize, u64, (usize, Vec<i64>))>,
    /// Blocks still expected per direction (east←west, west←east,
    /// south←north, north←south), as in the threaded loop.
    remaining: [usize; 4],
    /// Cyclic scan position over the four directions.
    scan: usize,
    /// Direction currently being received.
    cur_dir: usize,
    /// Received block waiting to be stored after its forward send.
    stash: Option<(usize, Vec<i64>)>,
    h: Vec<i64>,
    state: HoState,
}

impl MatmulHandOptProgram {
    fn new(proc: usize, q: usize, side: usize, include_compute: bool, block_bytes: u32) -> Self {
        let (i, j) = (proc / q, proc % q);
        let own: Vec<i64> = block_matrix(i, j, side);
        let mut row_blocks: Vec<Option<Vec<i64>>> = vec![None; q];
        let mut col_blocks: Vec<Option<Vec<i64>>> = vec![None; q];
        row_blocks[j] = Some(own.clone());
        col_blocks[i] = Some(own.clone());
        let proc_of = |r: usize, c: usize| r * q + c;
        // Kick-off sends in the same order as the threaded closure.
        let mut kickoff = Vec::new();
        if j + 1 < q {
            kickoff.push((proc_of(i, j + 1), TAG_EAST, (j, own.clone())));
        }
        if j > 0 {
            kickoff.push((proc_of(i, j - 1), TAG_WEST, (j, own.clone())));
        }
        if i + 1 < q {
            kickoff.push((proc_of(i + 1, j), TAG_SOUTH, (i, own.clone())));
        }
        if i > 0 {
            kickoff.push((proc_of(i - 1, j), TAG_NORTH, (i, own)));
        }
        kickoff.reverse(); // issued by popping from the back
        MatmulHandOptProgram {
            q,
            side,
            include_compute,
            block_bytes,
            i,
            j,
            row_blocks,
            col_blocks,
            kickoff,
            remaining: [j, q - 1 - j, i, q - 1 - i],
            scan: 0,
            cur_dir: 0,
            stash: None,
            h: Vec::new(),
            state: HoState::Kickoff,
        }
    }

    fn proc_of(&self, r: usize, c: usize) -> usize {
        r * self.q + c
    }

    /// The neighbour a block travelling in `dir` is received from.
    fn recv_source(&self, dir: usize) -> (usize, u64) {
        match dir {
            0 => (self.proc_of(self.i, self.j - 1), TAG_EAST),
            1 => (self.proc_of(self.i, self.j + 1), TAG_WEST),
            2 => (self.proc_of(self.i - 1, self.j), TAG_SOUTH),
            _ => (self.proc_of(self.i + 1, self.j), TAG_NORTH),
        }
    }

    /// Store a received block in the row/column table of its direction.
    fn store(&mut self, dir: usize, idx: usize, block: Vec<i64>) {
        if dir < 2 {
            self.row_blocks[idx] = Some(block);
        } else {
            self.col_blocks[idx] = Some(block);
        }
    }

    /// Pick the next direction with outstanding blocks (cyclic scan, the
    /// same visit sequence as the threaded round-robin loop) and issue its
    /// receive — or, when all pipelines have drained, compute the block
    /// product and issue the final barrier.
    fn next_op(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        for off in 0..4 {
            let dir = (self.scan + off) % 4;
            if self.remaining[dir] > 0 {
                self.remaining[dir] -= 1;
                self.scan = (dir + 1) % 4;
                self.cur_dir = dir;
                self.state = HoState::AwaitRecv;
                let (from, tag) = self.recv_source(dir);
                return Op::Recv { from, tag };
            }
        }
        // All blocks of row i and column j are local: compute the new block.
        let mut h = vec![0i64; self.side * self.side];
        for k in 0..self.q {
            let a = self.row_blocks[k].as_ref().expect("missing row block");
            let b = self.col_blocks[k].as_ref().expect("missing column block");
            if self.include_compute {
                ctx.compute_int_ops(block_multiply_ops(self.side));
            }
            block_multiply_add(&mut h, a, b, self.side);
        }
        self.h = h;
        self.state = HoState::Finish;
        Op::Barrier
    }

    /// Forward a block one hop along its pipeline, if it has further to go.
    fn forward(&mut self, dir: usize, idx: usize, block: &[i64]) -> Option<Op> {
        let to = match dir {
            0 if self.j + 1 < self.q => self.proc_of(self.i, self.j + 1),
            1 if self.j > 0 => self.proc_of(self.i, self.j - 1),
            2 if self.i + 1 < self.q => self.proc_of(self.i + 1, self.j),
            3 if self.i > 0 => self.proc_of(self.i - 1, self.j),
            _ => return None,
        };
        let tag = [TAG_EAST, TAG_WEST, TAG_SOUTH, TAG_NORTH][dir];
        Some(Op::Send {
            to,
            bytes: self.block_bytes,
            tag,
            value: Arc::new((idx, block.to_vec())),
        })
    }
}

impl ProcProgram for MatmulHandOptProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            HoState::Kickoff => {
                if let Some((to, tag, payload)) = self.kickoff.pop() {
                    // Stay in Kickoff until all initial sends are out.
                    return Op::Send {
                        to,
                        bytes: self.block_bytes,
                        tag,
                        value: Arc::new(payload),
                    };
                }
                self.next_op(ctx)
            }
            HoState::AwaitRecv => {
                let msg = ctx.take::<(usize, Vec<i64>)>();
                let (idx, block) = (*msg).clone();
                let dir = self.cur_dir;
                if let Some(op) = self.forward(dir, idx, &block) {
                    self.stash = Some((idx, block));
                    self.state = HoState::AfterForward;
                    return op;
                }
                self.store(dir, idx, block);
                self.next_op(ctx)
            }
            HoState::AfterForward => {
                let (idx, block) = self.stash.take().expect("no forwarded block stashed");
                self.store(self.cur_dir, idx, block);
                self.next_op(ctx)
            }
            HoState::Finish => Op::Done,
        }
    }
}

/// Run the hand-optimized matrix square under the event-driven execution
/// mode (bit-identical to [`run_hand_optimized_prototype`]).
pub fn run_hand_optimized_driven(diva: Diva, params: MatmulParams) -> MatmulOutcome {
    let q = grid_side(&diva);
    let side = params.block_side();
    let word = diva.config().machine.word_bytes as usize;
    let block_bytes = (params.block_ints * word) as u32;
    let programs: Vec<MatmulHandOptProgram> = (0..q * q)
        .map(|p| MatmulHandOptProgram::new(p, q, side, params.include_compute, block_bytes))
        .collect();
    let outcome = diva.run_driven(programs).expect_completed();
    MatmulOutcome {
        report: outcome.report,
        blocks: outcome.results.into_iter().map(|p| p.h).collect(),
    }
}

/// The initial blocks of the experiment (used by tests to verify results).
pub fn initial_blocks(q: usize, side: usize) -> Vec<Vec<i64>> {
    (0..q * q)
        .map(|p| block_matrix(p / q, p % q, side))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_diva::{DivaConfig, StrategyKind};
    use dm_mesh::{Mesh, TreeShape};

    fn diva(side: usize, strategy: StrategyKind) -> Diva {
        Diva::new(DivaConfig::new(Mesh::square(side), strategy))
    }

    #[test]
    fn block_multiply_matches_naive() {
        let a = vec![1, 2, 3, 4];
        let b = vec![5, 6, 7, 8];
        let mut acc = vec![0i64; 4];
        block_multiply_add(&mut acc, &a, &b, 2);
        assert_eq!(acc, vec![19, 22, 43, 50]);
    }

    #[test]
    fn reference_square_of_identity_blocks() {
        // A block-diagonal identity squared is itself.
        let q = 2;
        let side = 2;
        let mut blocks = vec![vec![0i64; 4]; 4];
        blocks[0] = vec![1, 0, 0, 1];
        blocks[3] = vec![1, 0, 0, 1];
        let sq = reference_square(&blocks, q, side);
        assert_eq!(sq, blocks);
    }

    #[test]
    fn shared_version_computes_the_correct_square() {
        for strategy in [
            StrategyKind::AccessTree(TreeShape::quad()),
            StrategyKind::FixedHome,
        ] {
            let params = MatmulParams::new(16);
            let out = run_shared_prototype(diva(4, strategy), params);
            let expected = reference_square(&initial_blocks(4, 4), 4, 4);
            assert_eq!(out.blocks, expected);
        }
    }

    #[test]
    fn hand_optimized_version_computes_the_correct_square() {
        let params = MatmulParams::new(16);
        let out = run_hand_optimized_prototype(
            diva(4, StrategyKind::AccessTree(TreeShape::quad())),
            params,
        );
        let expected = reference_square(&initial_blocks(4, 4), 4, 4);
        assert_eq!(out.blocks, expected);
    }

    #[test]
    fn shared_and_hand_optimized_agree_on_a_bigger_mesh() {
        let params = MatmulParams::new(64);
        let a = run_shared_prototype(diva(8, StrategyKind::AccessTree(TreeShape::quad())), params);
        let b = run_hand_optimized_prototype(diva(8, StrategyKind::FixedHome), params);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn driven_and_threaded_shared_runs_are_bit_identical() {
        for strategy in [
            StrategyKind::AccessTree(TreeShape::quad()),
            StrategyKind::FixedHome,
        ] {
            let params = MatmulParams::new(64);
            let threaded = run_shared_prototype(diva(4, strategy), params);
            let driven = run_shared_driven(diva(4, strategy), params);
            assert_eq!(threaded.blocks, driven.blocks, "{strategy:?}");
            assert_eq!(threaded.report, driven.report, "{strategy:?}");
        }
    }

    #[test]
    fn driven_and_threaded_shared_runs_agree_under_an_active_fault_plan() {
        // A seeded plan that degrades links mid-run — permanently and
        // through a transient window that heals — must leave the two
        // backends bit-identical: fault and recovery application are events
        // like any other. (Node-failure plans fail-stop programs and are
        // parity-gated separately; here every program completes, so the
        // numeric result must still be exact.)
        use dm_diva::FaultPlan;
        for strategy in [
            StrategyKind::AccessTree(TreeShape::quad()),
            StrategyKind::FixedHome,
        ] {
            let plan = FaultPlan::new(0xFA01)
                .degrade_links(0.2, 0.5, 200_000)
                .degrade_links_for(0.3, 0.25, 600_000, 400_000);
            let mk =
                |s| Diva::new(DivaConfig::new(Mesh::square(4), s).with_fault_plan(plan.clone()));
            let params = MatmulParams::new(64);
            let threaded = run_shared_prototype(mk(strategy), params);
            let driven = run_shared_driven(mk(strategy), params);
            assert_eq!(threaded.blocks, driven.blocks, "{strategy:?}");
            assert_eq!(threaded.report, driven.report, "{strategy:?}");
            // The result is still correct despite the turbulence.
            let side = params.block_side();
            let expected = reference_square(&initial_blocks(4, side), 4, side);
            assert_eq!(driven.blocks, expected, "{strategy:?}");
            assert!(driven.report.faults.links_degraded > 0, "{strategy:?}");
            assert!(driven.report.faults.links_healed > 0, "{strategy:?}");
            assert_eq!(driven.report.faults.nodes_failed, 0, "{strategy:?}");
        }
    }

    #[test]
    fn driven_and_threaded_hand_optimized_runs_are_bit_identical() {
        let params = MatmulParams {
            block_ints: 64,
            include_compute: true,
        };
        let threaded = run_hand_optimized_prototype(diva(4, StrategyKind::FixedHome), params);
        let driven = run_hand_optimized_driven(diva(4, StrategyKind::FixedHome), params);
        assert_eq!(threaded.blocks, driven.blocks);
        assert_eq!(threaded.report, driven.report);
    }

    #[test]
    fn hand_optimized_congestion_is_close_to_the_lower_bound() {
        // The paper: the hand-optimized strategy achieves congestion m·√P
        // (in words). Allow protocol headers as slack.
        let params = MatmulParams::new(256);
        let out = run_hand_optimized_prototype(diva(4, StrategyKind::FixedHome), params);
        let word = 4;
        let lower_bound = (256 * word * 4) as u64; // m bytes · √P
        let measured = out.report.congestion_bytes();
        assert!(
            measured >= lower_bound / 2,
            "congestion {measured} below plausible range"
        );
        assert!(
            measured <= lower_bound * 2,
            "congestion {measured} far above the m·√P bound {lower_bound}"
        );
    }

    #[test]
    fn access_tree_produces_less_congestion_than_fixed_home() {
        // The central claim of Figure 3, at small scale.
        let params = MatmulParams::new(256);
        let at = run_shared_prototype(diva(8, StrategyKind::AccessTree(TreeShape::quad())), params);
        let fh = run_shared_prototype(diva(8, StrategyKind::FixedHome), params);
        assert!(
            at.report.congestion_bytes() < fh.report.congestion_bytes(),
            "access tree {} vs fixed home {}",
            at.report.congestion_bytes(),
            fh.report.congestion_bytes()
        );
    }

    #[test]
    fn read_phase_carries_almost_all_the_traffic() {
        let params = MatmulParams::new(256);
        let out =
            run_shared_prototype(diva(4, StrategyKind::AccessTree(TreeShape::quad())), params);
        let read = out.report.region("read-phase").unwrap();
        let write = out.report.region("write-phase").unwrap();
        assert!(read.total_bytes > 5 * write.total_bytes);
    }
}
