//! Arena-allocated octrees for the Barnes-Hut application.
//!
//! Two consumers share the machinery in this module:
//!
//! * the **sequential reference simulation** uses [`ArenaOctree`], a
//!   flat-arena octree whose nodes live in one `Vec` and reference each other
//!   through [`PackedChild`] indices — no `Box` per cell, no pointer chasing
//!   across allocations, and all buffers are pooled across time steps;
//! * the **simulated shared octree** of `barnes_hut` stores the same
//!   [`PackedChild`] encoding inside its cell variables, where the packed
//!   `u32` indexes the DIVA variable space instead of the arena.
//!
//! The encoding packs a child slot into a single `u32`: the top two bits tag
//! the slot (sub-cell, body, or empty), the low 30 bits carry the index.
//! Compared to the boxed `Option<enum>` representation this quarters the size
//! of a child array and keeps sibling slots in one cache line — the
//! difference between fitting a ≥100 000-body tree rebuild per time step in
//! cache-friendly memory and thrashing, which is what lets the figure sweeps
//! run at beyond-paper scales.

use crate::workload::Body;

/// Maximum octree depth before coincident bodies are stored side by side.
pub const MAX_DEPTH: u32 = 48;

/// Decoded view of a [`PackedChild`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// No child.
    Empty,
    /// A body, identified by a 30-bit index.
    Body(u32),
    /// A sub-cell, identified by a 30-bit index.
    Cell(u32),
}

/// A child slot of an octree cell, packed into one `u32`: the top two bits
/// tag the slot (`0b00` sub-cell, `0b01` body, all-ones empty), the low 30
/// bits hold the index — an arena node index in [`ArenaOctree`], a DIVA
/// variable index in the shared octree of `barnes_hut`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedChild(u32);

const TAG_SHIFT: u32 = 30;
const INDEX_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_CELL: u32 = 0b00;
const TAG_BODY: u32 = 0b01;

impl PackedChild {
    /// The empty slot.
    pub const EMPTY: PackedChild = PackedChild(u32::MAX);

    /// A slot holding a sub-cell index.
    ///
    /// Hard assert (not `debug_assert`): an overflowing index would bleed
    /// into the tag bits and silently decode as the wrong slot kind, and the
    /// encode path runs during tree build, not in the per-interaction loop.
    pub fn cell(index: u32) -> Self {
        assert!(index <= INDEX_MASK, "cell index overflows 30 bits");
        PackedChild(TAG_CELL << TAG_SHIFT | index)
    }

    /// A slot holding a body index (see [`PackedChild::cell`] on the bound).
    pub fn body(index: u32) -> Self {
        assert!(index <= INDEX_MASK, "body index overflows 30 bits");
        PackedChild(TAG_BODY << TAG_SHIFT | index)
    }

    /// Decode the slot.
    pub fn decode(self) -> Slot {
        if self.0 == u32::MAX {
            Slot::Empty
        } else if self.0 >> TAG_SHIFT == TAG_BODY {
            Slot::Body(self.0 & INDEX_MASK)
        } else {
            Slot::Cell(self.0 & INDEX_MASK)
        }
    }
}

impl Default for PackedChild {
    fn default() -> Self {
        PackedChild::EMPTY
    }
}

/// Index of the octant of `pos` relative to `centre`.
pub(crate) fn octant_of(centre: &[f64; 3], pos: &[f64; 3]) -> usize {
    (0..3).fold(0, |acc, d| acc | (usize::from(pos[d] >= centre[d]) << d))
}

/// Centre of the child cell in octant `idx` of a cell at `centre` with
/// half-side `half`.
pub(crate) fn child_centre_of(centre: &[f64; 3], half: f64, idx: usize) -> [f64; 3] {
    let q = half / 2.0;
    [
        centre[0] + if idx & 1 != 0 { q } else { -q },
        centre[1] + if idx & 2 != 0 { q } else { -q },
        centre[2] + if idx & 4 != 0 { q } else { -q },
    ]
}

/// One node of the arena octree. The centre of mass is kept compact: one
/// `[f64; 4]` block (x, y, z, mass) instead of separate fields, so the force
/// loop reads it with a single aligned fetch.
#[derive(Debug, Clone)]
struct Node {
    /// Geometric centre.
    centre: [f64; 3],
    /// Half of the side length.
    half: f64,
    /// Centre of mass and total mass, packed as `[x, y, z, mass]` (valid
    /// after [`ArenaOctree::compute_com`]).
    com: [f64; 4],
    /// The eight child slots.
    children: [PackedChild; 8],
}

impl Node {
    fn new(centre: [f64; 3], half: f64) -> Self {
        Node {
            centre,
            half,
            com: [0.0; 4],
            children: [PackedChild::EMPTY; 8],
        }
    }
}

/// An arena-allocated sequential Barnes-Hut octree.
///
/// All nodes live in one `Vec` and reference children through packed `u32`
/// indices; the arena and every traversal buffer are reused across
/// [`build`](ArenaOctree::build) calls, so a multi-step simulation performs
/// no per-step tree allocations once the pools have warmed up.
///
/// The insertion, centre-of-mass and force algorithms mirror the classic
/// boxed-pointer implementation operation for operation (the unit tests
/// assert bit-identical results), parents are always created before their
/// children, and bodies are identified by their index into the caller's body
/// slice.
#[derive(Debug, Default)]
pub struct ArenaOctree {
    nodes: Vec<Node>,
}

impl ArenaOctree {
    /// An empty octree with empty pools.
    pub fn new() -> Self {
        ArenaOctree::default()
    }

    /// Number of cells in the current tree.
    pub fn num_cells(&self) -> usize {
        self.nodes.len()
    }

    /// Rebuild the tree over `bodies` inside the cube at `centre` with
    /// half-side `half`, reusing the node arena of the previous build.
    pub fn build(&mut self, bodies: &[Body], centre: [f64; 3], half: f64) {
        assert!(
            bodies.len() <= INDEX_MASK as usize,
            "body count overflows the 30-bit packed index"
        );
        self.nodes.clear();
        self.nodes.push(Node::new(centre, half));
        for (i, b) in bodies.iter().enumerate() {
            self.insert(i as u32, b.pos, bodies);
        }
    }

    /// Insert body `i` at `pos`. Mirrors the boxed implementation: descend to
    /// the body's octant; an occupied leaf slot grows a chain of sub-cells
    /// until the two bodies separate (or `MAX_DEPTH` is reached, in which
    /// case they share a cell side by side).
    fn insert(&mut self, i: u32, pos: [f64; 3], bodies: &[Body]) {
        let mut cur = 0u32;
        let mut depth = 0u32;
        loop {
            let node = &self.nodes[cur as usize];
            let oct = octant_of(&node.centre, &pos);
            match node.children[oct].decode() {
                Slot::Cell(next) => {
                    cur = next;
                    depth += 1;
                }
                Slot::Empty => {
                    self.nodes[cur as usize].children[oct] = PackedChild::body(i);
                    return;
                }
                Slot::Body(other) => {
                    let other_pos = bodies[other as usize].pos;
                    let mut parent = cur;
                    let mut oct = oct;
                    loop {
                        let (centre, half) = {
                            let p = &self.nodes[parent as usize];
                            (child_centre_of(&p.centre, p.half, oct), p.half / 2.0)
                        };
                        let new = self.push_node(Node::new(centre, half));
                        self.nodes[parent as usize].children[oct] = PackedChild::cell(new);
                        let sub = &mut self.nodes[new as usize];
                        if depth >= MAX_DEPTH {
                            // Coincident (or nearly coincident) bodies: store
                            // them side by side in the deepest allowed cell.
                            sub.children[0] = PackedChild::body(other);
                            sub.children[1] = PackedChild::body(i);
                            return;
                        }
                        let ia = octant_of(&sub.centre, &pos);
                        let ib = octant_of(&sub.centre, &other_pos);
                        if ia != ib {
                            sub.children[ia] = PackedChild::body(i);
                            sub.children[ib] = PackedChild::body(other);
                            return;
                        }
                        parent = new;
                        oct = ia;
                        depth += 1;
                    }
                }
            }
        }
    }

    fn push_node(&mut self, node: Node) -> u32 {
        let idx = self.nodes.len();
        assert!(
            idx <= INDEX_MASK as usize,
            "cell count overflows the 30-bit packed index"
        );
        self.nodes.push(node);
        idx as u32
    }

    /// Compute the centre of mass of every cell. Parents are created before
    /// their children, so one reverse pass over the arena aggregates the
    /// whole tree without recursion.
    pub fn compute_com(&mut self, bodies: &[Body]) {
        for idx in (0..self.nodes.len()).rev() {
            let children = self.nodes[idx].children;
            let mut mass = 0.0;
            let mut com = [0.0f64; 3];
            for child in children {
                match child.decode() {
                    Slot::Empty => {}
                    Slot::Body(b) => {
                        let body = &bodies[b as usize];
                        mass += body.mass;
                        for k in 0..3 {
                            com[k] += body.mass * body.pos[k];
                        }
                    }
                    Slot::Cell(c) => {
                        // c > idx, so its centre of mass is already final.
                        let sub = self.nodes[c as usize].com;
                        mass += sub[3];
                        for k in 0..3 {
                            com[k] += sub[3] * sub[k];
                        }
                    }
                }
            }
            let node = &mut self.nodes[idx];
            if mass > 0.0 {
                for k in 0..3 {
                    com[k] /= mass;
                }
            } else {
                com = node.centre;
            }
            node.com = [com[0], com[1], com[2], mass];
        }
    }

    /// The acceleration on body `me` with opening criterion `theta`,
    /// traversing children in slot order exactly like the boxed
    /// implementation (so the floating-point summation order — and therefore
    /// the result — is bit-identical).
    pub fn force(
        &self,
        me: usize,
        bodies: &[Body],
        theta: f64,
        accel: fn(&[f64; 3], &[f64; 3], f64) -> [f64; 3],
    ) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        self.force_from(0, me, bodies, theta, accel, &mut acc);
        acc
    }

    fn force_from(
        &self,
        cell: u32,
        me: usize,
        bodies: &[Body],
        theta: f64,
        accel: fn(&[f64; 3], &[f64; 3], f64) -> [f64; 3],
        acc: &mut [f64; 3],
    ) {
        let node = &self.nodes[cell as usize];
        let pos = bodies[me].pos;
        let com = [node.com[0], node.com[1], node.com[2]];
        let dx = com[0] - pos[0];
        let dy = com[1] - pos[1];
        let dz = com[2] - pos[2];
        let dist = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
        if (2.0 * node.half) / dist < theta {
            let a = accel(&pos, &com, node.com[3]);
            for k in 0..3 {
                acc[k] += a[k];
            }
            return;
        }
        for child in node.children {
            match child.decode() {
                Slot::Empty => {}
                Slot::Body(b) => {
                    if b as usize == me {
                        continue;
                    }
                    let other = &bodies[b as usize];
                    let a = accel(&pos, &other.pos, other.mass);
                    for k in 0..3 {
                        acc[k] += a[k];
                    }
                }
                Slot::Cell(c) => self.force_from(c, me, bodies, theta, accel, acc),
            }
        }
    }

    /// Append the body indices in depth-first, slot-order traversal (the
    /// left-to-right order the costzones partitioning walks) to `out`.
    pub fn body_order(&self, out: &mut Vec<u32>) {
        if self.nodes.is_empty() {
            return;
        }
        self.body_order_from(0, out);
    }

    fn body_order_from(&self, cell: u32, out: &mut Vec<u32>) {
        for child in self.nodes[cell as usize].children {
            match child.decode() {
                Slot::Empty => {}
                Slot::Body(b) => out.push(b),
                Slot::Cell(c) => self.body_order_from(c, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barnes_hut::pairwise_accel;
    use crate::workload::{bounding_cube, plummer_bodies};

    /// The historical boxed-pointer octree, kept as the oracle the arena
    /// implementation is checked against.
    mod boxed {
        use super::super::{child_centre_of, octant_of, MAX_DEPTH};
        use crate::workload::Body;

        pub enum RefNode {
            Body(usize),
            Cell(Box<RefCell>),
        }

        pub struct RefCell {
            pub centre: [f64; 3],
            pub half: f64,
            pub children: [Option<RefNode>; 8],
            pub com: [f64; 3],
            pub mass: f64,
        }

        impl RefCell {
            pub fn new(centre: [f64; 3], half: f64) -> Self {
                RefCell {
                    centre,
                    half,
                    children: Default::default(),
                    com: [0.0; 3],
                    mass: 0.0,
                }
            }

            pub fn insert(&mut self, idx_body: usize, bodies: &[Body], depth: u32) {
                let pos = bodies[idx_body].pos;
                let oct = octant_of(&self.centre, &pos);
                match self.children[oct].take() {
                    None => self.children[oct] = Some(RefNode::Body(idx_body)),
                    Some(RefNode::Cell(mut cell)) => {
                        cell.insert(idx_body, bodies, depth + 1);
                        self.children[oct] = Some(RefNode::Cell(cell));
                    }
                    Some(RefNode::Body(other)) => {
                        let mut cell = RefCell::new(
                            child_centre_of(&self.centre, self.half, oct),
                            self.half / 2.0,
                        );
                        if depth >= MAX_DEPTH {
                            cell.children[0] = Some(RefNode::Body(other));
                            cell.children[1] = Some(RefNode::Body(idx_body));
                        } else {
                            cell.insert(other, bodies, depth + 1);
                            cell.insert(idx_body, bodies, depth + 1);
                        }
                        self.children[oct] = Some(RefNode::Cell(Box::new(cell)));
                    }
                }
            }

            pub fn compute_com(&mut self, bodies: &[Body]) -> (f64, [f64; 3]) {
                let mut mass = 0.0;
                let mut com = [0.0f64; 3];
                for child in self.children.iter_mut().flatten() {
                    match child {
                        RefNode::Body(i) => {
                            let b = &bodies[*i];
                            mass += b.mass;
                            for k in 0..3 {
                                com[k] += b.mass * b.pos[k];
                            }
                        }
                        RefNode::Cell(c) => {
                            let (m, cc) = c.compute_com(bodies);
                            mass += m;
                            for k in 0..3 {
                                com[k] += m * cc[k];
                            }
                        }
                    }
                }
                if mass > 0.0 {
                    for k in 0..3 {
                        com[k] /= mass;
                    }
                } else {
                    com = self.centre;
                }
                self.mass = mass;
                self.com = com;
                (mass, com)
            }

            pub fn force(
                &self,
                me: usize,
                bodies: &[Body],
                theta: f64,
                accel: fn(&[f64; 3], &[f64; 3], f64) -> [f64; 3],
                acc: &mut [f64; 3],
            ) {
                let pos = bodies[me].pos;
                let dx = self.com[0] - pos[0];
                let dy = self.com[1] - pos[1];
                let dz = self.com[2] - pos[2];
                let dist = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
                if (2.0 * self.half) / dist < theta {
                    let a = accel(&pos, &self.com, self.mass);
                    for k in 0..3 {
                        acc[k] += a[k];
                    }
                    return;
                }
                for child in self.children.iter().flatten() {
                    match child {
                        RefNode::Body(i) => {
                            if *i == me {
                                continue;
                            }
                            let a = accel(&pos, &bodies[*i].pos, bodies[*i].mass);
                            for k in 0..3 {
                                acc[k] += a[k];
                            }
                        }
                        RefNode::Cell(c) => c.force(me, bodies, theta, accel, acc),
                    }
                }
            }

            pub fn body_order(&self, out: &mut Vec<u32>) {
                for child in self.children.iter().flatten() {
                    match child {
                        RefNode::Body(i) => out.push(*i as u32),
                        RefNode::Cell(c) => c.body_order(out),
                    }
                }
            }

            pub fn count_cells(&self) -> usize {
                1 + self
                    .children
                    .iter()
                    .flatten()
                    .map(|c| match c {
                        RefNode::Body(_) => 0,
                        RefNode::Cell(c) => c.count_cells(),
                    })
                    .sum::<usize>()
            }
        }
    }

    fn boxed_tree(bodies: &[crate::workload::Body]) -> boxed::RefCell {
        let (centre, half) = bounding_cube(bodies);
        let mut root = boxed::RefCell::new(centre, half);
        for i in 0..bodies.len() {
            root.insert(i, bodies, 0);
        }
        root.compute_com(bodies);
        root
    }

    fn arena_tree(bodies: &[crate::workload::Body]) -> ArenaOctree {
        let (centre, half) = bounding_cube(bodies);
        let mut tree = ArenaOctree::new();
        tree.build(bodies, centre, half);
        tree.compute_com(bodies);
        tree
    }

    #[test]
    fn packed_child_roundtrips() {
        assert_eq!(PackedChild::EMPTY.decode(), Slot::Empty);
        assert_eq!(PackedChild::default().decode(), Slot::Empty);
        for idx in [0u32, 1, 17, INDEX_MASK] {
            assert_eq!(PackedChild::cell(idx).decode(), Slot::Cell(idx));
            assert_eq!(PackedChild::body(idx).decode(), Slot::Body(idx));
        }
        assert_eq!(std::mem::size_of::<PackedChild>(), 4);
    }

    #[test]
    fn arena_build_matches_boxed_build() {
        // Deterministic property loop: across seeds and sizes, the arena tree
        // has the same cell count, the same left-to-right body order and the
        // same per-cell aggregates as the boxed oracle.
        let mut orders = (Vec::new(), Vec::new());
        for seed in 0..12u64 {
            let n = 20 + (seed as usize * 37) % 300;
            let bodies = plummer_bodies(seed, n);
            let boxed = boxed_tree(&bodies);
            let arena = arena_tree(&bodies);
            assert_eq!(arena.num_cells(), boxed.count_cells(), "seed {seed}");

            orders.0.clear();
            orders.1.clear();
            boxed.body_order(&mut orders.0);
            arena.body_order(&mut orders.1);
            assert_eq!(orders.0, orders.1, "seed {seed}");
            assert_eq!(orders.0.len(), n, "every body appears exactly once");

            // Root aggregates match bit for bit.
            let root = &arena.nodes[0];
            assert_eq!(root.com[3], boxed.mass, "seed {seed}");
            for k in 0..3 {
                assert_eq!(root.com[k], boxed.com[k], "seed {seed} axis {k}");
            }
        }
    }

    #[test]
    fn arena_forces_match_boxed_forces_bit_for_bit() {
        for seed in 0..8u64 {
            let n = 30 + (seed as usize * 53) % 250;
            let bodies = plummer_bodies(seed ^ 0xA5, n);
            let boxed = boxed_tree(&bodies);
            let arena = arena_tree(&bodies);
            for theta in [0.4, 1.0] {
                for i in (0..n).step_by(7) {
                    let mut want = [0.0f64; 3];
                    boxed.force(i, &bodies, theta, pairwise_accel, &mut want);
                    let got = arena.force(i, &bodies, theta, pairwise_accel);
                    assert_eq!(got, want, "seed {seed} body {i} theta {theta}");
                }
            }
        }
    }

    #[test]
    fn coincident_bodies_share_the_deepest_cell() {
        // Two bodies at the same position cannot be separated; both
        // implementations must fall back to a shared cell at MAX_DEPTH.
        let mut bodies = plummer_bodies(3, 4);
        bodies[1].pos = bodies[0].pos;
        let boxed = boxed_tree(&bodies);
        let arena = arena_tree(&bodies);
        assert_eq!(arena.num_cells(), boxed.count_cells());
        let mut a = Vec::new();
        let mut b = Vec::new();
        boxed.body_order(&mut a);
        arena.body_order(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn rebuild_reuses_the_arena() {
        let bodies = plummer_bodies(7, 200);
        let (centre, half) = bounding_cube(&bodies);
        let mut tree = ArenaOctree::new();
        tree.build(&bodies, centre, half);
        let cells = tree.num_cells();
        let cap = tree.nodes.capacity();
        tree.build(&bodies, centre, half);
        assert_eq!(tree.num_cells(), cells, "rebuild is deterministic");
        assert_eq!(tree.nodes.capacity(), cap, "rebuild allocates nothing");
    }
}
