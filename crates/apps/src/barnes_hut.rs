//! Barnes-Hut N-body simulation, Section 3.3 of the paper.
//!
//! A reproduction of the SPLASH-2 Barnes-Hut application on top of the DIVA
//! shared-variable interface. The main data structure is the Barnes-Hut
//! octree; every cell and every body is a global variable, and the tree is
//! rebuilt (with fresh cell variables, i.e. "with pointers") in every time
//! step. Each step runs the six phases of the paper, separated by barriers:
//!
//! 1. **tree build** — processors insert their bodies into the shared octree,
//!    protected by per-cell locks;
//! 2. **centre of mass** — an upward pass computes mass, centre of mass and
//!    aggregated work counts, level by level;
//! 3. **partition** — costzones: every processor takes a contiguous zone of
//!    the tree's body sequence whose work equals its fair share. Processor
//!    identifiers follow the left-to-right leaf order of the mesh
//!    decomposition tree, so physical locality translates into topological
//!    locality (the property the access-tree strategy exploits);
//! 4. **force computation** — the dominant phase: each processor traverses
//!    the tree once per assigned body with the opening criterion
//!    `size/distance < θ`;
//! 5. **update** — leapfrog integration of the assigned bodies;
//! 6. **bounds** — a small reduction computes the bounding cube of the next
//!    step.

use crate::octree::{child_centre_of, octant_of, ArenaOctree, PackedChild, Slot, MAX_DEPTH};
use crate::workload::{bounding_cube, Body};
use dm_diva::{Diva, Op, ProcCtx, ProcProgram, RunReport, StepCtx, VarHandle};
use dm_mesh::{DecompositionTree, TreeShape};
use std::collections::HashMap;
use std::sync::Arc;

/// Gravitational softening used by both the parallel and the reference code.
pub const SOFTENING: f64 = 0.025;
/// Modelled floating-point operations per body/cell interaction.
const FLOPS_PER_INTERACTION: u64 = 25;

/// Decoded reference to a child slot of an octree cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// No child.
    Empty,
    /// A single body (leaf).
    Body(VarHandle),
    /// A sub-cell.
    Cell(VarHandle),
}

/// An octree cell, stored in a global variable.
///
/// The in-memory representation is kept compact so that the millions of cell
/// variables a beyond-paper sweep allocates (the tree is rebuilt with fresh
/// variables every time step) stay cheap: child slots are packed `u32`
/// arena-style indices into the variable space (see [`PackedChild`])
/// instead of boxed/tagged
/// 8-byte enums, and the depth is a single byte. Note that the *simulated*
/// size of a cell variable (`CELL_BYTES`, 160) is modelled after the paper's
/// cell record — the host-side layout only affects how much real memory a
/// sweep needs.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Geometric centre of the cell.
    pub centre: [f64; 3],
    /// Half of the cell's side length.
    pub half: f64,
    /// Centre of mass (valid after phase 2).
    pub com: [f64; 3],
    /// Total mass (valid after phase 2).
    pub mass: f64,
    /// Aggregated work of the bodies below this cell (valid after phase 2),
    /// saturating at `u32::MAX`. A `u32` is part of the compact cell layout:
    /// per-subtree work stays far below 2³² even at 409 600-body sweeps
    /// (~10⁹ interactions per step), and the costzones arithmetic widens to
    /// `u64` before accumulating offsets.
    pub work: u32,
    /// The eight child slots, packed.
    children: [PackedChild; 8],
    /// Number of bodies below this cell (valid after phase 2).
    pub count: u32,
    /// Depth in the tree (root = 0).
    pub depth: u8,
}

impl Cell {
    fn new(centre: [f64; 3], half: f64, depth: u8) -> Self {
        Cell {
            centre,
            half,
            depth,
            children: [PackedChild::EMPTY; 8],
            com: [0.0; 3],
            mass: 0.0,
            count: 0,
            work: 0,
        }
    }

    /// Decode child slot `idx`.
    pub fn child(&self, idx: usize) -> ChildRef {
        match self.children[idx].decode() {
            Slot::Empty => ChildRef::Empty,
            Slot::Body(b) => ChildRef::Body(VarHandle(b)),
            Slot::Cell(c) => ChildRef::Cell(VarHandle(c)),
        }
    }

    /// Store `child` in slot `idx`.
    pub fn set_child(&mut self, idx: usize, child: ChildRef) {
        self.children[idx] = match child {
            ChildRef::Empty => PackedChild::EMPTY,
            ChildRef::Body(h) => PackedChild::body(h.0),
            ChildRef::Cell(h) => PackedChild::cell(h.0),
        };
    }

    /// Index of the octant of `pos` relative to the cell centre.
    fn octant(&self, pos: &[f64; 3]) -> usize {
        octant_of(&self.centre, pos)
    }

    /// Centre of the child cell in octant `idx`.
    fn child_centre(&self, idx: usize) -> [f64; 3] {
        child_centre_of(&self.centre, self.half, idx)
    }
}

/// Clamp a per-body `u64` work counter into the saturating `u32` cell
/// aggregate. Shared by the threaded closure and the driven state machine so
/// both saturate identically.
fn clamp_work(w: u64) -> u32 {
    w.min(u64::from(u32::MAX)) as u32
}

/// Approximate size of a cell variable in bytes (the paper's cells carry a
/// similar amount of data: geometry, child pointers and mass information).
const CELL_BYTES: u32 = 160;
/// Approximate size of a body variable in bytes.
const BODY_BYTES: u32 = 80;

/// Parameters of the N-body experiment.
#[derive(Debug, Clone, Copy)]
pub struct BhParams {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Number of simulated time steps (the paper simulates 7).
    pub timesteps: usize,
    /// Leading steps excluded from the measurement (the paper excludes 2).
    pub warmup_steps: usize,
    /// Opening criterion θ of the force computation.
    pub theta: f64,
    /// Integration time step.
    pub dt: f64,
    /// Whether to model the force-computation floating-point time.
    pub include_compute: bool,
    /// Whether to free each step's cell variables at the step barrier
    /// (`ProcCtx::end_epoch` / [`Op::EndEpoch`]). Reclamation is pure
    /// bookkeeping — simulated quantities are bit-identical either way — but
    /// it caps per-variable protocol state at O(cells per step) instead of
    /// O(steps × cells), which is what makes long mega sweeps possible.
    pub reclaim: bool,
}

impl BhParams {
    /// Parameters with the paper's defaults for a given body count (7 steps,
    /// the last 5 measured, θ = 1.0, per-step reclamation on).
    pub fn new(n_bodies: usize) -> Self {
        BhParams {
            n_bodies,
            timesteps: 7,
            warmup_steps: 2,
            theta: 1.0,
            dt: 0.025,
            include_compute: true,
            reclaim: true,
        }
    }

    /// A small configuration for tests: fewer steps, no warm-up.
    pub fn small(n_bodies: usize, timesteps: usize) -> Self {
        BhParams {
            n_bodies,
            timesteps,
            warmup_steps: 0,
            theta: 0.8,
            dt: 0.0125,
            include_compute: false,
            reclaim: true,
        }
    }
}

/// Outcome of an N-body run.
pub struct BhOutcome {
    /// Simulation statistics (regions: `tree-build`, `com`, `partition`,
    /// `force`, `update`, `bounds` — accumulated over the measured steps —
    /// plus `warmup` for the excluded leading steps).
    pub report: RunReport,
    /// Final body states, indexed like the input body slice.
    pub bodies: Vec<Body>,
    /// Total number of body/cell interactions computed in the force phases.
    pub interactions: u64,
    /// Event-queue push/pop trace of the run — empty unless the [`Diva`] was
    /// configured with `trace_queue` (see the `event_queue` bench in
    /// `dm-bench`, which replays a recorded Barnes-Hut trace against
    /// alternative queue implementations).
    pub queue_trace: Vec<dm_diva::QueueOp>,
    /// Processors lost to node failures (empty unless the fault plan failed
    /// nodes before their programs finished); the run is degraded, and the
    /// bodies owned by lost processors keep their last committed state.
    pub procs_lost: Vec<usize>,
}

/// The acceleration exerted on a body at `pos` by a point mass at `src`.
pub fn pairwise_accel(pos: &[f64; 3], src: &[f64; 3], mass: f64) -> [f64; 3] {
    let dx = src[0] - pos[0];
    let dy = src[1] - pos[1];
    let dz = src[2] - pos[2];
    let dist2 = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING;
    let inv = 1.0 / (dist2 * dist2.sqrt());
    [mass * dx * inv, mass * dy * inv, mass * dz * inv]
}

/// Run the Barnes-Hut simulation through the DIVA shared-variable interface.
pub fn run_shared_prototype(mut diva: Diva, params: BhParams, bodies: &[Body]) -> BhOutcome {
    assert_eq!(bodies.len(), params.n_bodies);
    let nprocs = diva.num_procs();
    let n = params.n_bodies;
    assert!(n >= nprocs, "need at least one body per processor");

    // Pre-allocate one global variable per body; the initial owner follows a
    // block distribution over the decomposition-tree leaf order (bodies are
    // generated in no particular spatial order, so this mirrors the paper's
    // "each processor initially holds about an equal number of bodies").
    let leaf_order: Vec<usize> =
        DecompositionTree::build_on(&diva.config().topology, TreeShape::binary())
            .leaf_order()
            .iter()
            .map(|p| p.index())
            .collect();
    let mut body_vars = Vec::with_capacity(n);
    let mut initial_assignment: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    for (i, b) in bodies.iter().enumerate() {
        let owner = leaf_order[i * nprocs / n];
        let h = diva.alloc(owner, BODY_BYTES, *b);
        initial_assignment[owner].push(i);
        body_vars.push(h);
    }
    let handle_to_index: HashMap<VarHandle, usize> =
        body_vars.iter().enumerate().map(|(i, &h)| (h, i)).collect();

    // Shared control variables.
    let (centre, half) = bounding_cube(bodies);
    let root_ptr = diva.alloc(0, 16, VarHandle(u32::MAX));
    let bounds_var = diva.alloc(0, 64, (centre, half));
    let depth_var = diva.alloc(0, 8, 0u32);
    // Per-processor reduction slots (bounds and tree depth contributions).
    let reduce_vars: Vec<VarHandle> = (0..nprocs)
        .map(|p| diva.alloc(p, 64, ([0.0f64; 3], [0.0f64; 3], 0u32)))
        .collect();

    let body_vars = Arc::new(body_vars);
    let reduce_vars = Arc::new(reduce_vars);
    let initial_assignment = Arc::new(initial_assignment);

    let outcome = {
        let body_vars = Arc::clone(&body_vars);
        diva.run_prototype(move |ctx| {
            let me = ctx.proc_id();
            let nprocs = ctx.num_procs();
            // Bodies this processor loads into the tree / owns this step.
            let mut my_bodies: Vec<VarHandle> = initial_assignment[me]
                .iter()
                .map(|&i| body_vars[i])
                .collect();
            // Cells created by this processor in the current step, with depth.
            let mut my_cells: Vec<(u8, VarHandle)> = Vec::new();
            let mut interactions_total = 0u64;
            let mut final_bodies: Vec<(VarHandle, Body)> = Vec::new();
            // Pooled per-step buffers: reused across time steps so a long
            // simulation settles into zero per-step allocations.
            let mut assigned: Vec<VarHandle> = Vec::new();
            let mut updates: Vec<(VarHandle, [f64; 3], u64)> = Vec::new();
            let mut chain: Vec<Cell> = Vec::new();
            let mut stack: Vec<VarHandle> = Vec::new();

            for step in 0..params.timesteps {
                let measured = step >= params.warmup_steps;
                let region = |name: &str| {
                    if measured {
                        name.to_string()
                    } else {
                        "warmup".to_string()
                    }
                };
                my_cells.clear();

                // ---- Phase 1: load bodies into the tree -------------------
                ctx.region(&region("tree-build"));
                if me == 0 {
                    let (centre, half) = *ctx.read::<([f64; 3], f64)>(bounds_var);
                    let root = ctx.alloc(CELL_BYTES, Cell::new(centre, half, 0));
                    my_cells.push((0, root));
                    ctx.write(root_ptr, root);
                }
                ctx.barrier();
                let root = *ctx.read::<VarHandle>(root_ptr);
                for &b in &my_bodies {
                    let pos = ctx.read::<Body>(b).pos;
                    insert_body(ctx, root, b, pos, &mut my_cells, &mut chain);
                }
                ctx.barrier();

                // ---- Phase 2: centres of mass ------------------------------
                ctx.region(&region("com"));
                let my_depth = my_cells.iter().map(|&(d, _)| d).max().unwrap_or(0);
                ctx.write(
                    reduce_vars[me],
                    ([0.0f64; 3], [0.0f64; 3], u32::from(my_depth)),
                );
                ctx.barrier();
                if me == 0 {
                    let max_depth = (0..nprocs)
                        .map(|p| ctx.read::<([f64; 3], [f64; 3], u32)>(reduce_vars[p]).2)
                        .max()
                        .unwrap_or(0);
                    ctx.write(depth_var, max_depth);
                }
                ctx.barrier();
                let max_depth = *ctx.read::<u32>(depth_var);
                for depth in (0..=max_depth).rev() {
                    for &(d, cell_var) in &my_cells {
                        if u32::from(d) != depth {
                            continue;
                        }
                        let mut cell = (*ctx.read::<Cell>(cell_var)).clone();
                        let mut mass = 0.0;
                        let mut com = [0.0f64; 3];
                        let mut count = 0u32;
                        let mut work = 0u32;
                        for idx in 0..8 {
                            match cell.child(idx) {
                                ChildRef::Empty => {}
                                ChildRef::Body(b) => {
                                    let body = ctx.read::<Body>(b);
                                    mass += body.mass;
                                    for k in 0..3 {
                                        com[k] += body.mass * body.pos[k];
                                    }
                                    count += 1;
                                    work = work.saturating_add(clamp_work(body.work.max(1)));
                                }
                                ChildRef::Cell(c) => {
                                    let sub = ctx.read::<Cell>(c);
                                    mass += sub.mass;
                                    for k in 0..3 {
                                        com[k] += sub.mass * sub.com[k];
                                    }
                                    count += sub.count;
                                    work = work.saturating_add(sub.work);
                                }
                            }
                        }
                        if mass > 0.0 {
                            for k in 0..3 {
                                com[k] /= mass;
                            }
                        } else {
                            com = cell.centre;
                        }
                        cell.mass = mass;
                        cell.com = com;
                        cell.count = count;
                        cell.work = work;
                        ctx.write(cell_var, cell);
                    }
                    ctx.barrier();
                }

                // ---- Phase 3: costzones partitioning -----------------------
                ctx.region(&region("partition"));
                let root_cell = ctx.read::<Cell>(root);
                // A saturated total would silently drop bodies from every
                // costzones zone (child sums can exceed the clamped root);
                // fail loudly instead when a sweep outgrows the u32 envelope.
                assert!(
                    root_cell.work < u32::MAX,
                    "total per-step work saturated the u32 cell aggregate"
                );
                let total_work = u64::from(root_cell.work).max(1);
                let lo = total_work * me as u64 / nprocs as u64;
                let hi = total_work * (me as u64 + 1) / nprocs as u64;
                assigned.clear();
                costzones_collect(ctx, root, 0, lo, hi, &mut assigned);
                std::mem::swap(&mut my_bodies, &mut assigned);
                ctx.barrier();

                // ---- Phase 4: force computation ----------------------------
                ctx.region(&region("force"));
                updates.clear();
                for &b in &my_bodies {
                    let body = ctx.read::<Body>(b);
                    let (acc, count) = compute_force(
                        ctx,
                        root,
                        b,
                        &body.pos,
                        params.theta,
                        params.include_compute,
                        &mut stack,
                    );
                    interactions_total += count;
                    updates.push((b, acc, count));
                }
                ctx.barrier();

                // ---- Phase 5: advance bodies -------------------------------
                ctx.region(&region("update"));
                let mut local_min = [f64::INFINITY; 3];
                let mut local_max = [f64::NEG_INFINITY; 3];
                for (b, acc, count) in updates.drain(..) {
                    let mut body = *ctx.read::<Body>(b);
                    for k in 0..3 {
                        body.vel[k] += acc[k] * params.dt;
                        body.pos[k] += body.vel[k] * params.dt;
                        local_min[k] = local_min[k].min(body.pos[k]);
                        local_max[k] = local_max[k].max(body.pos[k]);
                    }
                    body.work = count.max(1);
                    ctx.write(b, body);
                }
                ctx.barrier();

                // ---- Phase 6: new bounding cube ----------------------------
                ctx.region(&region("bounds"));
                ctx.write(reduce_vars[me], (local_min, local_max, 0u32));
                ctx.barrier();
                if me == 0 {
                    let mut min = [f64::INFINITY; 3];
                    let mut max = [f64::NEG_INFINITY; 3];
                    for p in 0..nprocs {
                        let (lmin, lmax, _) =
                            *ctx.read::<([f64; 3], [f64; 3], u32)>(reduce_vars[p]);
                        for k in 0..3 {
                            min[k] = min[k].min(lmin[k]);
                            max[k] = max[k].max(lmax[k]);
                        }
                    }
                    let centre = [
                        (min[0] + max[0]) / 2.0,
                        (min[1] + max[1]) / 2.0,
                        (min[2] + max[2]) / 2.0,
                    ];
                    let half = (0..3)
                        .map(|k| (max[k] - min[k]) / 2.0)
                        .fold(0.0f64, f64::max)
                        .max(1e-6)
                        * 1.001;
                    ctx.write(bounds_var, (centre, half));
                }
                ctx.barrier();

                // ---- Step barrier reached: retire this step's tree --------
                // All protocol traffic on the cells has quiesced (every phase
                // ended in a barrier), so the cells this processor allocated
                // can be freed in bulk. Costs no simulated time.
                if params.reclaim {
                    ctx.end_epoch();
                }

                if step + 1 == params.timesteps {
                    for &b in &my_bodies {
                        final_bodies.push((b, (*ctx.read::<Body>(b))));
                    }
                }
            }
            (final_bodies, interactions_total)
        })
        .expect_completed()
    };

    let mut final_bodies = bodies.to_vec();
    let mut interactions = 0u64;
    for (list, count) in outcome.results {
        interactions += count;
        for (handle, body) in list {
            let idx = handle_to_index[&handle];
            final_bodies[idx] = body;
        }
    }
    BhOutcome {
        report: outcome.report,
        bodies: final_bodies,
        interactions,
        queue_trace: outcome.queue_trace,
        procs_lost: Vec::new(),
    }
}

/// Insert `body` (at `pos`) into the shared octree rooted at `root`,
/// protecting modified cells with their locks. Newly created cells are
/// recorded in `created`; `chain` is a pooled scratch buffer for the
/// subdivision chain.
fn insert_body(
    ctx: &mut ProcCtx,
    root: VarHandle,
    body: VarHandle,
    pos: [f64; 3],
    created: &mut Vec<(u8, VarHandle)>,
    chain: &mut Vec<Cell>,
) {
    let mut cur = root;
    loop {
        let cell = ctx.read::<Cell>(cur);
        let idx = cell.octant(&pos);
        match cell.child(idx) {
            ChildRef::Cell(next) => {
                cur = next;
            }
            _ => {
                // The slot needs to be modified: take the cell's lock and
                // re-examine (another processor may have raced us).
                ctx.lock(cur);
                let fresh = (*ctx.read::<Cell>(cur)).clone();
                match fresh.child(idx) {
                    ChildRef::Cell(_) => {
                        ctx.unlock(cur);
                        // Retry the descent from the same cell.
                    }
                    ChildRef::Empty => {
                        let mut updated = fresh;
                        updated.set_child(idx, ChildRef::Body(body));
                        ctx.write(cur, updated);
                        ctx.unlock(cur);
                        return;
                    }
                    ChildRef::Body(other) => {
                        let other_pos = ctx.read::<Body>(other).pos;
                        let sub = subdivide(
                            ctx,
                            &fresh,
                            idx,
                            (body, pos),
                            (other, other_pos),
                            created,
                            chain,
                        );
                        let mut updated = fresh;
                        updated.set_child(idx, ChildRef::Cell(sub));
                        ctx.write(cur, updated);
                        ctx.unlock(cur);
                        return;
                    }
                }
            }
        }
    }
}

/// Build (into the pooled `chain` buffer) the chain of cells needed to
/// separate two bodies that fall into the same octant of `parent`. Shared by
/// the threaded closure and the driven state machine so both construct
/// bit-identical chains.
fn build_subdivision_chain(
    chain: &mut Vec<Cell>,
    parent: &Cell,
    octant: usize,
    a: (VarHandle, [f64; 3]),
    b: (VarHandle, [f64; 3]),
) {
    chain.clear();
    let mut centre = parent.child_centre(octant);
    let mut half = parent.half / 2.0;
    let mut depth = parent.depth + 1;
    loop {
        let cell = Cell::new(centre, half, depth);
        let ia = cell.octant(&a.1);
        let ib = cell.octant(&b.1);
        if ia != ib || u32::from(depth) >= MAX_DEPTH {
            let mut leaf = cell;
            if ia != ib {
                leaf.set_child(ia, ChildRef::Body(a.0));
                leaf.set_child(ib, ChildRef::Body(b.0));
            } else {
                // Coincident (or nearly coincident) bodies: place them in the
                // first two free slots of the deepest allowed cell.
                leaf.set_child(ia, ChildRef::Body(a.0));
                let free = (0..8).find(|&i| i != ia).unwrap();
                leaf.set_child(free, ChildRef::Body(b.0));
            }
            chain.push(leaf);
            return;
        }
        let next_centre = cell.child_centre(ia);
        chain.push(cell);
        centre = next_centre;
        half /= 2.0;
        depth += 1;
    }
}

/// Allocate the subdivision chain separating two bodies that fall into the
/// same octant of `parent`, and return the handle of the topmost new cell.
#[allow(clippy::too_many_arguments)]
fn subdivide(
    ctx: &mut ProcCtx,
    parent: &Cell,
    octant: usize,
    a: (VarHandle, [f64; 3]),
    b: (VarHandle, [f64; 3]),
    created: &mut Vec<(u8, VarHandle)>,
    chain: &mut Vec<Cell>,
) -> VarHandle {
    build_subdivision_chain(chain, parent, octant, a, b);
    // Allocate from the deepest cell upwards, wiring child pointers.
    let mut child_handle: Option<VarHandle> = None;
    for cell in chain.drain(..).rev() {
        let mut cell = cell;
        if let Some(ch) = child_handle {
            let idx = cell.octant(&a.1);
            cell.set_child(idx, ChildRef::Cell(ch));
        }
        let depth = cell.depth;
        let handle = ctx.alloc(CELL_BYTES, cell);
        created.push((depth, handle));
        child_handle = Some(handle);
    }
    child_handle.expect("subdivision created no cells")
}

/// Costzones: collect the bodies whose cumulative work lies in `[lo, hi)`,
/// walking the tree in child order. Returns the cumulative work after the
/// subtree.
fn costzones_collect(
    ctx: &mut ProcCtx,
    cell_var: VarHandle,
    offset: u64,
    lo: u64,
    hi: u64,
    out: &mut Vec<VarHandle>,
) -> u64 {
    let cell = ctx.read::<Cell>(cell_var);
    let end = offset + u64::from(cell.work);
    if end <= lo || offset >= hi {
        return end;
    }
    let mut off = offset;
    for idx in 0..8 {
        match cell.child(idx) {
            ChildRef::Empty => {}
            ChildRef::Body(b) => {
                let work = ctx.read::<Body>(b).work.max(1);
                // A body belongs to the processor whose zone contains its
                // starting offset, so every body is assigned exactly once.
                if off >= lo && off < hi {
                    out.push(b);
                }
                off += work;
            }
            ChildRef::Cell(c) => {
                off = costzones_collect(ctx, c, off, lo, hi, out);
            }
        }
    }
    off
}

/// Compute the acceleration on the body stored in `body_var` at position
/// `pos` by traversing the shared tree (with a pooled traversal stack).
/// Returns the acceleration and the number of interactions.
#[allow(clippy::too_many_arguments)]
fn compute_force(
    ctx: &mut ProcCtx,
    root: VarHandle,
    body_var: VarHandle,
    pos: &[f64; 3],
    theta: f64,
    include_compute: bool,
    stack: &mut Vec<VarHandle>,
) -> ([f64; 3], u64) {
    let mut acc = [0.0f64; 3];
    let mut interactions = 0u64;
    stack.clear();
    stack.push(root);
    while let Some(cell_var) = stack.pop() {
        let cell = ctx.read::<Cell>(cell_var);
        if cell.count == 0 {
            continue;
        }
        let dx = cell.com[0] - pos[0];
        let dy = cell.com[1] - pos[1];
        let dz = cell.com[2] - pos[2];
        let dist = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
        if (2.0 * cell.half) / dist < theta {
            let a = pairwise_accel(pos, &cell.com, cell.mass);
            for k in 0..3 {
                acc[k] += a[k];
            }
            interactions += 1;
        } else {
            for idx in 0..8 {
                match cell.child(idx) {
                    ChildRef::Empty => {}
                    ChildRef::Body(b) => {
                        if b == body_var {
                            continue;
                        }
                        let other = ctx.read::<Body>(b);
                        let a = pairwise_accel(pos, &other.pos, other.mass);
                        for k in 0..3 {
                            acc[k] += a[k];
                        }
                        interactions += 1;
                    }
                    ChildRef::Cell(c) => stack.push(c),
                }
            }
        }
    }
    if include_compute {
        ctx.compute_flops(interactions * FLOPS_PER_INTERACTION);
    }
    (acc, interactions)
}

// ---------------------------------------------------------------------------
// Event-driven variant: the six phases as one explicit state machine.
// ---------------------------------------------------------------------------

/// State of the driven Barnes-Hut program. One variant per suspension point
/// of the threaded closure; the recursive tree walks (insert, costzones,
/// force) carry explicit stacks in the program's scratch fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BhSt {
    /// Begin a timestep: clear per-step state, enter the tree-build region.
    StepBegin,
    /// Tree-build region entered.
    TbRegion,
    /// (me == 0) bounding cube read; allocate the root cell.
    TbBounds,
    /// (me == 0) root cell allocated; publish it.
    TbRootAlloc,
    /// (me == 0) root pointer written; synchronise.
    TbRootWritten,
    /// Pre-insert barrier passed; read the root pointer.
    TbSynced,
    /// Root pointer read; start inserting bodies.
    TbRootPtr,
    /// Issue the position read of the next body to insert (or finish P1).
    InsNext,
    /// Body position read; start the descent at the root.
    InsPos,
    /// A cell along the descent was read.
    InsCell,
    /// The cell to modify is locked; re-read it.
    InsLocked,
    /// The locked cell was re-read; decide how to modify it.
    InsFresh,
    /// Lost the race (slot filled by a sub-cell): unlocked, retry the cell.
    InsRetry,
    /// A colliding body's position was read; allocate the subdivision chain.
    InsOtherPos,
    /// One subdivision cell was allocated; allocate the next or link up.
    InsAlloc,
    /// The modified cell was written back; release its lock.
    InsWrote,
    /// Lock released; move to the next body.
    InsUnlocked,
    /// Post-insert barrier passed; enter the centre-of-mass region.
    ComBegin,
    /// Region entered; publish this processor's tree depth.
    ComRegion,
    /// Depth contribution written; synchronise.
    ComReduceW,
    /// First COM barrier passed.
    ComSync1,
    /// (me == 0) one depth contribution read.
    ComReadRed,
    /// (me == 0) global depth written; synchronise.
    ComDepthW,
    /// Second COM barrier passed; read the global depth.
    ComSync2,
    /// Global depth read; start the per-level upward pass.
    ComDepth,
    /// Find this processor's next cell of the current level.
    ComScan,
    /// A cell of the current level was read; aggregate its children.
    ComCell,
    /// Iterate the children of the current cell.
    ComChild,
    /// A child body was read.
    ComChildBody,
    /// A child cell was read.
    ComChildCell,
    /// The aggregated cell was written back.
    ComCellW,
    /// Per-level barrier passed; next level or partition phase.
    ComLevelSync,
    /// Partition region entered; read the root cell.
    PartRegion,
    /// Root cell read; start the costzones walk.
    PartRoot,
    /// A cell of the costzones walk was read.
    CzCell,
    /// Advance the costzones walk (local bookkeeping).
    CzAdvance,
    /// A body's work counter was read during the costzones walk.
    CzBody,
    /// Post-partition barrier passed; enter the force region.
    ForceBegin,
    /// Force region entered.
    ForceRegion,
    /// Issue the read of the next assigned body (or finish P4).
    FNext,
    /// An assigned body was read; start its tree traversal.
    FBody,
    /// Pop the next cell of the traversal stack.
    FPop,
    /// A traversal cell was read; open it or approximate.
    FCell,
    /// Iterate the children of an opened cell.
    FChild,
    /// A child body was read during the traversal.
    FChildBody,
    /// Post-force barrier passed; enter the update region.
    UpdBegin,
    /// Update region entered.
    UpdRegion,
    /// Issue the read of the next body to advance (or finish P5).
    UNext,
    /// A body was read; integrate and write it back.
    UBody,
    /// The advanced body was written.
    UWrote,
    /// Post-update barrier passed; enter the bounds region.
    BndBegin,
    /// Bounds region entered; publish the local bounding box.
    BndRegion,
    /// Local box written; synchronise.
    BndReduceW,
    /// First bounds barrier passed.
    BndSync1,
    /// (me == 0) one local box read.
    BndRead,
    /// (me == 0) next bounding cube written; synchronise.
    BndW,
    /// Final barrier of the step passed.
    BndSync2,
    /// Epoch end issued at the step barrier: this step's cells are retired.
    StepEpoch,
    /// Read the next owned body's final state (last step only).
    FinNext,
    /// A final body state was read.
    FinBody,
    /// Program complete.
    Finished,
}

/// The event-driven twin of the [`run_shared_prototype`] closure. Operation-equivalent
/// to the threaded version (bit-identical run reports); the recursion of the
/// tree walks is replaced by the explicit stacks below.
///
/// The parallel sweep executor in `dm-bench` moves whole simulations (the
/// `Diva` plus its programs) across worker threads; `ProcProgram`'s `Send`
/// supertrait already forces every implementor `Send` at its impl site.
struct BhProgram {
    params: BhParams,
    me: usize,
    nprocs: usize,
    root_ptr: VarHandle,
    bounds_var: VarHandle,
    depth_var: VarHandle,
    reduce_vars: Arc<Vec<VarHandle>>,
    st: BhSt,
    step_no: usize,
    my_bodies: Vec<VarHandle>,
    my_cells: Vec<(u8, VarHandle)>,
    interactions_total: u64,
    final_bodies: Vec<(VarHandle, Body)>,
    root: VarHandle,

    // Insert scratch.
    body_idx: usize,
    ins_body: VarHandle,
    ins_pos: [f64; 3],
    ins_cur: VarHandle,
    ins_oct: usize,
    ins_fresh: Option<Cell>,
    ins_other: VarHandle,
    ins_chain: Vec<Cell>,
    ins_chain_pos: usize,

    // Centre-of-mass scratch.
    reduce_idx: usize,
    depth_acc: u32,
    depth_iter: u32,
    cell_scan: usize,
    com_cell_var: VarHandle,
    com_cell: Option<Cell>,
    com_child: usize,
    com_mass: f64,
    com_com: [f64; 3],
    com_count: u32,
    com_work: u32,

    // Costzones scratch.
    cz_frames: Vec<(Arc<Cell>, usize)>,
    cz_off: u64,
    cz_lo: u64,
    cz_hi: u64,
    cz_body: VarHandle,
    assigned: Vec<VarHandle>,

    // Force scratch.
    f_stack: Vec<VarHandle>,
    f_cell: Option<Arc<Cell>>,
    f_child: usize,
    f_pos: [f64; 3],
    f_body: VarHandle,
    f_acc: [f64; 3],
    f_inter: u64,
    updates: Vec<(VarHandle, [f64; 3], u64)>,

    // Update / bounds scratch.
    upd_idx: usize,
    local_min: [f64; 3],
    local_max: [f64; 3],
    bnd_min: [f64; 3],
    bnd_max: [f64; 3],
}

impl BhProgram {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: usize,
        nprocs: usize,
        params: BhParams,
        my_bodies: Vec<VarHandle>,
        root_ptr: VarHandle,
        bounds_var: VarHandle,
        depth_var: VarHandle,
        reduce_vars: Arc<Vec<VarHandle>>,
    ) -> Self {
        BhProgram {
            params,
            me,
            nprocs,
            root_ptr,
            bounds_var,
            depth_var,
            reduce_vars,
            st: BhSt::StepBegin,
            step_no: 0,
            my_bodies,
            my_cells: Vec::new(),
            interactions_total: 0,
            final_bodies: Vec::new(),
            root: VarHandle(u32::MAX),
            body_idx: 0,
            ins_body: VarHandle(u32::MAX),
            ins_pos: [0.0; 3],
            ins_cur: VarHandle(u32::MAX),
            ins_oct: 0,
            ins_fresh: None,
            ins_other: VarHandle(u32::MAX),
            ins_chain: Vec::new(),
            ins_chain_pos: 0,
            reduce_idx: 0,
            depth_acc: 0,
            depth_iter: 0,
            cell_scan: 0,
            com_cell_var: VarHandle(u32::MAX),
            com_cell: None,
            com_child: 0,
            com_mass: 0.0,
            com_com: [0.0; 3],
            com_count: 0,
            com_work: 0,
            cz_frames: Vec::new(),
            cz_off: 0,
            cz_lo: 0,
            cz_hi: 0,
            cz_body: VarHandle(u32::MAX),
            assigned: Vec::new(),
            f_stack: Vec::new(),
            f_cell: None,
            f_child: 0,
            f_pos: [0.0; 3],
            f_body: VarHandle(u32::MAX),
            f_acc: [0.0; 3],
            f_inter: 0,
            updates: Vec::new(),
            upd_idx: 0,
            local_min: [f64::INFINITY; 3],
            local_max: [f64::NEG_INFINITY; 3],
            bnd_min: [f64::INFINITY; 3],
            bnd_max: [f64::NEG_INFINITY; 3],
        }
    }

    /// Region name of the current step ("warmup" while excluded).
    fn region(&self, name: &str) -> String {
        if self.step_no >= self.params.warmup_steps {
            name.to_string()
        } else {
            "warmup".to_string()
        }
    }

    /// Advance past the end of a time step: start the next step, or harvest
    /// the final body states after the last one.
    fn finish_step(&mut self) {
        if self.step_no + 1 == self.params.timesteps {
            self.body_idx = 0;
            self.st = BhSt::FinNext;
        } else {
            self.step_no += 1;
            self.st = BhSt::StepBegin;
        }
    }

    /// Advance by one transition; `None` means only local bookkeeping
    /// happened and the caller should advance again.
    fn advance(&mut self, ctx: &mut StepCtx<'_>) -> Option<Op> {
        match self.st {
            BhSt::StepBegin => {
                self.my_cells.clear();
                self.st = BhSt::TbRegion;
                Some(Op::Region(self.region("tree-build")))
            }
            BhSt::TbRegion => {
                if self.me == 0 {
                    self.st = BhSt::TbBounds;
                    Some(Op::Read(self.bounds_var))
                } else {
                    self.st = BhSt::TbSynced;
                    Some(Op::Barrier)
                }
            }
            BhSt::TbBounds => {
                let (centre, half) = *ctx.take::<([f64; 3], f64)>();
                self.st = BhSt::TbRootAlloc;
                Some(Op::Alloc {
                    bytes: CELL_BYTES,
                    value: Arc::new(Cell::new(centre, half, 0)),
                })
            }
            BhSt::TbRootAlloc => {
                let root = ctx.take_handle();
                self.my_cells.push((0, root));
                self.st = BhSt::TbRootWritten;
                Some(Op::Write(self.root_ptr, Arc::new(root)))
            }
            BhSt::TbRootWritten => {
                self.st = BhSt::TbSynced;
                Some(Op::Barrier)
            }
            BhSt::TbSynced => {
                self.st = BhSt::TbRootPtr;
                Some(Op::Read(self.root_ptr))
            }
            BhSt::TbRootPtr => {
                self.root = *ctx.take::<VarHandle>();
                self.body_idx = 0;
                self.st = BhSt::InsNext;
                None
            }
            BhSt::InsNext => {
                if self.body_idx < self.my_bodies.len() {
                    self.ins_body = self.my_bodies[self.body_idx];
                    self.st = BhSt::InsPos;
                    Some(Op::Read(self.ins_body))
                } else {
                    self.st = BhSt::ComBegin;
                    Some(Op::Barrier)
                }
            }
            BhSt::InsPos => {
                self.ins_pos = ctx.take::<Body>().pos;
                self.ins_cur = self.root;
                self.st = BhSt::InsCell;
                Some(Op::Read(self.ins_cur))
            }
            BhSt::InsCell => {
                let cell = ctx.take::<Cell>();
                let idx = cell.octant(&self.ins_pos);
                match cell.child(idx) {
                    ChildRef::Cell(next) => {
                        self.ins_cur = next;
                        Some(Op::Read(self.ins_cur))
                    }
                    _ => {
                        self.st = BhSt::InsLocked;
                        Some(Op::Lock(self.ins_cur))
                    }
                }
            }
            BhSt::InsLocked => {
                self.st = BhSt::InsFresh;
                Some(Op::Read(self.ins_cur))
            }
            BhSt::InsFresh => {
                let fresh = (*ctx.take::<Cell>()).clone();
                let idx = fresh.octant(&self.ins_pos);
                self.ins_oct = idx;
                match fresh.child(idx) {
                    ChildRef::Cell(_) => {
                        // Another processor filled the slot: retry the
                        // descent from the same cell.
                        self.st = BhSt::InsRetry;
                        Some(Op::Unlock(self.ins_cur))
                    }
                    ChildRef::Empty => {
                        let mut updated = fresh;
                        updated.set_child(idx, ChildRef::Body(self.ins_body));
                        self.st = BhSt::InsWrote;
                        Some(Op::Write(self.ins_cur, Arc::new(updated)))
                    }
                    ChildRef::Body(other) => {
                        self.ins_fresh = Some(fresh);
                        self.ins_other = other;
                        self.st = BhSt::InsOtherPos;
                        Some(Op::Read(other))
                    }
                }
            }
            BhSt::InsRetry => {
                self.st = BhSt::InsCell;
                Some(Op::Read(self.ins_cur))
            }
            BhSt::InsOtherPos => {
                let other_pos = ctx.take::<Body>().pos;
                let parent = self.ins_fresh.as_ref().expect("no locked cell stashed");
                // Build the chain of cells separating the two bodies into the
                // pooled buffer — the exact chain the threaded `subdivide`
                // constructs.
                build_subdivision_chain(
                    &mut self.ins_chain,
                    parent,
                    self.ins_oct,
                    (self.ins_body, self.ins_pos),
                    (self.ins_other, other_pos),
                );
                // Allocate from the deepest cell upwards.
                self.ins_chain_pos = self.ins_chain.len() - 1;
                let deepest = self.ins_chain[self.ins_chain_pos].clone();
                self.st = BhSt::InsAlloc;
                Some(Op::Alloc {
                    bytes: CELL_BYTES,
                    value: Arc::new(deepest),
                })
            }
            BhSt::InsAlloc => {
                let handle = ctx.take_handle();
                let depth = self.ins_chain[self.ins_chain_pos].depth;
                self.my_cells.push((depth, handle));
                if self.ins_chain_pos == 0 {
                    // The topmost new cell links into the locked parent.
                    let mut updated = self.ins_fresh.take().expect("no locked cell stashed");
                    updated.set_child(self.ins_oct, ChildRef::Cell(handle));
                    self.ins_chain.clear();
                    self.st = BhSt::InsWrote;
                    Some(Op::Write(self.ins_cur, Arc::new(updated)))
                } else {
                    self.ins_chain_pos -= 1;
                    let mut cell = self.ins_chain[self.ins_chain_pos].clone();
                    let idx = cell.octant(&self.ins_pos);
                    cell.set_child(idx, ChildRef::Cell(handle));
                    Some(Op::Alloc {
                        bytes: CELL_BYTES,
                        value: Arc::new(cell),
                    })
                }
            }
            BhSt::InsWrote => {
                self.st = BhSt::InsUnlocked;
                Some(Op::Unlock(self.ins_cur))
            }
            BhSt::InsUnlocked => {
                self.body_idx += 1;
                self.st = BhSt::InsNext;
                None
            }
            BhSt::ComBegin => {
                self.st = BhSt::ComRegion;
                Some(Op::Region(self.region("com")))
            }
            BhSt::ComRegion => {
                let my_depth = self.my_cells.iter().map(|&(d, _)| d).max().unwrap_or(0);
                self.st = BhSt::ComReduceW;
                Some(Op::Write(
                    self.reduce_vars[self.me],
                    Arc::new(([0.0f64; 3], [0.0f64; 3], u32::from(my_depth))),
                ))
            }
            BhSt::ComReduceW => {
                self.st = BhSt::ComSync1;
                Some(Op::Barrier)
            }
            BhSt::ComSync1 => {
                if self.me == 0 {
                    self.reduce_idx = 0;
                    self.depth_acc = 0;
                    self.st = BhSt::ComReadRed;
                    Some(Op::Read(self.reduce_vars[0]))
                } else {
                    self.st = BhSt::ComSync2;
                    Some(Op::Barrier)
                }
            }
            BhSt::ComReadRed => {
                let contribution = ctx.take::<([f64; 3], [f64; 3], u32)>().2;
                self.depth_acc = self.depth_acc.max(contribution);
                self.reduce_idx += 1;
                if self.reduce_idx < self.nprocs {
                    Some(Op::Read(self.reduce_vars[self.reduce_idx]))
                } else {
                    self.st = BhSt::ComDepthW;
                    Some(Op::Write(self.depth_var, Arc::new(self.depth_acc)))
                }
            }
            BhSt::ComDepthW => {
                self.st = BhSt::ComSync2;
                Some(Op::Barrier)
            }
            BhSt::ComSync2 => {
                self.st = BhSt::ComDepth;
                Some(Op::Read(self.depth_var))
            }
            BhSt::ComDepth => {
                self.depth_iter = *ctx.take::<u32>();
                self.cell_scan = 0;
                self.st = BhSt::ComScan;
                None
            }
            BhSt::ComScan => {
                while self.cell_scan < self.my_cells.len() {
                    let (d, cell_var) = self.my_cells[self.cell_scan];
                    if u32::from(d) == self.depth_iter {
                        self.com_cell_var = cell_var;
                        self.st = BhSt::ComCell;
                        return Some(Op::Read(cell_var));
                    }
                    self.cell_scan += 1;
                }
                self.st = BhSt::ComLevelSync;
                Some(Op::Barrier)
            }
            BhSt::ComCell => {
                self.com_cell = Some((*ctx.take::<Cell>()).clone());
                self.com_child = 0;
                self.com_mass = 0.0;
                self.com_com = [0.0; 3];
                self.com_count = 0;
                self.com_work = 0;
                self.st = BhSt::ComChild;
                None
            }
            BhSt::ComChild => {
                let cell = self.com_cell.as_ref().expect("no COM cell");
                while self.com_child < 8 {
                    match cell.child(self.com_child) {
                        ChildRef::Empty => self.com_child += 1,
                        ChildRef::Body(b) => {
                            self.st = BhSt::ComChildBody;
                            return Some(Op::Read(b));
                        }
                        ChildRef::Cell(c) => {
                            self.st = BhSt::ComChildCell;
                            return Some(Op::Read(c));
                        }
                    }
                }
                // All children aggregated: finalize and write back.
                let mut cell = self.com_cell.take().expect("no COM cell");
                if self.com_mass > 0.0 {
                    for k in 0..3 {
                        self.com_com[k] /= self.com_mass;
                    }
                } else {
                    self.com_com = cell.centre;
                }
                cell.mass = self.com_mass;
                cell.com = self.com_com;
                cell.count = self.com_count;
                cell.work = self.com_work;
                self.st = BhSt::ComCellW;
                Some(Op::Write(self.com_cell_var, Arc::new(cell)))
            }
            BhSt::ComChildBody => {
                let body = ctx.take::<Body>();
                self.com_mass += body.mass;
                for k in 0..3 {
                    self.com_com[k] += body.mass * body.pos[k];
                }
                self.com_count += 1;
                self.com_work = self.com_work.saturating_add(clamp_work(body.work.max(1)));
                self.com_child += 1;
                self.st = BhSt::ComChild;
                None
            }
            BhSt::ComChildCell => {
                let sub = ctx.take::<Cell>();
                self.com_mass += sub.mass;
                for k in 0..3 {
                    self.com_com[k] += sub.mass * sub.com[k];
                }
                self.com_count += sub.count;
                self.com_work = self.com_work.saturating_add(sub.work);
                self.com_child += 1;
                self.st = BhSt::ComChild;
                None
            }
            BhSt::ComCellW => {
                self.cell_scan += 1;
                self.st = BhSt::ComScan;
                None
            }
            BhSt::ComLevelSync => {
                if self.depth_iter > 0 {
                    self.depth_iter -= 1;
                    self.cell_scan = 0;
                    self.st = BhSt::ComScan;
                    None
                } else {
                    self.st = BhSt::PartRegion;
                    Some(Op::Region(self.region("partition")))
                }
            }
            BhSt::PartRegion => {
                self.st = BhSt::PartRoot;
                Some(Op::Read(self.root))
            }
            BhSt::PartRoot => {
                let root_cell = ctx.take::<Cell>();
                // Same loud-failure guard as the threaded closure: a
                // saturated total would silently drop bodies from the zones.
                assert!(
                    root_cell.work < u32::MAX,
                    "total per-step work saturated the u32 cell aggregate"
                );
                let total_work = u64::from(root_cell.work).max(1);
                self.cz_lo = total_work * self.me as u64 / self.nprocs as u64;
                self.cz_hi = total_work * (self.me as u64 + 1) / self.nprocs as u64;
                self.cz_off = 0;
                self.cz_frames.clear();
                self.assigned.clear();
                // The walk re-reads the root, exactly like the recursive
                // `costzones_collect` does.
                self.st = BhSt::CzCell;
                Some(Op::Read(self.root))
            }
            BhSt::CzCell => {
                let cell = ctx.take::<Cell>();
                let end = self.cz_off + u64::from(cell.work);
                if end <= self.cz_lo || self.cz_off >= self.cz_hi {
                    // Whole subtree outside the zone: skip it.
                    self.cz_off = end;
                } else {
                    self.cz_frames.push((cell, 0));
                }
                self.st = BhSt::CzAdvance;
                None
            }
            BhSt::CzAdvance => {
                loop {
                    let Some((cell, child)) = self.cz_frames.last_mut() else {
                        // Walk complete: the zone's bodies are this step's
                        // assignment.
                        std::mem::swap(&mut self.my_bodies, &mut self.assigned);
                        self.st = BhSt::ForceBegin;
                        return Some(Op::Barrier);
                    };
                    if *child >= 8 {
                        self.cz_frames.pop();
                        continue;
                    }
                    let slot = cell.child(*child);
                    *child += 1;
                    match slot {
                        ChildRef::Empty => {}
                        ChildRef::Body(b) => {
                            self.cz_body = b;
                            self.st = BhSt::CzBody;
                            return Some(Op::Read(b));
                        }
                        ChildRef::Cell(c) => {
                            self.st = BhSt::CzCell;
                            return Some(Op::Read(c));
                        }
                    }
                }
            }
            BhSt::CzBody => {
                let work = ctx.take::<Body>().work.max(1);
                if self.cz_off >= self.cz_lo && self.cz_off < self.cz_hi {
                    self.assigned.push(self.cz_body);
                }
                self.cz_off += work;
                self.st = BhSt::CzAdvance;
                None
            }
            BhSt::ForceBegin => {
                self.st = BhSt::ForceRegion;
                Some(Op::Region(self.region("force")))
            }
            BhSt::ForceRegion => {
                self.body_idx = 0;
                self.updates.clear();
                self.st = BhSt::FNext;
                None
            }
            BhSt::FNext => {
                if self.body_idx < self.my_bodies.len() {
                    self.f_body = self.my_bodies[self.body_idx];
                    self.st = BhSt::FBody;
                    Some(Op::Read(self.f_body))
                } else {
                    self.st = BhSt::UpdBegin;
                    Some(Op::Barrier)
                }
            }
            BhSt::FBody => {
                self.f_pos = ctx.take::<Body>().pos;
                self.f_acc = [0.0; 3];
                self.f_inter = 0;
                self.f_stack.clear();
                self.f_stack.push(self.root);
                self.st = BhSt::FPop;
                None
            }
            BhSt::FPop => {
                if let Some(cell_var) = self.f_stack.pop() {
                    self.st = BhSt::FCell;
                    Some(Op::Read(cell_var))
                } else {
                    // Traversal of this body complete.
                    if self.params.include_compute {
                        ctx.compute_flops(self.f_inter * FLOPS_PER_INTERACTION);
                    }
                    self.interactions_total += self.f_inter;
                    self.updates.push((self.f_body, self.f_acc, self.f_inter));
                    self.body_idx += 1;
                    self.st = BhSt::FNext;
                    None
                }
            }
            BhSt::FCell => {
                let cell = ctx.take::<Cell>();
                if cell.count == 0 {
                    self.st = BhSt::FPop;
                    return None;
                }
                let dx = cell.com[0] - self.f_pos[0];
                let dy = cell.com[1] - self.f_pos[1];
                let dz = cell.com[2] - self.f_pos[2];
                let dist = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
                if (2.0 * cell.half) / dist < self.params.theta {
                    let a = pairwise_accel(&self.f_pos, &cell.com, cell.mass);
                    for k in 0..3 {
                        self.f_acc[k] += a[k];
                    }
                    self.f_inter += 1;
                    self.st = BhSt::FPop;
                    None
                } else {
                    self.f_cell = Some(cell);
                    self.f_child = 0;
                    self.st = BhSt::FChild;
                    None
                }
            }
            BhSt::FChild => {
                let cell = self.f_cell.as_ref().expect("no opened cell");
                while self.f_child < 8 {
                    let slot = cell.child(self.f_child);
                    self.f_child += 1;
                    match slot {
                        ChildRef::Empty => {}
                        ChildRef::Body(b) => {
                            if b != self.f_body {
                                self.st = BhSt::FChildBody;
                                return Some(Op::Read(b));
                            }
                        }
                        ChildRef::Cell(c) => self.f_stack.push(c),
                    }
                }
                self.f_cell = None;
                self.st = BhSt::FPop;
                None
            }
            BhSt::FChildBody => {
                let other = ctx.take::<Body>();
                let a = pairwise_accel(&self.f_pos, &other.pos, other.mass);
                for k in 0..3 {
                    self.f_acc[k] += a[k];
                }
                self.f_inter += 1;
                self.st = BhSt::FChild;
                None
            }
            BhSt::UpdBegin => {
                self.st = BhSt::UpdRegion;
                Some(Op::Region(self.region("update")))
            }
            BhSt::UpdRegion => {
                self.upd_idx = 0;
                self.local_min = [f64::INFINITY; 3];
                self.local_max = [f64::NEG_INFINITY; 3];
                self.st = BhSt::UNext;
                None
            }
            BhSt::UNext => {
                if self.upd_idx < self.updates.len() {
                    self.st = BhSt::UBody;
                    Some(Op::Read(self.updates[self.upd_idx].0))
                } else {
                    self.st = BhSt::BndBegin;
                    Some(Op::Barrier)
                }
            }
            BhSt::UBody => {
                let (b, acc, count) = self.updates[self.upd_idx];
                let mut body = *ctx.take::<Body>();
                for k in 0..3 {
                    body.vel[k] += acc[k] * self.params.dt;
                    body.pos[k] += body.vel[k] * self.params.dt;
                    self.local_min[k] = self.local_min[k].min(body.pos[k]);
                    self.local_max[k] = self.local_max[k].max(body.pos[k]);
                }
                body.work = count.max(1);
                self.st = BhSt::UWrote;
                Some(Op::Write(b, Arc::new(body)))
            }
            BhSt::UWrote => {
                self.upd_idx += 1;
                self.st = BhSt::UNext;
                None
            }
            BhSt::BndBegin => {
                self.st = BhSt::BndRegion;
                Some(Op::Region(self.region("bounds")))
            }
            BhSt::BndRegion => {
                self.st = BhSt::BndReduceW;
                Some(Op::Write(
                    self.reduce_vars[self.me],
                    Arc::new((self.local_min, self.local_max, 0u32)),
                ))
            }
            BhSt::BndReduceW => {
                self.st = BhSt::BndSync1;
                Some(Op::Barrier)
            }
            BhSt::BndSync1 => {
                if self.me == 0 {
                    self.reduce_idx = 0;
                    self.bnd_min = [f64::INFINITY; 3];
                    self.bnd_max = [f64::NEG_INFINITY; 3];
                    self.st = BhSt::BndRead;
                    Some(Op::Read(self.reduce_vars[0]))
                } else {
                    self.st = BhSt::BndSync2;
                    Some(Op::Barrier)
                }
            }
            BhSt::BndRead => {
                let (lmin, lmax, _) = *ctx.take::<([f64; 3], [f64; 3], u32)>();
                for k in 0..3 {
                    self.bnd_min[k] = self.bnd_min[k].min(lmin[k]);
                    self.bnd_max[k] = self.bnd_max[k].max(lmax[k]);
                }
                self.reduce_idx += 1;
                if self.reduce_idx < self.nprocs {
                    Some(Op::Read(self.reduce_vars[self.reduce_idx]))
                } else {
                    let centre = [
                        (self.bnd_min[0] + self.bnd_max[0]) / 2.0,
                        (self.bnd_min[1] + self.bnd_max[1]) / 2.0,
                        (self.bnd_min[2] + self.bnd_max[2]) / 2.0,
                    ];
                    let half = (0..3)
                        .map(|k| (self.bnd_max[k] - self.bnd_min[k]) / 2.0)
                        .fold(0.0f64, f64::max)
                        .max(1e-6)
                        * 1.001;
                    self.st = BhSt::BndW;
                    Some(Op::Write(self.bounds_var, Arc::new((centre, half))))
                }
            }
            BhSt::BndW => {
                self.st = BhSt::BndSync2;
                Some(Op::Barrier)
            }
            BhSt::BndSync2 => {
                if self.params.reclaim {
                    // Retire this step's cells — the op-stream twin of the
                    // `ctx.end_epoch()` in the threaded closure.
                    self.st = BhSt::StepEpoch;
                    Some(Op::EndEpoch)
                } else {
                    self.finish_step();
                    None
                }
            }
            BhSt::StepEpoch => {
                self.finish_step();
                None
            }
            BhSt::FinNext => {
                if self.body_idx < self.my_bodies.len() {
                    self.st = BhSt::FinBody;
                    Some(Op::Read(self.my_bodies[self.body_idx]))
                } else {
                    self.st = BhSt::Finished;
                    Some(Op::Done)
                }
            }
            BhSt::FinBody => {
                let body = *ctx.take::<Body>();
                self.final_bodies
                    .push((self.my_bodies[self.body_idx], body));
                self.body_idx += 1;
                self.st = BhSt::FinNext;
                None
            }
            BhSt::Finished => Some(Op::Done),
        }
    }
}

impl ProcProgram for BhProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        loop {
            if let Some(op) = self.advance(ctx) {
                return op;
            }
        }
    }
}

/// Run the Barnes-Hut simulation under the event-driven execution mode — the
/// same simulated run as [`run_shared_prototype`] (bit-identical report), practical on
/// much larger meshes.
pub fn run_shared_driven(diva: Diva, params: BhParams, bodies: &[Body]) -> BhOutcome {
    match try_run_shared_driven(diva, params, bodies) {
        Ok(out) => out,
        Err(p) => panic!(
            "Barnes-Hut run partitioned at {} ns (node {} unreachable)",
            p.at, p.unreachable
        ),
    }
}

/// Like [`run_shared_driven`], but a fault plan that disconnects the network
/// yields `Err` (with the partial report) instead of panicking — the
/// graceful-degradation sweep (`fig13`) reports such points as partitioned
/// rows.
// The Err carries the partial report by value; these run once per
// simulation, so the lint's by-value-return cost is irrelevant here.
#[allow(clippy::result_large_err)]
pub fn try_run_shared_driven(
    mut diva: Diva,
    params: BhParams,
    bodies: &[Body],
) -> Result<BhOutcome, dm_diva::Partitioned> {
    assert_eq!(bodies.len(), params.n_bodies);
    let nprocs = diva.num_procs();
    let n = params.n_bodies;
    assert!(n >= nprocs, "need at least one body per processor");

    // Identical pre-allocation to `run_shared_prototype`.
    let leaf_order: Vec<usize> =
        DecompositionTree::build_on(&diva.config().topology, TreeShape::binary())
            .leaf_order()
            .iter()
            .map(|p| p.index())
            .collect();
    let mut body_vars = Vec::with_capacity(n);
    let mut initial_assignment: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    for (i, b) in bodies.iter().enumerate() {
        let owner = leaf_order[i * nprocs / n];
        let h = diva.alloc(owner, BODY_BYTES, *b);
        initial_assignment[owner].push(i);
        body_vars.push(h);
    }
    let handle_to_index: HashMap<VarHandle, usize> =
        body_vars.iter().enumerate().map(|(i, &h)| (h, i)).collect();

    let (centre, half) = bounding_cube(bodies);
    let root_ptr = diva.alloc(0, 16, VarHandle(u32::MAX));
    let bounds_var = diva.alloc(0, 64, (centre, half));
    let depth_var = diva.alloc(0, 8, 0u32);
    let reduce_vars: Arc<Vec<VarHandle>> = Arc::new(
        (0..nprocs)
            .map(|p| diva.alloc(p, 64, ([0.0f64; 3], [0.0f64; 3], 0u32)))
            .collect(),
    );

    let programs: Vec<BhProgram> = (0..nprocs)
        .map(|me| {
            let my_bodies = initial_assignment[me]
                .iter()
                .map(|&i| body_vars[i])
                .collect();
            BhProgram::new(
                me,
                nprocs,
                params,
                my_bodies,
                root_ptr,
                bounds_var,
                depth_var,
                Arc::clone(&reduce_vars),
            )
        })
        .collect();

    let (report, results, queue_trace, procs_lost) = match diva.run_driven(programs) {
        dm_diva::RunOutcome::Completed(done) => {
            let results = done.results.into_iter().map(Some).collect::<Vec<_>>();
            (done.report, results, done.queue_trace, Vec::new())
        }
        dm_diva::RunOutcome::Degraded(d) => {
            let lost = d.lost_procs.iter().map(|n| n.index()).collect();
            (d.report, d.results, Vec::new(), lost)
        }
        dm_diva::RunOutcome::Partitioned(p) => return Err(p),
    };
    let mut final_bodies = bodies.to_vec();
    let mut interactions = 0u64;
    for prog in results.into_iter().flatten() {
        interactions += prog.interactions_total;
        for (handle, body) in prog.final_bodies {
            let idx = handle_to_index[&handle];
            final_bodies[idx] = body;
        }
    }
    Ok(BhOutcome {
        report,
        bodies: final_bodies,
        interactions,
        queue_trace,
        procs_lost,
    })
}

// ---------------------------------------------------------------------------
// Sequential reference implementation (arena octree, no DIVA).
// ---------------------------------------------------------------------------

/// Advance `bodies` by `timesteps` leapfrog steps of the sequential
/// Barnes-Hut algorithm with the same opening criterion as the parallel code.
///
/// The tree is an [`ArenaOctree`]; the arena and the acceleration buffer are
/// pooled across time steps, so once warmed up the loop performs no per-step
/// allocations — the same discipline the parallel programs follow.
pub fn reference_simulation(bodies: &[Body], theta: f64, dt: f64, timesteps: usize) -> Vec<Body> {
    let mut bodies = bodies.to_vec();
    let mut tree = ArenaOctree::new();
    let mut accs: Vec<[f64; 3]> = Vec::new();
    for _ in 0..timesteps {
        let (centre, half) = bounding_cube(&bodies);
        tree.build(&bodies, centre, half);
        tree.compute_com(&bodies);
        accs.clear();
        accs.extend((0..bodies.len()).map(|i| tree.force(i, &bodies, theta, pairwise_accel)));
        for (b, acc) in bodies.iter_mut().zip(&accs) {
            for k in 0..3 {
                b.vel[k] += acc[k] * dt;
                b.pos[k] += b.vel[k] * dt;
            }
        }
    }
    bodies
}

/// Compute the exact (O(N²)) accelerations — used by tests to bound the
/// Barnes-Hut approximation error.
pub fn direct_accelerations(bodies: &[Body]) -> Vec<[f64; 3]> {
    let mut accs = vec![[0.0f64; 3]; bodies.len()];
    for i in 0..bodies.len() {
        for j in 0..bodies.len() {
            if i == j {
                continue;
            }
            let a = pairwise_accel(&bodies[i].pos, &bodies[j].pos, bodies[j].mass);
            for k in 0..3 {
                accs[i][k] += a[k];
            }
        }
    }
    accs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::plummer_bodies;
    use dm_diva::{DivaConfig, StrategyKind};
    use dm_mesh::{Mesh, TreeShape};

    fn diva(side: usize, strategy: StrategyKind) -> Diva {
        Diva::new(DivaConfig::new(Mesh::square(side), strategy))
    }

    #[test]
    fn octant_and_child_centre_are_consistent() {
        let cell = Cell::new([0.0; 3], 2.0, 0);
        for idx in 0..8 {
            let c = cell.child_centre(idx);
            assert_eq!(cell.octant(&c), idx);
        }
    }

    #[test]
    fn reference_tree_matches_direct_forces_for_small_theta() {
        let bodies = plummer_bodies(11, 80);
        let direct = direct_accelerations(&bodies);
        // With θ → 0 the tree never approximates, so forces must match the
        // direct sum almost exactly.
        let (centre, half) = bounding_cube(&bodies);
        let mut tree = ArenaOctree::new();
        tree.build(&bodies, centre, half);
        tree.compute_com(&bodies);
        for i in 0..bodies.len() {
            let acc = tree.force(i, &bodies, 1e-9, pairwise_accel);
            for k in 0..3 {
                assert!((acc[k] - direct[i][k]).abs() < 1e-9, "body {i} axis {k}");
            }
        }
    }

    #[test]
    fn simulated_cell_stays_compact() {
        // The packed-children + u32-work layout is what keeps million-cell
        // sweeps cheap; a regression here silently inflates the memory of
        // every mega run. The payload is 105 bytes (64 geometry/COM + 32
        // packed children + 4 work + 4 count + 1 depth); f64 alignment pads
        // the struct to 112.
        assert!(
            std::mem::size_of::<Cell>() <= 112,
            "Cell grew to {} bytes",
            std::mem::size_of::<Cell>()
        );
    }

    #[test]
    fn work_clamp_saturates_at_u32_max() {
        assert_eq!(clamp_work(0), 0);
        assert_eq!(clamp_work(12345), 12345);
        assert_eq!(clamp_work(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(clamp_work(u64::from(u32::MAX) + 1), u32::MAX);
        assert_eq!(u32::MAX.saturating_add(clamp_work(u64::MAX)), u32::MAX);
    }

    #[test]
    fn reclamation_does_not_change_simulated_quantities() {
        // The lifecycle acceptance at app level: frees are pure bookkeeping,
        // so every simulated quantity — time, congestion, traffic, protocol
        // counters, per-phase regions — is bit-identical with and without
        // per-step reclamation; only the variable-lifecycle statistics move.
        let mut params = BhParams {
            n_bodies: 250,
            timesteps: 3,
            warmup_steps: 1,
            theta: 0.9,
            dt: 0.01,
            include_compute: true,
            reclaim: true,
        };
        let bodies = plummer_bodies(31, params.n_bodies);
        for strategy in [
            StrategyKind::AccessTree(TreeShape::quad()),
            StrategyKind::FixedHome,
        ] {
            let on = run_shared_driven(diva(4, strategy), params, &bodies);
            params.reclaim = false;
            let off = run_shared_driven(diva(4, strategy), params, &bodies);
            params.reclaim = true;
            assert_eq!(on.bodies, off.bodies, "{strategy:?}");
            assert_eq!(on.interactions, off.interactions, "{strategy:?}");
            let (a, b) = (&on.report, &off.report);
            assert_eq!(a.total_time, b.total_time, "{strategy:?}");
            assert_eq!(a.link_stats, b.link_stats, "{strategy:?}");
            assert_eq!(a.messages_sent, b.messages_sent, "{strategy:?}");
            assert_eq!(a.bytes_sent, b.bytes_sent, "{strategy:?}");
            assert_eq!(a.compute_time, b.compute_time, "{strategy:?}");
            assert_eq!(a.barriers, b.barriers, "{strategy:?}");
            assert_eq!(a.regions, b.regions, "{strategy:?}");
            for c in dm_diva::Counter::ALL {
                assert_eq!(a.counter(c), b.counter(c), "{strategy:?} {}", c.name());
            }
            // ... while reclamation itself is observable.
            assert!(a.vars_freed > 0, "{strategy:?}");
            assert_eq!(b.vars_freed, 0, "{strategy:?}");
            assert!(
                a.live_vars_high_water < b.live_vars_high_water,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn live_var_high_water_stays_flat_across_timesteps_with_reclamation() {
        // The reclamation acceptance: with per-step frees the live-variable
        // peak is O(bodies + cells per step) — flat in the step count —
        // while without them the protocol state grows with every rebuilt
        // tree.
        let run = |timesteps: usize, reclaim: bool| {
            let params = BhParams {
                n_bodies: 300,
                timesteps,
                warmup_steps: 0,
                theta: 0.9,
                dt: 0.01,
                include_compute: false,
                reclaim,
            };
            let bodies = plummer_bodies(47, params.n_bodies);
            run_shared_driven(
                diva(4, StrategyKind::AccessTree(TreeShape::quad())),
                params,
                &bodies,
            )
            .report
            .live_vars_high_water
        };
        let one = run(1, true);
        let four = run(4, true);
        // Tree shapes drift as the bodies move, so allow a small margin —
        // but nothing near another step's worth of cells.
        assert!(
            four <= one + one / 4,
            "live high-water grew with steps despite reclamation: {one} -> {four}"
        );
        let four_leaky = run(4, false);
        // Leaky runs accumulate a fresh tree per step (bodies dominate the
        // baseline, so the total is ~1.5-2x at four steps and keeps growing).
        assert!(
            four_leaky > four * 3 / 2,
            "without reclamation the peak should grow steeply: {four_leaky} vs {four}"
        );
    }

    #[test]
    fn parallel_simulation_matches_the_sequential_reference() {
        let params = BhParams {
            n_bodies: 120,
            timesteps: 2,
            warmup_steps: 0,
            theta: 0.7,
            dt: 0.01,
            include_compute: false,
            reclaim: true,
        };
        let bodies = plummer_bodies(5, params.n_bodies);
        let expected = reference_simulation(&bodies, params.theta, params.dt, params.timesteps);
        for strategy in [
            StrategyKind::AccessTree(TreeShape::quad()),
            StrategyKind::FixedHome,
        ] {
            let out = run_shared_prototype(diva(2, strategy), params, &bodies);
            assert_eq!(out.bodies.len(), expected.len());
            for (i, (got, want)) in out.bodies.iter().zip(&expected).enumerate() {
                for k in 0..3 {
                    assert!(
                        (got.pos[k] - want.pos[k]).abs() < 1e-6,
                        "body {i} axis {k}: {} vs {}",
                        got.pos[k],
                        want.pos[k]
                    );
                }
            }
            assert!(out.interactions > 0);
        }
    }

    #[test]
    fn driven_and_threaded_runs_are_bit_identical() {
        // 4x4 (16 procs) exercises multi-level access-tree paths and a real
        // costzones split; 2x2 additionally covers the smallest tree.
        let params = BhParams {
            n_bodies: 200,
            timesteps: 2,
            warmup_steps: 1,
            theta: 0.9,
            dt: 0.01,
            include_compute: true,
            reclaim: true,
        };
        let bodies = plummer_bodies(13, params.n_bodies);
        for side in [2usize, 4] {
            for strategy in [
                StrategyKind::AccessTree(TreeShape::quad()),
                StrategyKind::FixedHome,
            ] {
                let threaded = run_shared_prototype(diva(side, strategy), params, &bodies);
                let driven = run_shared_driven(diva(side, strategy), params, &bodies);
                assert_eq!(
                    threaded.interactions, driven.interactions,
                    "{side} {strategy:?}"
                );
                assert_eq!(threaded.bodies, driven.bodies, "{side} {strategy:?}");
                assert_eq!(threaded.report, driven.report, "{side} {strategy:?}");
            }
        }
    }

    #[test]
    fn driven_and_threaded_are_bit_identical_beyond_paper_scale() {
        // The paper's largest Barnes-Hut network is 16×32 (512 processors);
        // this parity point runs 32×32 = 1024 — a scale where the threaded
        // frontend is only usable as a correctness oracle (1024 OS threads),
        // while the driven backend is the production path for 64×64+ sweeps.
        let params = BhParams {
            n_bodies: 1536,
            timesteps: 1,
            warmup_steps: 0,
            theta: 1.0,
            dt: 0.025,
            include_compute: true,
            reclaim: true,
        };
        let bodies = plummer_bodies(99, params.n_bodies);
        let strategy = StrategyKind::AccessTree(TreeShape::lk(4, 8));
        let threaded = run_shared_prototype(diva(32, strategy), params, &bodies);
        let driven = run_shared_driven(diva(32, strategy), params, &bodies);
        assert_eq!(threaded.interactions, driven.interactions);
        assert_eq!(threaded.bodies, driven.bodies);
        assert_eq!(threaded.report, driven.report);
    }

    #[test]
    fn run_produces_phase_regions_and_traffic() {
        let params = BhParams {
            n_bodies: 200,
            timesteps: 2,
            warmup_steps: 1,
            theta: 1.0,
            dt: 0.01,
            include_compute: true,
            reclaim: true,
        };
        let bodies = plummer_bodies(9, params.n_bodies);
        let out = run_shared_prototype(
            diva(4, StrategyKind::AccessTree(TreeShape::quad())),
            params,
            &bodies,
        );
        let report = &out.report;
        for phase in [
            "tree-build",
            "com",
            "partition",
            "force",
            "update",
            "bounds",
            "warmup",
        ] {
            assert!(report.region(phase).is_some(), "missing region {phase}");
        }
        // The force phase dominates the traffic among the measured phases of a
        // freshly built tree... at minimum it must produce traffic and time.
        let force = report.region("force").unwrap();
        assert!(force.total_msgs > 0);
        assert!(force.wall_time > 0);
        assert!(report.counter(dm_diva::Counter::Locks) >= params.n_bodies as u64 / 2);
        assert!(report.congestion_msgs() > 0);
    }

    #[test]
    fn access_tree_beats_fixed_home_on_tree_build_congestion() {
        // Figure 9's qualitative claim at small scale: the hot root cell makes
        // the fixed home a bottleneck, the access tree distributes the copies.
        let params = BhParams {
            n_bodies: 256,
            timesteps: 1,
            warmup_steps: 0,
            theta: 1.0,
            dt: 0.01,
            include_compute: false,
            reclaim: true,
        };
        let bodies = plummer_bodies(21, params.n_bodies);
        let at = run_shared_prototype(
            diva(4, StrategyKind::AccessTree(TreeShape::quad())),
            params,
            &bodies,
        );
        let fh = run_shared_prototype(diva(4, StrategyKind::FixedHome), params, &bodies);
        assert!(
            at.report.congestion_msgs() < fh.report.congestion_msgs(),
            "access tree {} vs fixed home {}",
            at.report.congestion_msgs(),
            fh.report.congestion_msgs()
        );
    }
}
