//! Bitonic sorting, Section 3.2 of the paper.
//!
//! A variant of Batcher's bitonic sorting circuit: every processor simulates
//! one wire and holds `m` keys; the compare-exchange operation of the circuit
//! is replaced by a merge&split (the lower wire keeps the smaller half of the
//! merged key sequence, the upper wire the larger half). Wires are assigned to
//! processors through the left-to-right leaf numbering of the mesh
//! decomposition tree, so both the arrangement of the merging circuits and
//! their internal structure map to topological locality — the locality the
//! access-tree strategy exploits.
//!
//! Variants:
//!
//! * [`run_shared_prototype`] — DIVA version: each wire's keys live in a global
//!   variable; a merge&split step reads the partner's variable and rewrites
//!   the own one, with barriers separating the read and write halves of every
//!   step.
//! * [`run_hand_optimized_prototype`] — message-passing baseline: partners simply
//!   exchange their keys with two point-to-point messages per step (optimal
//!   congestion for this embedding).

use crate::workload::sort_keys;
use dm_diva::{Diva, Op, ProcProgram, RunReport, StepCtx, VarHandle};
use dm_mesh::{DecompositionTree, TreeShape};
use std::sync::Arc;

/// Parameters of the bitonic-sorting experiment.
#[derive(Debug, Clone, Copy)]
pub struct BitonicParams {
    /// Keys per processor (the paper uses 256…16384).
    pub keys_per_proc: usize,
    /// Seed of the random input keys.
    pub seed: u64,
    /// Whether to model the local merge / initial sort time.
    pub include_compute: bool,
}

impl BitonicParams {
    /// Parameters with the given number of keys per processor.
    pub fn new(keys_per_proc: usize) -> Self {
        BitonicParams {
            keys_per_proc,
            seed: 0xB170_41C5,
            include_compute: true,
        }
    }
}

/// Outcome of a sorting run: the report plus the final keys per *wire*
/// (wire order, i.e. already in globally sorted order if the sort worked).
pub struct BitonicOutcome {
    /// Simulation statistics.
    pub report: RunReport,
    /// Final keys per wire, in wire order.
    pub keys_per_wire: Vec<Vec<u64>>,
}

/// One compare-exchange of the bitonic circuit: `(wire_low, wire_high,
/// ascending)` — after the step, the smaller keys are on `wire_low` if
/// `ascending`, on `wire_high` otherwise.
pub type Comparator = (usize, usize, bool);

/// The merge&split steps of the bitonic sorting circuit for `p` wires
/// (a power of two), grouped by parallel step.
pub fn bitonic_schedule(p: usize) -> Vec<Vec<Comparator>> {
    assert!(
        p.is_power_of_two(),
        "bitonic sort requires a power-of-two number of wires"
    );
    let mut steps = Vec::new();
    let mut k = 2;
    while k <= p {
        let mut j = k / 2;
        while j >= 1 {
            let mut step = Vec::new();
            for wire in 0..p {
                let partner = wire ^ j;
                if partner > wire {
                    let ascending = wire & k == 0;
                    step.push((wire, partner, ascending));
                }
            }
            steps.push(step);
            j /= 2;
        }
        k *= 2;
    }
    steps
}

/// For every wire and step, its partner wire and whether it keeps the lower
/// half of the merged keys.
fn per_wire_schedule(p: usize) -> Vec<Vec<(usize, bool)>> {
    let steps = bitonic_schedule(p);
    let mut per_wire = vec![Vec::with_capacity(steps.len()); p];
    for step in &steps {
        for &(lo, hi, ascending) in step {
            per_wire[lo].push((hi, ascending));
            per_wire[hi].push((lo, !ascending));
        }
    }
    per_wire
}

/// Merge two sorted sequences and keep the lower (`keep_low`) or upper half.
pub fn merge_split(mine: &[u64], other: &[u64], keep_low: bool) -> Vec<u64> {
    debug_assert_eq!(mine.len(), other.len());
    let m = mine.len();
    let mut merged = Vec::with_capacity(2 * m);
    merged.extend_from_slice(mine);
    merged.extend_from_slice(other);
    merged.sort_unstable();
    if keep_low {
        merged[..m].to_vec()
    } else {
        merged[m..].to_vec()
    }
}

/// Modelled cost of a merge&split (merging `2m` keys ≈ `2m` integer
/// comparisons plus data movement).
fn merge_ops(m: usize) -> u64 {
    4 * m as u64
}

/// The wire → processor assignment: wire `w` is simulated by the `w`-th
/// processor in the left-to-right leaf order of the mesh decomposition tree.
pub fn wire_to_proc(diva: &Diva) -> Vec<usize> {
    let tree = DecompositionTree::build_on(&diva.config().topology, TreeShape::binary());
    tree.leaf_order().iter().map(|n| n.index()).collect()
}

/// Run the bitonic sort through the DIVA shared-variable interface.
pub fn run_shared_prototype(mut diva: Diva, params: BitonicParams) -> BitonicOutcome {
    let p = diva.num_procs();
    let m = params.keys_per_proc;
    let wire_of_proc = invert(&wire_to_proc(&diva));
    let word = diva.config().machine.word_bytes.max(4) as usize;
    let bytes = (m * word) as u32;
    // One global variable per wire, owned by the processor simulating it.
    let proc_of_wire = wire_to_proc(&diva);
    let vars: Vec<VarHandle> = (0..p)
        .map(|w| {
            let mut keys = sort_keys(params.seed, w, m);
            keys.sort_unstable();
            diva.alloc(proc_of_wire[w], bytes, keys)
        })
        .collect();
    let vars = Arc::new(vars);
    let wire_of_proc = Arc::new(wire_of_proc);
    let schedule = Arc::new(per_wire_schedule(p));
    let include_compute = params.include_compute;
    let outcome = diva
        .run_prototype(move |ctx| {
            let wire = wire_of_proc[ctx.proc_id()];
            let mut mine: Vec<u64> = (*ctx.read::<Vec<u64>>(vars[wire])).clone();
            if include_compute {
                // Initial local sort: m log m comparisons (already sorted here,
                // but the real algorithm pays for it).
                ctx.compute_int_ops(
                    (mine.len() as u64) * (mine.len().max(2) as u64).ilog2() as u64,
                );
            }
            for &(partner, keep_low) in schedule[wire].iter() {
                // Read the partner's current keys, then wait until everybody has
                // read before overwriting our own variable.
                let other = ctx.read::<Vec<u64>>(vars[partner]);
                ctx.barrier();
                if include_compute {
                    ctx.compute_int_ops(merge_ops(mine.len()));
                }
                mine = merge_split(&mine, &other, keep_low);
                ctx.write(vars[wire], mine.clone());
                ctx.barrier();
            }
            // All merge&split steps are behind the last barrier: the wire
            // variables are dead, so each processor frees its own. Pure
            // bookkeeping — all simulated quantities are bit-identical to a
            // leaking run; only the variable-lifecycle statistics move.
            ctx.free(vars[wire]);
            (wire, mine)
        })
        .expect_completed();
    let mut keys_per_wire = vec![Vec::new(); p];
    for (wire, keys) in outcome.results {
        keys_per_wire[wire] = keys;
    }
    BitonicOutcome {
        report: outcome.report,
        keys_per_wire,
    }
}

/// State of the driven shared-variable bitonic program.
enum BtState {
    /// Read the own wire's keys.
    Start,
    /// Own keys arrived; account the initial sort and start the first step.
    AwaitOwn,
    /// Waiting for the partner's keys of the current step.
    AwaitPartner,
    /// Partner keys stashed; the pre-write barrier was issued.
    Barriered,
    /// Own variable rewritten; the post-write barrier was issued.
    Written,
    /// Post-write barrier passed; start the next step.
    BetweenRounds,
    /// The own (now dead) wire variable was freed after the last step.
    Freed,
    /// All steps done.
    Finish,
}

/// The event-driven twin of the [`run_shared_prototype`] closure.
struct BitonicProgram {
    wire: usize,
    var_own: VarHandle,
    vars: Arc<Vec<VarHandle>>,
    schedule: Arc<Vec<Vec<(usize, bool)>>>,
    include_compute: bool,
    step_idx: usize,
    mine: Vec<u64>,
    other: Option<Arc<Vec<u64>>>,
    state: BtState,
}

impl BitonicProgram {
    /// Issue the partner read of step `step_idx`, or the end of the program
    /// (freeing the own, now dead, wire variable first — the op-stream twin
    /// of the `ctx.free` in the threaded closure).
    fn next_round(&mut self) -> Op {
        match self.schedule[self.wire].get(self.step_idx) {
            Some(&(partner, _)) => {
                self.state = BtState::AwaitPartner;
                Op::Read(self.vars[partner])
            }
            None => {
                self.state = BtState::Freed;
                Op::Free(self.var_own)
            }
        }
    }
}

impl ProcProgram for BitonicProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            BtState::Start => {
                self.state = BtState::AwaitOwn;
                Op::Read(self.var_own)
            }
            BtState::AwaitOwn => {
                self.mine = (*ctx.take::<Vec<u64>>()).clone();
                if self.include_compute {
                    ctx.compute_int_ops(
                        (self.mine.len() as u64) * (self.mine.len().max(2) as u64).ilog2() as u64,
                    );
                }
                self.next_round()
            }
            BtState::AwaitPartner => {
                self.other = Some(ctx.take::<Vec<u64>>());
                self.state = BtState::Barriered;
                Op::Barrier
            }
            BtState::Barriered => {
                let other = self.other.take().expect("partner keys missing");
                let (_, keep_low) = self.schedule[self.wire][self.step_idx];
                if self.include_compute {
                    ctx.compute_int_ops(merge_ops(self.mine.len()));
                }
                self.mine = merge_split(&self.mine, &other, keep_low);
                self.state = BtState::Written;
                Op::Write(self.var_own, Arc::new(self.mine.clone()))
            }
            BtState::Written => {
                self.step_idx += 1;
                // The post-write barrier; the next round starts afterwards.
                self.state = BtState::BetweenRounds;
                Op::Barrier
            }
            BtState::BetweenRounds => self.next_round(),
            BtState::Freed => {
                self.state = BtState::Finish;
                Op::Done
            }
            BtState::Finish => Op::Done,
        }
    }
}

/// Run the bitonic sort through the DIVA interface under the event-driven
/// execution mode (bit-identical to [`run_shared_prototype`]).
pub fn run_shared_driven(mut diva: Diva, params: BitonicParams) -> BitonicOutcome {
    let p = diva.num_procs();
    let m = params.keys_per_proc;
    let wire_of_proc = invert(&wire_to_proc(&diva));
    let word = diva.config().machine.word_bytes.max(4) as usize;
    let bytes = (m * word) as u32;
    let proc_of_wire = wire_to_proc(&diva);
    let vars: Vec<VarHandle> = (0..p)
        .map(|w| {
            let mut keys = sort_keys(params.seed, w, m);
            keys.sort_unstable();
            diva.alloc(proc_of_wire[w], bytes, keys)
        })
        .collect();
    let vars = Arc::new(vars);
    let schedule = Arc::new(per_wire_schedule(p));
    let programs: Vec<BitonicProgram> = (0..p)
        .map(|proc| {
            let wire = wire_of_proc[proc];
            BitonicProgram {
                wire,
                var_own: vars[wire],
                vars: Arc::clone(&vars),
                schedule: Arc::clone(&schedule),
                include_compute: params.include_compute,
                step_idx: 0,
                mine: Vec::new(),
                other: None,
                state: BtState::Start,
            }
        })
        .collect();
    let outcome = diva.run_driven(programs).expect_completed();
    let mut keys_per_wire = vec![Vec::new(); p];
    for prog in outcome.results {
        keys_per_wire[prog.wire] = prog.mine;
    }
    BitonicOutcome {
        report: outcome.report,
        keys_per_wire,
    }
}

/// State of the driven hand-optimized bitonic program.
enum BtHoState {
    /// Send the own keys of the current step.
    SendMine,
    /// Send issued; receive the partner's keys.
    Sent,
    /// Waiting for the partner's keys.
    AwaitOther,
    /// Final barrier issued.
    Finish,
}

/// The event-driven twin of the [`run_hand_optimized_prototype`] closure.
struct BitonicHandOptProgram {
    wire: usize,
    proc_of_wire: Arc<Vec<usize>>,
    schedule: Arc<Vec<Vec<(usize, bool)>>>,
    include_compute: bool,
    bytes: u32,
    step_idx: usize,
    mine: Vec<u64>,
    state: BtHoState,
}

impl ProcProgram for BitonicHandOptProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        match self.state {
            BtHoState::SendMine => {
                if self.step_idx == 0 && self.include_compute {
                    ctx.compute_int_ops(
                        (self.mine.len() as u64) * (self.mine.len().max(2) as u64).ilog2() as u64,
                    );
                }
                match self.schedule[self.wire].get(self.step_idx) {
                    Some(&(partner, _)) => {
                        self.state = BtHoState::Sent;
                        Op::Send {
                            to: self.proc_of_wire[partner],
                            bytes: self.bytes,
                            tag: self.step_idx as u64,
                            value: Arc::new(self.mine.clone()),
                        }
                    }
                    None => {
                        self.state = BtHoState::Finish;
                        Op::Barrier
                    }
                }
            }
            BtHoState::Sent => {
                let (partner, _) = self.schedule[self.wire][self.step_idx];
                self.state = BtHoState::AwaitOther;
                Op::Recv {
                    from: self.proc_of_wire[partner],
                    tag: self.step_idx as u64,
                }
            }
            BtHoState::AwaitOther => {
                let other = ctx.take::<Vec<u64>>();
                let (_, keep_low) = self.schedule[self.wire][self.step_idx];
                if self.include_compute {
                    ctx.compute_int_ops(merge_ops(self.mine.len()));
                }
                self.mine = merge_split(&self.mine, &other, keep_low);
                self.step_idx += 1;
                self.state = BtHoState::SendMine;
                self.step(ctx)
            }
            BtHoState::Finish => Op::Done,
        }
    }
}

/// Run the hand-optimized bitonic sort under the event-driven execution mode
/// (bit-identical to [`run_hand_optimized_prototype`]).
pub fn run_hand_optimized_driven(diva: Diva, params: BitonicParams) -> BitonicOutcome {
    let p = diva.num_procs();
    let m = params.keys_per_proc;
    let wire_of_proc = invert(&wire_to_proc(&diva));
    let proc_of_wire = Arc::new(wire_to_proc(&diva));
    let word = diva.config().machine.word_bytes.max(4) as usize;
    let bytes = (m * word) as u32;
    let schedule = Arc::new(per_wire_schedule(p));
    let programs: Vec<BitonicHandOptProgram> = (0..p)
        .map(|proc| {
            let wire = wire_of_proc[proc];
            let mut mine = sort_keys(params.seed, wire, m);
            mine.sort_unstable();
            BitonicHandOptProgram {
                wire,
                proc_of_wire: Arc::clone(&proc_of_wire),
                schedule: Arc::clone(&schedule),
                include_compute: params.include_compute,
                bytes,
                step_idx: 0,
                mine,
                state: BtHoState::SendMine,
            }
        })
        .collect();
    let outcome = diva.run_driven(programs).expect_completed();
    let mut keys_per_wire = vec![Vec::new(); p];
    for prog in outcome.results {
        keys_per_wire[prog.wire] = prog.mine;
    }
    BitonicOutcome {
        report: outcome.report,
        keys_per_wire,
    }
}

/// Run the bitonic sort with the hand-optimized message-passing strategy.
pub fn run_hand_optimized_prototype(diva: Diva, params: BitonicParams) -> BitonicOutcome {
    let p = diva.num_procs();
    let m = params.keys_per_proc;
    let wire_of_proc = Arc::new(invert(&wire_to_proc(&diva)));
    let proc_of_wire = Arc::new(wire_to_proc(&diva));
    let word = diva.config().machine.word_bytes.max(4) as usize;
    let bytes = (m * word) as u32;
    let schedule = Arc::new(per_wire_schedule(p));
    let include_compute = params.include_compute;
    let seed = params.seed;
    let outcome = diva
        .run_prototype(move |ctx| {
            let wire = wire_of_proc[ctx.proc_id()];
            let mut mine = sort_keys(seed, wire, m);
            mine.sort_unstable();
            if include_compute {
                ctx.compute_int_ops(
                    (mine.len() as u64) * (mine.len().max(2) as u64).ilog2() as u64,
                );
            }
            for (step, &(partner, keep_low)) in schedule[wire].iter().enumerate() {
                let partner_proc = proc_of_wire[partner];
                ctx.send_msg(partner_proc, bytes, step as u64, mine.clone());
                let other = ctx.recv_msg::<Vec<u64>>(partner_proc, step as u64);
                if include_compute {
                    ctx.compute_int_ops(merge_ops(mine.len()));
                }
                mine = merge_split(&mine, &other, keep_low);
            }
            ctx.barrier();
            (wire, mine)
        })
        .expect_completed();
    let mut keys_per_wire = vec![Vec::new(); p];
    for (wire, keys) in outcome.results {
        keys_per_wire[wire] = keys;
    }
    BitonicOutcome {
        report: outcome.report,
        keys_per_wire,
    }
}

/// Check that the keys are globally sorted across wires (and locally within
/// every wire) and that they are a permutation of the generated input.
pub fn verify_sorted(out: &BitonicOutcome, params: &BitonicParams) -> Result<(), String> {
    let p = out.keys_per_wire.len();
    let m = params.keys_per_proc;
    let mut all: Vec<u64> = Vec::with_capacity(p * m);
    let mut prev_max: Option<u64> = None;
    for (wire, keys) in out.keys_per_wire.iter().enumerate() {
        if keys.len() != m {
            return Err(format!(
                "wire {wire} holds {} keys, expected {m}",
                keys.len()
            ));
        }
        if keys.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("wire {wire} is not locally sorted"));
        }
        if let (Some(pm), Some(&first)) = (prev_max, keys.first()) {
            if pm > first {
                return Err(format!(
                    "wire {wire} starts below the previous wire's maximum"
                ));
            }
        }
        prev_max = keys.last().copied();
        all.extend_from_slice(keys);
    }
    let mut expected: Vec<u64> = (0..p).flat_map(|w| sort_keys(params.seed, w, m)).collect();
    expected.sort_unstable();
    all.sort_unstable();
    if all != expected {
        return Err("output keys are not a permutation of the input keys".to_string());
    }
    Ok(())
}

/// Invert a permutation.
fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; perm.len()];
    for (i, &v) in perm.iter().enumerate() {
        inv[v] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_diva::{DivaConfig, StrategyKind};
    use dm_mesh::{Mesh, TreeShape};

    fn diva(side: usize, strategy: StrategyKind) -> Diva {
        Diva::new(DivaConfig::new(Mesh::square(side), strategy))
    }

    #[test]
    fn schedule_has_the_right_depth_and_width() {
        for p in [2usize, 4, 8, 16, 64] {
            let steps = bitonic_schedule(p);
            let logp = p.ilog2() as usize;
            assert_eq!(steps.len(), logp * (logp + 1) / 2);
            for step in &steps {
                assert_eq!(step.len(), p / 2);
            }
        }
    }

    #[test]
    fn schedule_matches_figure_5_for_eight_wires() {
        // Figure 5 of the paper: 8 wires, 6 steps; the first step compares
        // neighbouring wires with alternating directions.
        let steps = bitonic_schedule(8);
        assert_eq!(steps.len(), 6);
        assert_eq!(
            steps[0],
            vec![(0, 1, true), (2, 3, false), (4, 5, true), (6, 7, false)]
        );
        // The final merging phase compares with stride 4, 2, 1, all ascending.
        assert!(steps[3].iter().all(|&(a, b, asc)| asc && b == a + 4));
        assert!(steps[5].iter().all(|&(a, b, asc)| asc && b == a + 1));
    }

    #[test]
    fn merge_split_keeps_the_right_halves() {
        let a = vec![1, 4, 6, 9];
        let b = vec![2, 3, 7, 8];
        assert_eq!(merge_split(&a, &b, true), vec![1, 2, 3, 4]);
        assert_eq!(merge_split(&a, &b, false), vec![6, 7, 8, 9]);
    }

    #[test]
    fn shared_version_sorts_correctly() {
        for strategy in [
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
            StrategyKind::FixedHome,
        ] {
            let params = BitonicParams::new(32);
            let out = run_shared_prototype(diva(4, strategy), params);
            verify_sorted(&out, &params).unwrap();
        }
    }

    #[test]
    fn hand_optimized_version_sorts_correctly() {
        let params = BitonicParams::new(64);
        let out = run_hand_optimized_prototype(diva(4, StrategyKind::FixedHome), params);
        verify_sorted(&out, &params).unwrap();
    }

    #[test]
    fn shared_version_sorts_on_a_non_trivial_mesh() {
        let params = BitonicParams::new(16);
        let out =
            run_shared_prototype(diva(8, StrategyKind::AccessTree(TreeShape::quad())), params);
        verify_sorted(&out, &params).unwrap();
    }

    #[test]
    fn driven_and_threaded_shared_runs_are_bit_identical() {
        for strategy in [
            StrategyKind::AccessTree(TreeShape::lk(2, 4)),
            StrategyKind::FixedHome,
        ] {
            let params = BitonicParams::new(32);
            let threaded = run_shared_prototype(diva(4, strategy), params);
            let driven = run_shared_driven(diva(4, strategy), params);
            assert_eq!(threaded.keys_per_wire, driven.keys_per_wire, "{strategy:?}");
            assert_eq!(threaded.report, driven.report, "{strategy:?}");
        }
    }

    #[test]
    fn driven_and_threaded_hand_optimized_runs_are_bit_identical() {
        let params = BitonicParams::new(32);
        let threaded = run_hand_optimized_prototype(diva(4, StrategyKind::FixedHome), params);
        let driven = run_hand_optimized_driven(diva(4, StrategyKind::FixedHome), params);
        assert_eq!(threaded.keys_per_wire, driven.keys_per_wire);
        assert_eq!(threaded.report, driven.report);
    }

    #[test]
    fn access_tree_congestion_stays_below_fixed_home() {
        let params = BitonicParams::new(256);
        let at = run_shared_prototype(
            diva(4, StrategyKind::AccessTree(TreeShape::lk(2, 4))),
            params,
        );
        let fh = run_shared_prototype(diva(4, StrategyKind::FixedHome), params);
        assert!(
            at.report.congestion_bytes() <= fh.report.congestion_bytes(),
            "access tree {} vs fixed home {}",
            at.report.congestion_bytes(),
            fh.report.congestion_bytes()
        );
    }

    #[test]
    fn verify_rejects_unsorted_output() {
        let params = BitonicParams::new(8);
        let mut out = run_hand_optimized_prototype(diva(2, StrategyKind::FixedHome), params);
        out.keys_per_wire[0][0] = u64::MAX; // corrupt
        assert!(verify_sorted(&out, &params).is_err());
    }
}
