//! Uniform-random shared-variable workload.
//!
//! The canonical synthetic workload of the data-management literature (and
//! of this repository's protocol microbenches): every processor performs a
//! fixed number of accesses, each to a variable drawn uniformly at random
//! from a shared pool, reading or writing with a configurable mix. Unlike
//! the structured applications (matrix square, bitonic, Barnes-Hut) it has
//! no exploitable locality, which makes it the cleanest probe of a
//! topology's raw congestion behaviour — the `fig12` cross-topology sweep
//! runs it next to Barnes-Hut on the mesh, torus, hypercube and fat tree.
//!
//! The workload is topology-agnostic by construction (it never looks at
//! coordinates) and runs on the event-driven backend only.

use dm_diva::{Diva, Op, Partitioned, ProcProgram, RunOutcome, RunReport, StepCtx, VarHandle};
use dm_rng::ChaCha8Rng;
use std::sync::Arc;

/// Parameters of the uniform-random access workload.
#[derive(Debug, Clone, Copy)]
pub struct UniformParams {
    /// Number of shared variables in the pool (owners assigned round-robin).
    pub n_vars: usize,
    /// Accesses performed by every processor.
    pub ops_per_proc: usize,
    /// Percentage of accesses that are writes (`0..=100`).
    pub write_percent: u32,
    /// Size of every variable in bytes (determines message sizes).
    pub var_bytes: u32,
    /// Seed of the per-processor access streams.
    pub seed: u64,
}

impl UniformParams {
    /// A medium-contention default: a pool of `4·nprocs` variables, 64
    /// accesses per processor, 30% writes, 256-byte variables.
    pub fn new(nprocs: usize) -> Self {
        UniformParams {
            n_vars: 4 * nprocs,
            ops_per_proc: 64,
            write_percent: 30,
            var_bytes: 256,
            seed: 0x0FA7_500D,
        }
    }
}

/// Result of a uniform-random workload run.
pub struct UniformOutcome {
    /// Timing, congestion and protocol statistics.
    pub report: RunReport,
    /// Order-independent fold over every value read — equal across repeated
    /// runs of the same configuration (determinism check). In a degraded
    /// run this is the *partial* checksum over surviving processors.
    pub checksum: u64,
    /// Processors lost to node failures (empty unless the fault plan failed
    /// nodes before their programs finished); the run is degraded.
    pub procs_lost: Vec<usize>,
}

/// Execution state of a [`UniformProgram`].
enum UniformState {
    /// Issuing accesses.
    Running,
    /// All accesses issued; waiting at the closing barrier.
    AtBarrier,
    /// Barrier passed.
    Finished,
}

/// One processor of the uniform-random workload: an explicit state machine
/// for the event-driven backend.
struct UniformProgram {
    vars: Arc<Vec<VarHandle>>,
    rng: ChaCha8Rng,
    ops_left: usize,
    write_percent: u32,
    /// The previous op was a read whose value arrives before this step.
    pending_read: bool,
    checksum: u64,
    state: UniformState,
}

impl UniformProgram {
    fn new(proc: usize, params: &UniformParams, vars: Arc<Vec<VarHandle>>) -> Self {
        UniformProgram {
            vars,
            rng: ChaCha8Rng::seed_from_u64(
                params.seed ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            ops_left: params.ops_per_proc,
            write_percent: params.write_percent,
            pending_read: false,
            checksum: 0,
            state: UniformState::Running,
        }
    }
}

impl ProcProgram for UniformProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        if self.pending_read {
            self.pending_read = false;
            self.checksum = self
                .checksum
                .rotate_left(7)
                .wrapping_add(*ctx.take::<u64>());
        }
        match self.state {
            UniformState::Running => {
                if self.ops_left == 0 {
                    self.state = UniformState::AtBarrier;
                    return Op::Barrier;
                }
                self.ops_left -= 1;
                let var = self.vars[self.rng.gen_range(0..self.vars.len() as u32) as usize];
                if self.rng.gen_range(0..100u32) < self.write_percent {
                    Op::Write(var, Arc::new(self.rng.next_u64()))
                } else {
                    self.pending_read = true;
                    Op::Read(var)
                }
            }
            UniformState::AtBarrier => {
                self.state = UniformState::Finished;
                Op::Done
            }
            UniformState::Finished => Op::Done,
        }
    }
}

/// Run the uniform-random workload on the event-driven backend: allocate the
/// variable pool (round-robin owners, deterministic initial values), run one
/// access stream per processor, close with a barrier.
pub fn run_uniform_driven(diva: Diva, params: UniformParams) -> UniformOutcome {
    match try_run_uniform_driven(diva, params) {
        Ok(out) => out,
        Err(p) => panic!(
            "uniform workload partitioned at {} ns (node {} unreachable)",
            p.at, p.unreachable
        ),
    }
}

/// Like [`run_uniform_driven`], but a fault plan that disconnects the
/// network yields `Err` (with the partial report) instead of panicking —
/// the graceful-degradation sweep (`fig13`) reports such points as
/// partitioned rows. A plan that fails nodes degrades the run instead:
/// `Ok` with [`UniformOutcome::procs_lost`] set and the checksum folded
/// over the surviving processors only (lost processors contribute an empty
/// slot, deterministically in every backend).
// The Err carries the partial report by value; these run once per
// simulation, so the lint's by-value-return cost is irrelevant here.
#[allow(clippy::result_large_err)]
pub fn try_run_uniform_driven(
    mut diva: Diva,
    params: UniformParams,
) -> Result<UniformOutcome, Partitioned> {
    assert!(
        params.n_vars > 0,
        "the workload needs at least one variable"
    );
    assert!(params.write_percent <= 100);
    let nprocs = diva.num_procs();
    let vars: Vec<VarHandle> = (0..params.n_vars)
        .map(|i| {
            diva.alloc(
                i % nprocs,
                params.var_bytes,
                (i as u64).wrapping_mul(0xD134_57E6) ^ params.seed,
            )
        })
        .collect();
    let vars = Arc::new(vars);
    let programs: Vec<UniformProgram> = (0..nprocs)
        .map(|p| UniformProgram::new(p, &params, Arc::clone(&vars)))
        .collect();
    let (report, results, procs_lost) = match diva.run_driven(programs) {
        RunOutcome::Completed(done) => {
            let results = done.results.into_iter().map(Some).collect::<Vec<_>>();
            (done.report, results, Vec::new())
        }
        RunOutcome::Degraded(d) => {
            let lost = d.lost_procs.iter().map(|n| n.index()).collect();
            (d.report, d.results, lost)
        }
        RunOutcome::Partitioned(p) => return Err(p),
    };
    // Lost processors contribute an empty slot so the partial checksum
    // stays position-dependent (and bit-identical across backends).
    let checksum = results.iter().fold(0u64, |acc, p| match p {
        Some(p) => acc.rotate_left(13) ^ p.checksum,
        None => acc.rotate_left(13),
    });
    Ok(UniformOutcome {
        report,
        checksum,
        procs_lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_diva::{DivaConfig, StrategyKind};
    use dm_mesh::{AnyTopology, FatTree, Hypercube, Mesh, Torus, TreeShape};

    fn run(topo: AnyTopology, strategy: StrategyKind) -> UniformOutcome {
        let nprocs = topo.nodes();
        let diva = Diva::new(DivaConfig::on(topo, strategy));
        let params = UniformParams {
            ops_per_proc: 16,
            ..UniformParams::new(nprocs)
        };
        run_uniform_driven(diva, params)
    }

    fn topologies() -> Vec<AnyTopology> {
        vec![
            Mesh::square(4).into(),
            Torus::square(4).into(),
            Hypercube::new(4).into(),
            FatTree::new(16).into(),
        ]
    }

    #[test]
    fn runs_on_every_topology_under_both_strategies() {
        for topo in topologies() {
            for strategy in [
                StrategyKind::AccessTree(TreeShape::quad()),
                StrategyKind::FixedHome,
            ] {
                let name = topo.name();
                let out = run(topo.clone(), strategy);
                assert!(out.report.total_time > 0, "{name} {strategy:?}");
                assert!(out.report.congestion_msgs() > 0, "{name} {strategy:?}");
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        for topo in topologies() {
            let a = run(topo.clone(), StrategyKind::AccessTree(TreeShape::binary()));
            let b = run(topo.clone(), StrategyKind::AccessTree(TreeShape::binary()));
            assert_eq!(a.checksum, b.checksum, "{}", topo.name());
            assert_eq!(a.report, b.report, "{}", topo.name());
        }
    }

    #[test]
    fn topology_changes_the_congestion_picture() {
        // Same seed and mix on two topologies of equal node count: the
        // wraparound links must change where (and how much) traffic
        // concentrates.
        let mesh = run(
            Mesh::square(4).into(),
            StrategyKind::AccessTree(TreeShape::quad()),
        );
        let torus = run(
            Torus::square(4).into(),
            StrategyKind::AccessTree(TreeShape::quad()),
        );
        assert_ne!(
            mesh.report.congestion_bytes(),
            torus.report.congestion_bytes(),
            "wraparound links must change the congestion picture"
        );
    }
}
