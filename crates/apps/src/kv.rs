//! A trace-driven KV/cache serving tier over DIVA global variables.
//!
//! The paper proves the access-tree strategy competitive for *arbitrary*
//! access patterns, but the structured applications (matrix square, bitonic,
//! Barnes-Hut) and the uniform-random microbench all lack the skewed,
//! time-varying traffic a production replication tier actually serves. This
//! module closes that gap: every client processor runs a request stream
//! against a shared key space with
//!
//! * **Zipf-skewed popularity** ([`KeyDist::Zipf`]) — deterministic
//!   inverse-CDF sampling off `dm-rng` ([`crate::workload::ZipfSampler`]);
//! * **migrating hotspots** ([`KeyDist::Hotspot`]) — a popular window that
//!   jumps across the key space at percent-of-op-stream boundaries
//!   ([`crate::workload::HotspotSchedule`], the `--strike-at` timing convention);
//! * a configurable **read/write mix**; and
//! * **client churn** ([`ChurnParams`]) — clients arrive late, depart and
//!   re-arrive on a seeded per-client schedule ([`crate::workload::churn_gaps`]).
//!   A departed client is simply *silent* (its processor idles), which is
//!   the application-level half of churn; node-level churn composes
//!   orthogonally through the existing [`FaultPlan`](dm_diva::FaultPlan)
//!   machinery rather than duplicating it (the `fig14` sweep's churn axis
//!   does both).
//!
//! Serving-side metrics (hit ratio, bytes moved, response-time histogram,
//! replication-degree high-water) are tallied centrally by the runtime — see
//! [`dm_diva::ServingReport`] — so both strategies and all backends report
//! them bit-identically.
//!
//! Like the other applications, the workload provides the event-driven
//! engine ([`run_kv_driven`]) used by every experiment plus a threaded
//! prototype twin ([`run_kv_prototype`]) kept as the reference side of a
//! parity test.

use crate::workload::{churn_gaps, HotspotSchedule, ZipfSampler};
use dm_diva::{Diva, Op, Partitioned, ProcProgram, RunOutcome, RunReport, StepCtx, VarHandle};
use dm_rng::ChaCha8Rng;
use std::sync::Arc;

/// The popularity distribution of the key space.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key equally popular.
    Uniform,
    /// Zipf-skewed popularity with the given exponent (key 0 hottest).
    Zipf(f64),
    /// A migrating hotspot: `hot_permille`/1000 of the traffic aims at a
    /// window of `n_keys/16` keys whose position jumps at each listed
    /// percent of the op stream (the `--strike-at` timing convention).
    Hotspot {
        /// Migration points in percent of the op stream, each `< 100`.
        migrate_at: Vec<u64>,
        /// Per-mille of the traffic aimed at the hot window.
        hot_permille: u32,
    },
}

impl KeyDist {
    /// A short stable label for tables and JSON rows.
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipf(s) => format!("zipf-{s}"),
            KeyDist::Hotspot { .. } => "hotspot".to_string(),
        }
    }
}

/// Client-churn parameters: each client's op stream is cut into `sessions`
/// seeded sessions separated by idle gaps of roughly `idle_us` microseconds
/// (plus a staggered seeded arrival delay before its first op).
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Sessions per client (1 = a single arrival delay, no mid-run churn).
    pub sessions: usize,
    /// Nominal idle time between sessions, in whole microseconds.
    pub idle_us: u64,
}

/// Parameters of the KV serving workload.
#[derive(Debug, Clone)]
pub struct KvParams {
    /// Number of keys (shared variables; owners assigned round-robin).
    pub n_keys: usize,
    /// Requests issued by every client processor.
    pub ops_per_client: usize,
    /// Percentage of requests that are writes (`0..=100`).
    pub write_percent: u32,
    /// Size of every value in bytes (determines data-message sizes).
    pub val_bytes: u32,
    /// Seed of the per-client request streams (and the hotspot placement).
    pub seed: u64,
    /// Popularity distribution of the key space.
    pub dist: KeyDist,
    /// Client churn; `None` keeps every client active for the whole run.
    pub churn: Option<ChurnParams>,
}

impl KvParams {
    /// A read-mostly serving default: `8·nprocs` keys, 64 requests per
    /// client, 10% writes, 256-byte values, uniform popularity, no churn.
    pub fn new(nprocs: usize) -> Self {
        KvParams {
            n_keys: 8 * nprocs,
            ops_per_client: 64,
            write_percent: 10,
            val_bytes: 256,
            seed: 0x0C_AFFE,
            dist: KeyDist::Uniform,
            churn: None,
        }
    }
}

/// Result of a KV workload run.
pub struct KvOutcome {
    /// Timing, congestion, protocol and serving statistics.
    pub report: RunReport,
    /// Order-dependent fold over every value read — equal across repeated
    /// runs and backends (determinism witness). Partial over survivors in a
    /// degraded run.
    pub checksum: u64,
    /// Processors lost to node failures (empty without a fault plan).
    pub procs_lost: Vec<usize>,
}

/// The per-client key picker, resolved once per run.
#[derive(Clone)]
enum Picker {
    Uniform { n_keys: usize },
    Zipf(Arc<ZipfSampler>),
    Hotspot(Arc<HotspotSchedule>),
}

impl Picker {
    fn resolve(params: &KvParams) -> Picker {
        match &params.dist {
            KeyDist::Uniform => Picker::Uniform {
                n_keys: params.n_keys,
            },
            KeyDist::Zipf(s) => Picker::Zipf(Arc::new(ZipfSampler::new(params.n_keys, *s))),
            KeyDist::Hotspot {
                migrate_at,
                hot_permille,
            } => Picker::Hotspot(Arc::new(HotspotSchedule::new(
                params.n_keys,
                migrate_at,
                *hot_permille,
                params.seed,
            ))),
        }
    }

    /// Draw the key of op `op_idx` out of `total_ops`. The rng draw count
    /// depends only on the distribution, never on the backend, so the
    /// driven and prototype engines consume identical streams.
    fn pick(&self, rng: &mut ChaCha8Rng, op_idx: usize, total_ops: usize) -> usize {
        match self {
            Picker::Uniform { n_keys } => rng.gen_range(0..*n_keys),
            Picker::Zipf(z) => z.sample(rng),
            Picker::Hotspot(h) => h.key_for(rng, op_idx, total_ops),
        }
    }
}

/// Execution state of a [`KvProgram`].
enum KvState {
    /// Issuing requests.
    Running,
    /// All requests issued; waiting at the closing barrier.
    AtBarrier,
    /// Barrier passed.
    Finished,
}

/// One client of the KV workload: an explicit state machine for the
/// event-driven backend.
struct KvProgram {
    keys: Arc<Vec<VarHandle>>,
    picker: Picker,
    rng: ChaCha8Rng,
    op_idx: usize,
    total_ops: usize,
    write_percent: u32,
    /// Sorted churn gaps `(op index, idle µs)`; `next_gap` indexes the first
    /// not yet slept.
    gaps: Vec<(usize, u64)>,
    next_gap: usize,
    /// The previous op was a read whose value arrives before this step.
    pending_read: bool,
    checksum: u64,
    state: KvState,
}

impl KvProgram {
    fn new(proc: usize, params: &KvParams, keys: Arc<Vec<VarHandle>>, picker: Picker) -> Self {
        KvProgram {
            keys,
            picker,
            rng: client_rng(params.seed, proc),
            op_idx: 0,
            total_ops: params.ops_per_client,
            write_percent: params.write_percent,
            gaps: client_gaps(params, proc),
            next_gap: 0,
            pending_read: false,
            checksum: 0,
            state: KvState::Running,
        }
    }
}

impl ProcProgram for KvProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Op {
        if self.pending_read {
            self.pending_read = false;
            self.checksum = self
                .checksum
                .rotate_left(7)
                .wrapping_add(*ctx.take::<u64>());
        }
        match self.state {
            KvState::Running => {
                // Sleep any churn gap scheduled before the next request; a
                // departed client is silent, its processor merely idles.
                if let Some(&(at, idle_us)) = self.gaps.get(self.next_gap) {
                    if at == self.op_idx {
                        self.next_gap += 1;
                        return Op::Compute {
                            ns: idle_us * 1_000,
                        };
                    }
                }
                if self.op_idx == self.total_ops {
                    self.state = KvState::AtBarrier;
                    return Op::Barrier;
                }
                let key = self.picker.pick(&mut self.rng, self.op_idx, self.total_ops);
                self.op_idx += 1;
                let var = self.keys[key];
                if self.rng.gen_range(0..100u32) < self.write_percent {
                    Op::Write(var, Arc::new(self.rng.next_u64()))
                } else {
                    self.pending_read = true;
                    Op::Read(var)
                }
            }
            KvState::AtBarrier => {
                self.state = KvState::Finished;
                Op::Done
            }
            KvState::Finished => Op::Done,
        }
    }
}

/// The per-client request rng (same derivation as the other workloads).
fn client_rng(seed: u64, proc: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The per-client churn gap schedule (empty without churn).
fn client_gaps(params: &KvParams, proc: usize) -> Vec<(usize, u64)> {
    match params.churn {
        Some(c) => churn_gaps(
            params.seed,
            proc,
            params.ops_per_client,
            c.sessions,
            c.idle_us,
        ),
        None => Vec::new(),
    }
}

/// Allocate the key space: round-robin owners, deterministic initial values.
fn alloc_keys(diva: &mut Diva, params: &KvParams) -> Arc<Vec<VarHandle>> {
    let nprocs = diva.num_procs();
    let keys: Vec<VarHandle> = (0..params.n_keys)
        .map(|i| {
            diva.alloc(
                i % nprocs,
                params.val_bytes,
                (i as u64).wrapping_mul(0x9D8F_3B1D) ^ params.seed,
            )
        })
        .collect();
    Arc::new(keys)
}

/// Run the KV workload on the event-driven backend. Panics if a fault plan
/// partitions the network; see [`try_run_kv_driven`] for the fallible form.
pub fn run_kv_driven(diva: Diva, params: KvParams) -> KvOutcome {
    match try_run_kv_driven(diva, params) {
        Ok(out) => out,
        Err(p) => panic!(
            "KV workload partitioned at {} ns (node {} unreachable)",
            p.at, p.unreachable
        ),
    }
}

/// Like [`run_kv_driven`], but a fault plan that disconnects the network
/// yields `Err` (with the partial report) instead of panicking. A plan that
/// fails nodes degrades the run instead: `Ok` with
/// [`KvOutcome::procs_lost`] set and the checksum folded over the surviving
/// clients only (lost clients contribute an empty slot, deterministically in
/// every backend).
// The Err carries the partial report by value; these run once per
// simulation, so the lint's by-value-return cost is irrelevant here.
#[allow(clippy::result_large_err)]
pub fn try_run_kv_driven(mut diva: Diva, params: KvParams) -> Result<KvOutcome, Partitioned> {
    validate(&params);
    let nprocs = diva.num_procs();
    let keys = alloc_keys(&mut diva, &params);
    let picker = Picker::resolve(&params);
    let programs: Vec<KvProgram> = (0..nprocs)
        .map(|p| KvProgram::new(p, &params, Arc::clone(&keys), picker.clone()))
        .collect();
    let (report, results, procs_lost) = match diva.run_driven(programs) {
        RunOutcome::Completed(done) => {
            let results = done.results.into_iter().map(Some).collect::<Vec<_>>();
            (done.report, results, Vec::new())
        }
        RunOutcome::Degraded(d) => {
            let lost = d.lost_procs.iter().map(|n| n.index()).collect();
            (d.report, d.results, lost)
        }
        RunOutcome::Partitioned(p) => return Err(p),
    };
    // Lost clients contribute an empty slot so the partial checksum stays
    // position-dependent (and bit-identical across backends).
    let checksum = results.iter().fold(0u64, |acc, p| match p {
        Some(p) => acc.rotate_left(13) ^ p.checksum,
        None => acc.rotate_left(13),
    });
    Ok(KvOutcome {
        report,
        checksum,
        procs_lost,
    })
}

/// The threaded prototype twin of [`run_kv_driven`]: ordinary control flow
/// over [`ProcCtx`](dm_diva::ProcCtx), operation-equivalent to the driven
/// state machine (same rng stream, same gap schedule, same fold), kept as
/// the reference side of the backend parity test. Only suitable for small
/// meshes — every client costs an OS thread.
pub fn run_kv_prototype(mut diva: Diva, params: KvParams) -> KvOutcome {
    validate(&params);
    let keys = alloc_keys(&mut diva, &params);
    let picker = Picker::resolve(&params);
    let outcome = diva.run_prototype(move |ctx| {
        let proc = ctx.proc_id();
        let mut rng = client_rng(params.seed, proc);
        let gaps = client_gaps(&params, proc);
        let mut next_gap = 0;
        let mut checksum = 0u64;
        for op_idx in 0..params.ops_per_client {
            while next_gap < gaps.len() && gaps[next_gap].0 == op_idx {
                // Whole microseconds convert losslessly, matching the
                // driven engine's Op::Compute nanosecond count exactly.
                ctx.compute(gaps[next_gap].1 as f64);
                next_gap += 1;
            }
            let key = picker.pick(&mut rng, op_idx, params.ops_per_client);
            let var = keys[key];
            if rng.gen_range(0..100u32) < params.write_percent {
                ctx.write(var, rng.next_u64());
            } else {
                checksum = checksum.rotate_left(7).wrapping_add(*ctx.read::<u64>(var));
            }
        }
        ctx.barrier();
        checksum
    });
    let done = outcome.expect_completed();
    let checksum = done
        .results
        .iter()
        .fold(0u64, |acc, c| acc.rotate_left(13) ^ c);
    KvOutcome {
        report: done.report,
        checksum,
        procs_lost: Vec::new(),
    }
}

fn validate(params: &KvParams) {
    assert!(params.n_keys > 0, "the KV workload needs at least one key");
    assert!(params.write_percent <= 100);
    if let Some(c) = &params.churn {
        assert!(c.sessions > 0 && c.idle_us > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_diva::{DivaConfig, FaultPlan, StrategyKind};
    use dm_mesh::{AnyTopology, FatTree, Hypercube, Mesh, Torus, TreeShape};

    fn params(nprocs: usize, dist: KeyDist, churn: Option<ChurnParams>) -> KvParams {
        KvParams {
            ops_per_client: 24,
            dist,
            churn,
            ..KvParams::new(nprocs)
        }
    }

    fn run(topo: AnyTopology, strategy: StrategyKind, dist: KeyDist) -> KvOutcome {
        let nprocs = topo.nodes();
        let diva = Diva::new(DivaConfig::on(topo, strategy));
        run_kv_driven(diva, params(nprocs, dist, None))
    }

    fn dists() -> Vec<KeyDist> {
        vec![
            KeyDist::Uniform,
            KeyDist::Zipf(0.9),
            KeyDist::Zipf(1.2),
            KeyDist::Hotspot {
                migrate_at: vec![25, 50, 75],
                hot_permille: 900,
            },
        ]
    }

    #[test]
    fn runs_on_every_topology_under_both_strategies() {
        for topo in [
            AnyTopology::from(Mesh::square(4)),
            Torus::square(4).into(),
            Hypercube::new(4).into(),
            FatTree::new(16).into(),
        ] {
            for strategy in [
                StrategyKind::AccessTree(TreeShape::quad()),
                StrategyKind::FixedHome,
            ] {
                let name = topo.name();
                let out = run(topo.clone(), strategy, KeyDist::Zipf(0.9));
                assert!(out.report.total_time > 0, "{name} {strategy:?}");
                let s = &out.report.serving;
                assert_eq!(s.requests, 16 * 24, "{name} {strategy:?}");
                // Every request of a completed run got a response.
                assert_eq!(s.responses(), s.requests, "{name} {strategy:?}");
                assert!(s.bytes_moved > 0, "{name} {strategy:?}");
                assert!(s.replication_high_water >= 1, "{name} {strategy:?}");
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical_for_every_distribution() {
        for dist in dists() {
            let a = run(
                Mesh::square(4).into(),
                StrategyKind::AccessTree(TreeShape::quad()),
                dist.clone(),
            );
            let b = run(
                Mesh::square(4).into(),
                StrategyKind::AccessTree(TreeShape::quad()),
                dist.clone(),
            );
            assert_eq!(a.checksum, b.checksum, "{}", dist.label());
            assert_eq!(a.report, b.report, "{}", dist.label());
        }
    }

    #[test]
    fn skew_raises_the_local_hit_ratio_under_caching() {
        // Zipf-1.2 concentrates reads on a few hot keys; the access-tree
        // strategy replicates them towards the readers, so the local-hit
        // ratio must beat the uniform workload's.
        let uniform = run(
            Mesh::square(4).into(),
            StrategyKind::AccessTree(TreeShape::quad()),
            KeyDist::Uniform,
        );
        let zipf = run(
            Mesh::square(4).into(),
            StrategyKind::AccessTree(TreeShape::quad()),
            KeyDist::Zipf(1.2),
        );
        assert!(
            zipf.report.serving.hit_ratio() > uniform.report.serving.hit_ratio(),
            "zipf {} <= uniform {}",
            zipf.report.serving.hit_ratio(),
            uniform.report.serving.hit_ratio()
        );
    }

    #[test]
    fn churn_stretches_the_run_without_changing_the_request_count() {
        let nprocs = 16;
        let steady = run_kv_driven(
            Diva::new(DivaConfig::on(
                Mesh::square(4),
                StrategyKind::AccessTree(TreeShape::quad()),
            )),
            params(nprocs, KeyDist::Uniform, None),
        );
        let churned = run_kv_driven(
            Diva::new(DivaConfig::on(
                Mesh::square(4),
                StrategyKind::AccessTree(TreeShape::quad()),
            )),
            params(
                nprocs,
                KeyDist::Uniform,
                Some(ChurnParams {
                    sessions: 3,
                    idle_us: 2_000,
                }),
            ),
        );
        assert_eq!(
            steady.report.serving.requests,
            churned.report.serving.requests
        );
        assert!(
            churned.report.total_time > steady.report.total_time,
            "idle sessions must stretch the run"
        );
        // Deterministic under repetition, like everything else.
        let again = run_kv_driven(
            Diva::new(DivaConfig::on(
                Mesh::square(4),
                StrategyKind::AccessTree(TreeShape::quad()),
            )),
            params(
                nprocs,
                KeyDist::Uniform,
                Some(ChurnParams {
                    sessions: 3,
                    idle_us: 2_000,
                }),
            ),
        );
        assert_eq!(churned.report, again.report);
        assert_eq!(churned.checksum, again.checksum);
    }

    #[test]
    fn driven_and_prototype_backends_are_bit_identical() {
        // The full parity matrix (distributions × churn) on a small mesh:
        // the threaded prototype is operation-equivalent by construction,
        // so reports and checksums must match bit for bit.
        for dist in dists() {
            for churn in [
                None,
                Some(ChurnParams {
                    sessions: 2,
                    idle_us: 1_500,
                }),
            ] {
                let p = params(16, dist.clone(), churn);
                let driven = run_kv_driven(
                    Diva::new(DivaConfig::on(
                        Mesh::square(4),
                        StrategyKind::AccessTree(TreeShape::quad()),
                    )),
                    p.clone(),
                );
                let proto = run_kv_prototype(
                    Diva::new(DivaConfig::on(
                        Mesh::square(4),
                        StrategyKind::AccessTree(TreeShape::quad()),
                    )),
                    p,
                );
                assert_eq!(driven.checksum, proto.checksum, "{}", dist.label());
                assert_eq!(driven.report, proto.report, "{}", dist.label());
            }
        }
    }

    #[test]
    fn app_churn_composes_with_node_faults() {
        // Client churn (app-level) and a transient link-degradation window
        // (PR 9 fault machinery) in one run: completes, stays deterministic,
        // and tallies both the serving metrics and the fault edges.
        let mk = || {
            let cfg = DivaConfig::on(Mesh::square(4), StrategyKind::AccessTree(TreeShape::quad()))
                .with_fault_plan(FaultPlan::new(5).degrade_links_for(0.25, 0.25, 50_000, 400_000));
            run_kv_driven(
                Diva::new(cfg),
                params(
                    16,
                    KeyDist::Zipf(0.9),
                    Some(ChurnParams {
                        sessions: 2,
                        idle_us: 1_000,
                    }),
                ),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report, b.report);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.procs_lost.is_empty());
        assert_eq!(a.report.faults.links_degraded, a.report.faults.links_healed);
        assert!(a.report.faults.links_degraded > 0);
        assert!(a.report.serving.requests > 0);
    }
}
