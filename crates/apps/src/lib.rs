//! # dm-apps — the benchmark applications of the DIVA evaluation
//!
//! The three applications Section 3 of the paper uses to evaluate the
//! access-tree strategy, each implemented on top of the [`dm_diva`] library:
//!
//! * [`matmul`] — matrix multiplication (matrix square) with the staggered
//!   read schedule of the paper and a hand-optimized message-passing baseline
//!   that achieves minimal congestion (Figures 3 and 4).
//! * [`bitonic`] — bitonic sorting with merge&split steps on the
//!   decomposition-tree wire numbering, plus its message-passing baseline
//!   (Figures 6 and 7).
//! * [`barnes_hut`] — the SPLASH-2 Barnes-Hut N-body simulation adapted to
//!   DIVA: a shared octree rebuilt every step under per-cell locks,
//!   centre-of-mass pass, costzones partitioning, force computation and
//!   integration (Figures 8–11).
//! * [`octree`] — arena-allocated octrees: the packed child encoding shared
//!   by the simulated Barnes-Hut cells and the sequential reference tree.
//! * [`uniform`] — the uniform-random shared-variable workload: the
//!   locality-free probe the `fig12` cross-topology sweep runs next to
//!   Barnes-Hut on the mesh, torus, hypercube and fat tree.
//! * [`kv`] — the trace-driven KV/cache serving tier: Zipf-skewed and
//!   migrating-hotspot request streams with configurable read/write mix and
//!   seeded client churn, the workload of the `fig14` serving sweep.
//! * [`workload`] — deterministic input generators (matrix blocks, sort keys,
//!   Plummer bodies, Zipf/hotspot/churn request schedules).
//!
//! Every application comes with a sequential reference implementation used by
//! the test suite to verify that the parallel runs compute correct results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes_hut;
pub mod bitonic;
pub mod kv;
pub mod matmul;
pub mod octree;
pub mod uniform;
pub mod workload;

pub use workload::Body;
