//! Deterministic workload generators shared by the applications and the
//! experiment harness.

use dm_rng::ChaCha8Rng;

/// The deterministic initial matrix block for block row `i`, block column `j`
/// with side length `side`. Entries are small so that repeated squaring stays
/// well inside `i64` for the block sizes of the paper.
pub fn block_matrix(i: usize, j: usize, side: usize) -> Vec<i64> {
    let mut block = Vec::with_capacity(side * side);
    for r in 0..side {
        for c in 0..side {
            let v = (i * 31 + j * 17 + r * 7 + c * 3) % 5;
            block.push(v as i64);
        }
    }
    block
}

/// Deterministic pseudo-random sort keys for the bitonic-sorting experiment:
/// `m` keys for the processor simulating wire `wire`.
pub fn sort_keys(seed: u64, wire: usize, m: usize) -> Vec<u64> {
    let mut rng =
        ChaCha8Rng::seed_from_u64(seed ^ (wire as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..m).map(|_| rng.next_u64()).collect()
}

/// A body of the N-body simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
    /// Work counter: interactions computed for this body in the previous
    /// force-computation phase (used by the costzones partitioning).
    pub work: u64,
}

/// Generate `n` bodies following the Plummer model, the standard initial
/// distribution of the SPLASH-2 Barnes-Hut benchmark. Positions are clipped
/// to a bounded region so the octree depth stays reasonable.
pub fn plummer_bodies(seed: u64, n: usize) -> Vec<Body> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut bodies = Vec::with_capacity(n);
    let mass = 1.0 / n as f64;
    while bodies.len() < n {
        // Plummer radial distribution: r = (u^(-2/3) - 1)^(-1/2).
        let u: f64 = rng.gen_range(1e-6..1.0);
        let r = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
        if r > 8.0 {
            continue; // clip the rare far outliers
        }
        let (x, y, z) = random_direction(&mut rng, r);
        // Velocities from the standard rejection technique (von Neumann).
        let mut q: f64;
        loop {
            q = rng.gen_range(0.0..1.0);
            let g: f64 = rng.gen_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break;
            }
        }
        let v_escape = std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        let speed = q * v_escape;
        let (vx, vy, vz) = random_direction(&mut rng, speed);
        bodies.push(Body {
            pos: [x, y, z],
            vel: [vx, vy, vz],
            mass,
            work: 1,
        });
    }
    bodies
}

/// A uniformly random direction scaled to length `r`.
fn random_direction(rng: &mut ChaCha8Rng, r: f64) -> (f64, f64, f64) {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let z: f64 = rng.gen_range(-1.0..1.0);
        let len2 = x * x + y * y + z * z;
        if len2 > 1e-12 && len2 <= 1.0 {
            let s = r / len2.sqrt();
            return (x * s, y * s, z * s);
        }
    }
}

/// The bounding cube (centre, half-width) of a set of bodies, slightly
/// enlarged so insertions at the boundary are safe.
pub fn bounding_cube(bodies: &[Body]) -> ([f64; 3], f64) {
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for b in bodies {
        for d in 0..3 {
            min[d] = min[d].min(b.pos[d]);
            max[d] = max[d].max(b.pos[d]);
        }
    }
    let centre = [
        (min[0] + max[0]) / 2.0,
        (min[1] + max[1]) / 2.0,
        (min[2] + max[2]) / 2.0,
    ];
    let half = (0..3)
        .map(|d| (max[d] - min[d]) / 2.0)
        .fold(0.0f64, f64::max)
        .max(1e-6)
        * 1.001;
    (centre, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_matrix_is_deterministic_and_bounded() {
        let a = block_matrix(1, 2, 8);
        let b = block_matrix(1, 2, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&v| (0..5).contains(&v)));
        assert_ne!(block_matrix(0, 0, 8), block_matrix(2, 1, 8));
    }

    #[test]
    fn sort_keys_are_deterministic_per_wire() {
        assert_eq!(sort_keys(1, 5, 100), sort_keys(1, 5, 100));
        assert_ne!(sort_keys(1, 5, 100), sort_keys(1, 6, 100));
        assert_ne!(sort_keys(1, 5, 100), sort_keys(2, 5, 100));
    }

    #[test]
    fn plummer_generates_the_requested_number_of_bodies() {
        let bodies = plummer_bodies(42, 500);
        assert_eq!(bodies.len(), 500);
        // Total mass normalised to 1.
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Positions are clipped to the ball of radius 8.
        assert!(bodies
            .iter()
            .all(|b| b.pos.iter().map(|x| x * x).sum::<f64>() <= 64.0 + 1e-9));
        // The distribution is centrally concentrated: more than half of the
        // bodies lie within radius 1.5 (true for the Plummer model).
        let inner = bodies
            .iter()
            .filter(|b| b.pos.iter().map(|x| x * x).sum::<f64>() < 1.5 * 1.5)
            .count();
        assert!(
            inner * 2 > bodies.len(),
            "only {inner} of {} inside r=1.5",
            bodies.len()
        );
    }

    #[test]
    fn plummer_is_deterministic_per_seed() {
        assert_eq!(plummer_bodies(7, 50), plummer_bodies(7, 50));
        assert_ne!(plummer_bodies(7, 50), plummer_bodies(8, 50));
    }

    #[test]
    fn bounding_cube_contains_all_bodies() {
        let bodies = plummer_bodies(3, 200);
        let (centre, half) = bounding_cube(&bodies);
        for b in &bodies {
            for d in 0..3 {
                assert!((b.pos[d] - centre[d]).abs() <= half + 1e-12);
            }
        }
    }
}
