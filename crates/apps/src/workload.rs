//! Deterministic workload generators shared by the applications and the
//! experiment harness.
//!
//! Besides the scientific-kernel inputs (matrix blocks, sort keys, Plummer
//! bodies) this module holds the request-workload building blocks of the KV
//! serving tier ([`crate::kv`]): a Zipf sampler with a precomputed
//! inverse-CDF table, a migrating-hotspot key schedule keyed on the op index
//! (never on virtual time, so every backend and every sharding of a sweep
//! samples identically), and seeded client-churn gap schedules.

use dm_rng::{splitmix64, ChaCha8Rng};

/// The deterministic initial matrix block for block row `i`, block column `j`
/// with side length `side`. Entries are small so that repeated squaring stays
/// well inside `i64` for the block sizes of the paper.
pub fn block_matrix(i: usize, j: usize, side: usize) -> Vec<i64> {
    let mut block = Vec::with_capacity(side * side);
    for r in 0..side {
        for c in 0..side {
            let v = (i * 31 + j * 17 + r * 7 + c * 3) % 5;
            block.push(v as i64);
        }
    }
    block
}

/// Deterministic pseudo-random sort keys for the bitonic-sorting experiment:
/// `m` keys for the processor simulating wire `wire`.
pub fn sort_keys(seed: u64, wire: usize, m: usize) -> Vec<u64> {
    let mut rng =
        ChaCha8Rng::seed_from_u64(seed ^ (wire as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..m).map(|_| rng.next_u64()).collect()
}

/// A body of the N-body simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
    /// Work counter: interactions computed for this body in the previous
    /// force-computation phase (used by the costzones partitioning).
    pub work: u64,
}

/// Generate `n` bodies following the Plummer model, the standard initial
/// distribution of the SPLASH-2 Barnes-Hut benchmark. Positions are clipped
/// to a bounded region so the octree depth stays reasonable.
pub fn plummer_bodies(seed: u64, n: usize) -> Vec<Body> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut bodies = Vec::with_capacity(n);
    let mass = 1.0 / n as f64;
    while bodies.len() < n {
        // Plummer radial distribution: r = (u^(-2/3) - 1)^(-1/2).
        let u: f64 = rng.gen_range(1e-6..1.0);
        let r = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
        if r > 8.0 {
            continue; // clip the rare far outliers
        }
        let (x, y, z) = random_direction(&mut rng, r);
        // Velocities from the standard rejection technique (von Neumann).
        let mut q: f64;
        loop {
            q = rng.gen_range(0.0..1.0);
            let g: f64 = rng.gen_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break;
            }
        }
        let v_escape = std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        let speed = q * v_escape;
        let (vx, vy, vz) = random_direction(&mut rng, speed);
        bodies.push(Body {
            pos: [x, y, z],
            vel: [vx, vy, vz],
            mass,
            work: 1,
        });
    }
    bodies
}

/// A uniformly random direction scaled to length `r`.
fn random_direction(rng: &mut ChaCha8Rng, r: f64) -> (f64, f64, f64) {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let z: f64 = rng.gen_range(-1.0..1.0);
        let len2 = x * x + y * y + z * z;
        if len2 > 1e-12 && len2 <= 1.0 {
            let s = r / len2.sqrt();
            return (x * s, y * s, z * s);
        }
    }
}

/// The bounding cube (centre, half-width) of a set of bodies, slightly
/// enlarged so insertions at the boundary are safe.
pub fn bounding_cube(bodies: &[Body]) -> ([f64; 3], f64) {
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for b in bodies {
        for d in 0..3 {
            min[d] = min[d].min(b.pos[d]);
            max[d] = max[d].max(b.pos[d]);
        }
    }
    let centre = [
        (min[0] + max[0]) / 2.0,
        (min[1] + max[1]) / 2.0,
        (min[2] + max[2]) / 2.0,
    ];
    let half = (0..3)
        .map(|d| (max[d] - min[d]) / 2.0)
        .fold(0.0f64, f64::max)
        .max(1e-6)
        * 1.001;
    (centre, half)
}

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular), built on a
/// precomputed inverse-CDF table and sampled by binary search off one
/// uniform draw — deterministic for a given `(n, s)` and rng stream on every
/// platform. `s = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalised cumulative probabilities; entry `k` is `P(rank <= k)`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the inverse-CDF table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        assert!(s >= 0.0, "negative Zipf exponents are not meaningful here");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The expected probability mass of rank `k` (used by the chi-square
    /// distribution test).
    pub fn expected(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw one rank: a single uniform draw inverted through the table.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let u = rng.gen_range(0.0..1.0);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// A migrating-hotspot key schedule: a fraction of the traffic concentrates
/// on a contiguous window of the key space, and the window jumps to a new
/// seeded position at configurable *percent-of-op-stream* boundaries (the
/// `--strike-at` convention of the fault sweeps). Phases are a pure function
/// of the op index, never of virtual time, so the schedule is bit-identical
/// across backends, `--jobs`, `--workers` and resumed runs by construction.
#[derive(Debug, Clone)]
pub struct HotspotSchedule {
    n_keys: usize,
    /// Hot-window width in keys.
    hot_keys: usize,
    /// Per-mille of the traffic aimed at the hot window.
    hot_permille: u32,
    /// Migration points in percent of the op stream, sorted, each `< 100`.
    migrate_at: Vec<u64>,
    seed: u64,
}

impl HotspotSchedule {
    /// Build a schedule over `n_keys` keys: `hot_permille`/1000 of the
    /// traffic hits a window of `max(1, n_keys/16)` keys whose position
    /// migrates at each percent boundary of `migrate_at`.
    pub fn new(n_keys: usize, migrate_at: &[u64], hot_permille: u32, seed: u64) -> Self {
        assert!(n_keys > 0, "the hotspot schedule needs a key space");
        assert!(hot_permille <= 1000, "hot_permille is a per-mille fraction");
        let mut migrate_at = migrate_at.to_vec();
        migrate_at.sort_unstable();
        migrate_at.dedup();
        assert!(
            migrate_at.iter().all(|&p| p < 100),
            "migration points are percents of the op stream and must be < 100"
        );
        HotspotSchedule {
            n_keys,
            hot_keys: (n_keys / 16).max(1),
            hot_permille,
            migrate_at,
            seed,
        }
    }

    /// The phase index of op `op_idx` out of `total_ops`: the number of
    /// migration boundaries at or below its percent position.
    pub fn phase_of(&self, op_idx: usize, total_ops: usize) -> usize {
        let pct = (op_idx as u64 * 100) / (total_ops.max(1) as u64);
        self.migrate_at.iter().filter(|&&b| b <= pct).count()
    }

    /// The seeded start of the hot window in phase `phase`.
    pub fn hot_start(&self, phase: usize) -> usize {
        let h = splitmix64(self.seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h % self.n_keys as u64) as usize
    }

    /// Draw the key of op `op_idx` (two uniform draws: aim, then position).
    pub fn key_for(&self, rng: &mut ChaCha8Rng, op_idx: usize, total_ops: usize) -> usize {
        let aim = rng.gen_range(0..1000u32);
        if aim < self.hot_permille {
            let start = self.hot_start(self.phase_of(op_idx, total_ops));
            (start + rng.gen_range(0..self.hot_keys)) % self.n_keys
        } else {
            rng.gen_range(0..self.n_keys)
        }
    }
}

/// The seeded arrive/depart gap schedule of one churning client: a sorted
/// list of `(op index, idle microseconds)` pairs. The client sits out the
/// gap *before* issuing the op at that index — a staggered seeded arrival at
/// op 0, then one departure/re-arrival gap per session boundary. Gaps are
/// whole microseconds so both execution backends account the identical
/// nanosecond count.
pub fn churn_gaps(
    seed: u64,
    client: usize,
    ops: usize,
    sessions: usize,
    idle_us: u64,
) -> Vec<(usize, u64)> {
    assert!(sessions > 0, "a churning client needs at least one session");
    assert!(idle_us > 0, "idle gaps of zero length are not churn");
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ 0xC4_12_2E ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut gaps = Vec::with_capacity(sessions);
    // Staggered arrival: the client joins after a seeded initial delay.
    gaps.push((0, rng.gen_range(0..idle_us)));
    let per_session = (ops / sessions).max(1);
    let mut at = per_session;
    while at < ops {
        // Depart and re-arrive: a seeded gap of idle_us/2 .. idle_us*3/2.
        gaps.push((at, idle_us / 2 + rng.gen_range(0..idle_us)));
        at += per_session;
    }
    gaps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_matrix_is_deterministic_and_bounded() {
        let a = block_matrix(1, 2, 8);
        let b = block_matrix(1, 2, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&v| (0..5).contains(&v)));
        assert_ne!(block_matrix(0, 0, 8), block_matrix(2, 1, 8));
    }

    #[test]
    fn sort_keys_are_deterministic_per_wire() {
        assert_eq!(sort_keys(1, 5, 100), sort_keys(1, 5, 100));
        assert_ne!(sort_keys(1, 5, 100), sort_keys(1, 6, 100));
        assert_ne!(sort_keys(1, 5, 100), sort_keys(2, 5, 100));
    }

    #[test]
    fn plummer_generates_the_requested_number_of_bodies() {
        let bodies = plummer_bodies(42, 500);
        assert_eq!(bodies.len(), 500);
        // Total mass normalised to 1.
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Positions are clipped to the ball of radius 8.
        assert!(bodies
            .iter()
            .all(|b| b.pos.iter().map(|x| x * x).sum::<f64>() <= 64.0 + 1e-9));
        // The distribution is centrally concentrated: more than half of the
        // bodies lie within radius 1.5 (true for the Plummer model).
        let inner = bodies
            .iter()
            .filter(|b| b.pos.iter().map(|x| x * x).sum::<f64>() < 1.5 * 1.5)
            .count();
        assert!(
            inner * 2 > bodies.len(),
            "only {inner} of {} inside r=1.5",
            bodies.len()
        );
    }

    #[test]
    fn plummer_is_deterministic_per_seed() {
        assert_eq!(plummer_bodies(7, 50), plummer_bodies(7, 50));
        assert_ne!(plummer_bodies(7, 50), plummer_bodies(8, 50));
    }

    #[test]
    fn bounding_cube_contains_all_bodies() {
        let bodies = plummer_bodies(3, 200);
        let (centre, half) = bounding_cube(&bodies);
        for b in &bodies {
            for d in 0..3 {
                assert!((b.pos[d] - centre[d]).abs() <= half + 1e-12);
            }
        }
    }

    #[test]
    fn zipf_is_deterministic_and_degenerate_at_zero() {
        let z = ZipfSampler::new(64, 0.9);
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let xs: Vec<usize> = (0..500).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..500).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&k| k < 64));
        // s = 0 is the uniform distribution: every expected mass is 1/n.
        let u = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((u.expected(k) - 0.1).abs() < 1e-12);
        }
        // The expected masses sum to 1 and decay with the rank.
        let total: f64 = (0..64).map(|k| z.expected(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.expected(0) > z.expected(1));
        assert!(z.expected(1) > z.expected(63));
    }

    #[test]
    fn zipf_sample_frequencies_pass_chi_square() {
        // Chi-square goodness-of-fit of the sampler against its own
        // expected masses, over a key space small enough that every cell's
        // expected count is comfortably above 5. With 15 degrees of freedom
        // the 99.9th percentile of the chi-square distribution is 37.7; the
        // deterministic stream stays far below it unless the inverse-CDF
        // inversion is wrong.
        for s in [0.0, 0.9, 1.2] {
            let n = 16;
            let z = ZipfSampler::new(n, s);
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ s.to_bits());
            let draws = 20_000usize;
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                counts[z.sample(&mut rng)] += 1;
            }
            let chi2: f64 = (0..n)
                .map(|k| {
                    let expected = z.expected(k) * draws as f64;
                    let diff = counts[k] as f64 - expected;
                    diff * diff / expected
                })
                .sum();
            assert!(
                chi2 < 37.7,
                "chi-square {chi2} too large for s = {s} (counts {counts:?})"
            );
        }
    }

    #[test]
    fn hotspot_phases_follow_the_op_index() {
        let h = HotspotSchedule::new(256, &[25, 50, 75], 900, 7);
        assert_eq!(h.phase_of(0, 100), 0);
        assert_eq!(h.phase_of(24, 100), 0);
        assert_eq!(h.phase_of(25, 100), 1);
        assert_eq!(h.phase_of(50, 100), 2);
        assert_eq!(h.phase_of(99, 100), 3);
        // Every phase places its window somewhere else (for this seed), and
        // the placement is a pure function of the phase.
        let starts: Vec<usize> = (0..4).map(|p| h.hot_start(p)).collect();
        assert_eq!(starts, (0..4).map(|p| h.hot_start(p)).collect::<Vec<_>>());
        assert!(starts.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn hotspot_concentrates_traffic_in_the_window() {
        let h = HotspotSchedule::new(256, &[], 900, 3);
        let start = h.hot_start(0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let in_window = (0..2000)
            .filter(|_| {
                let k = h.key_for(&mut rng, 0, 2000);
                (k + 256 - start) % 256 < 16
            })
            .count();
        // 90% aimed at a 16/256 window: well over half of all draws land in
        // it (the uniform remainder contributes ~6%).
        assert!(in_window > 1600, "only {in_window} of 2000 in the window");
    }

    #[test]
    fn churn_gaps_are_seeded_sorted_and_sized() {
        let g = churn_gaps(1, 4, 100, 4, 1000);
        assert_eq!(g, churn_gaps(1, 4, 100, 4, 1000));
        assert_ne!(g, churn_gaps(1, 5, 100, 4, 1000));
        assert_ne!(g, churn_gaps(2, 4, 100, 4, 1000));
        // One arrival gap plus one gap per later session boundary.
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].0, 0);
        assert!(g.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(g.iter().all(|&(at, _)| at < 100));
        // Departure gaps are at least half the configured idle time.
        assert!(g[1..].iter().all(|&(_, us)| us >= 500));
    }
}
